#!/usr/bin/env python3
"""Schema/invariant checker for `hyperqd`'s `{"op":"stats"}` snapshots.

Reads one stats response frame (or a bare snapshot object) from stdin and
exits non-zero with a list of violations if the document is malformed or
a registry invariant is broken.  The CI `server` job pipes a live scrape
through this; run locally with:

    hyperq client 127.0.0.1:7411 stats --raw | python3 scripts/check_stats.py

Checked invariants:

  * every counter field is present with the right type and non-negative;
  * requests_total == sum(requests_by_op) over the fixed op labels;
  * queries_total  == sum(queries_by_outcome) — each executed query
    records exactly one outcome;
  * sum(queries_by_engine) <= queries_total (refused queries never reach
    an engine);
  * the latency histogram is internally consistent: count equals the sum
    of its sparse bucket counts and the quantiles are monotone
    (p50 <= p90 <= p99 <= max);
  * unless --allow-empty is given, at least one query has been recorded
    (non-empty histogram) — a scrape of an idle server is almost always a
    broken CI wiring, not a healthy result.
"""

import json
import sys

OPS = ["ping", "list", "query", "prepare", "run", "stats", "shutdown", "invalid"]
ENGINES = ["yannakakis", "connection", "naive"]
OUTCOMES = [
    "ok", "proto", "unknown-db", "unknown-query", "schema", "parse",
    "io", "deadline", "cancelled", "budget", "panic", "shutdown",
]


def check(doc: dict, allow_empty: bool) -> list[str]:
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(msg)

    def counter(obj: dict, key: str, what: str) -> int:
        v = obj.get(key)
        if not isinstance(v, int) or v < 0:
            err(f"{what}.{key}: expected non-negative integer, got {v!r}")
            return 0
        return v

    for key in ("uptime_ms", "requests_total", "queries_total", "bytes_in",
                "bytes_out", "in_flight", "slow_queries"):
        counter(doc, key, "stats")

    def labelled(key: str, labels: list[str]) -> int:
        obj = doc.get(key)
        if not isinstance(obj, dict):
            err(f"{key}: missing or not an object")
            return 0
        if sorted(obj) != sorted(labels):
            err(f"{key}: labels {sorted(obj)} != expected {sorted(labels)}")
            return 0
        return sum(counter(obj, label, key) for label in labels)

    by_op = labelled("requests_by_op", OPS)
    by_engine = labelled("queries_by_engine", ENGINES)
    by_outcome = labelled("queries_by_outcome", OUTCOMES)

    if not errors:
        if doc["requests_total"] != by_op:
            err(f"requests_total {doc['requests_total']} != sum(by_op) {by_op}")
        if doc["queries_total"] != by_outcome:
            err(f"queries_total {doc['queries_total']} != sum(by_outcome) {by_outcome}")
        if by_engine > doc["queries_total"]:
            err(f"sum(by_engine) {by_engine} > queries_total {doc['queries_total']}")

    pool = doc.get("pool")
    if not isinstance(pool, dict):
        err("pool: missing or not an object")
    else:
        for key in ("idle_workers", "respawned_workers", "lease_spawned"):
            counter(pool, key, "pool")

    lat = doc.get("latency_us")
    if not isinstance(lat, dict):
        err("latency_us: missing or not an object")
    else:
        count = counter(lat, "count", "latency_us")
        quantiles = [counter(lat, q, "latency_us") for q in ("p50", "p90", "p99", "max")]
        buckets = lat.get("buckets")
        if not isinstance(buckets, list) or not all(
            isinstance(b, list) and len(b) == 2
            and all(isinstance(x, int) and x >= 0 for x in b)
            for b in buckets
        ):
            err(f"latency_us.buckets: expected [[index, count], ...], got {buckets!r}")
        else:
            total = sum(c for _, c in buckets)
            if total != count:
                err(f"latency_us: count {count} != sum of bucket counts {total}")
            if any(c == 0 for _, c in buckets):
                err("latency_us.buckets: sparse form must omit empty buckets")
        if not errors and quantiles != sorted(quantiles):
            err(f"latency_us: quantiles not monotone: p50/p90/p99/max = {quantiles}")
        if not allow_empty and count == 0:
            err("latency_us: histogram is empty — no query was recorded "
                "before the scrape (pass --allow-empty if intentional)")

    return errors


def main() -> int:
    args = sys.argv[1:]
    allow_empty = "--allow-empty" in args
    if [a for a in args if a != "--allow-empty"]:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        print(f"check_stats: stdin is not valid JSON: {e}", file=sys.stderr)
        return 1
    # Accept the full response frame (`{"ok":true,"op":"stats","stats":{...}}`)
    # or the bare snapshot object.
    if isinstance(doc, dict) and isinstance(doc.get("stats"), dict):
        doc = doc["stats"]
    if not isinstance(doc, dict):
        print(f"check_stats: expected an object, got {type(doc).__name__}", file=sys.stderr)
        return 1
    errors = check(doc, allow_empty)
    if errors:
        for e in errors:
            print(f"check_stats: {e}", file=sys.stderr)
        return 1
    lat = doc["latency_us"]
    print(f"check_stats: ok — {doc['queries_total']} queries "
          f"({doc['requests_total']} requests), latency p50/p90/p99/max = "
          f"{lat['p50']}/{lat['p90']}/{lat['p99']}/{lat['max']} us, "
          f"{doc['slow_queries']} slow")
    return 0


if __name__ == "__main__":
    sys.exit(main())
