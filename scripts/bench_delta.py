#!/usr/bin/env python3
"""Per-PR bench trajectory: diff two `hyperq bench` JSON documents.

    python3 scripts/bench_delta.py PREVIOUS.json CURRENT.json

Prints a GitHub-flavored markdown table of ns/iter deltas keyed by
(op, engine, workload, size), sorted worst-regression first, ready to
append to $GITHUB_STEP_SUMMARY.  The previous document comes from the
last run's `bench-results` artifact; when it is missing (first run on a
branch, expired artifact) or unparsable, a note is printed and the exit
code stays 0 — the delta table is a trajectory report, not a gate (the
gate is `hyperq bench --check` against the padded baseline).

Old-format documents whose rows lack the metrics fields (probed/kept/
join_ops/semijoin_ops) diff fine: rows are keyed and compared on the
timing fields both formats share.

Server-latency rows (`server_query_p50`/`p90`/`p99`, engine `server`,
written by `hyperq client bench --out`) carry a quantile of the server's
own latency histogram in ns_per_iter rather than a mean; they diff like
any other row and are flagged in the table so a tail-latency regression
reads as what it is.
"""

import json
import signal
import sys

# Dying quietly on a closed pipe (`... | head`) beats a traceback.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_rows(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: cannot load {path}: {e}", file=sys.stderr)
        return None
    rows = {}
    for r in doc.get("results", []):
        rows[(r["op"], r["engine"], r["workload"], r["size"])] = r
    return rows


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns:.0f} ns"


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    prev_path, cur_path = sys.argv[1], sys.argv[2]
    cur = load_rows(cur_path)
    if cur is None:
        # No current results means the bench itself failed — that is the
        # perf job's problem, not the delta report's.
        print("bench_delta: no current results to diff")
        return 0
    prev = load_rows(prev_path)
    if prev is None:
        print("No previous `bench-results` artifact — delta table starts next run.")
        return 0

    deltas = []
    for key, row in sorted(cur.items()):
        before = prev.get(key)
        if before is None:
            deltas.append((key, None, row["ns_per_iter"]))
        else:
            deltas.append((key, before["ns_per_iter"], row["ns_per_iter"]))
    dropped = sorted(set(prev) - set(cur))

    # Worst regression first; new rows (no previous timing) sink to the end.
    deltas.sort(key=lambda d: d[2] / d[1] if d[1] else -1.0, reverse=True)

    print("### Bench trajectory vs previous run")
    print()
    print("| op | engine | workload | size | previous | current | delta |")
    print("|---|---|---|---|---:|---:|---:|")
    for (op, engine, workload, size), before, now in deltas:
        if before is None:
            delta = "new"
            before_s = "—"
        else:
            pct = (now / before - 1.0) * 100.0
            delta = f"{pct:+.1f}%"
            before_s = fmt_ns(before)
        # Server rows are latency quantiles, not per-iteration means.
        label = f"{op} ⏱" if op.startswith("server_query_") else op
        print(f"| {label} | {engine} | {workload} | {size} | {before_s} | {fmt_ns(now)} | {delta} |")
    for key in dropped:
        print(f"| {key[0]} | {key[1]} | {key[2]} | {key[3]} | {fmt_ns(prev[key]['ns_per_iter'])} | — | dropped |")
    print()
    print(f"{len(deltas)} rows diffed, {len(dropped)} dropped "
          "(positive delta = slower than the previous run; runner noise "
          "routinely reaches ±30%, so read trends, not single rows; "
          "⏱ marks server-side latency quantiles from `hyperq client bench`).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
