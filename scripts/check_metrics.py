#!/usr/bin/env python3
"""Schema/invariant checker for `hyperq query --metrics-json` documents.

Reads one metrics document from stdin and exits non-zero with a list of
violations if the document is malformed or an execution invariant is
broken.  CI pipes the Fig. 1 (acyclic) and 4-ring (cyclic) scenarios
through this; run locally with:

    hyperq query fixtures/fig1.hg fixtures/fig1.data \
        --select A,D --engine yannakakis --metrics-json \
        | python3 scripts/check_metrics.py

Pass --cyclic when the queried schema is cyclic: the document must then
carry a decomposition report (both heuristic widths and the chosen one)
and at least one materialized bag.  Without the flag the decomposition
field must be null — acyclic schemas never pay for one.
"""

import json
import sys

PHASES = {"materialize", "reduce-up", "reduce-down", "join"}


def check(doc: dict, cyclic: bool) -> list[str]:
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(msg)

    for op in ("join", "semijoin"):
        agg = doc.get(op)
        if not isinstance(agg, dict):
            err(f"{op}: missing or not an object")
            continue
        for key in ("ops", "hash_ops", "sortmerge_ops", "probed", "kept", "built", "build_rows"):
            v = agg.get(key)
            if not isinstance(v, int) or v < 0:
                err(f"{op}.{key}: expected non-negative integer, got {v!r}")
        if errors:
            continue
        if agg["hash_ops"] + agg["sortmerge_ops"] != agg["ops"]:
            err(f"{op}: hash_ops + sortmerge_ops != ops ({agg})")
        # A (semi)join can only keep rows it probed.
        if agg["kept"] > agg["probed"]:
            err(f"{op}: kept {agg['kept']} > probed {agg['probed']}")
        ratio = agg.get("distinct_ratio")
        if not isinstance(ratio, dict):
            err(f"{op}.distinct_ratio: missing or not an object")
        elif ratio.get("samples", 0) > 0:
            for key in ("mean", "min", "max"):
                v = ratio.get(key)
                if not isinstance(v, (int, float)) or not 0.0 <= v <= 1.0:
                    err(f"{op}.distinct_ratio.{key}: expected value in [0, 1], got {v!r}")

    levels = doc.get("levels")
    if not isinstance(levels, list) or not levels:
        err("levels: expected a non-empty list of level timings")
    else:
        for i, lvl in enumerate(levels):
            if lvl.get("phase") not in PHASES:
                err(f"levels[{i}].phase: unknown phase {lvl.get('phase')!r}")
            for key in ("level", "jobs", "nanos"):
                v = lvl.get(key)
                if not isinstance(v, int) or v < 0:
                    err(f"levels[{i}].{key}: expected non-negative integer, got {v!r}")
        if not any(lvl.get("nanos", 0) > 0 for lvl in levels):
            err("levels: every timing is zero nanos — the clock did not run")

    leases = doc.get("pool", {}).get("leases")
    if not isinstance(leases, list) or not leases:
        err("pool.leases: expected at least one lease record")
    elif any(lease.get("threads", 0) < 1 for lease in leases):
        err(f"pool.leases: lease with no threads: {leases}")

    if not isinstance(doc.get("index_rebuilds"), int):
        err(f"index_rebuilds: expected integer, got {doc.get('index_rebuilds')!r}")

    decomp = doc.get("decomposition", "absent")
    bags = doc.get("bags")
    if cyclic:
        if not isinstance(decomp, dict):
            err(f"decomposition: cyclic query must report one, got {decomp!r}")
        else:
            for key in ("min_fill_width", "min_degree_width"):
                v = decomp.get(key)
                if not isinstance(v, int) or v < 1:
                    err(f"decomposition.{key}: expected positive width, got {v!r}")
            if decomp.get("chosen") not in ("min-fill", "min-degree"):
                err(f"decomposition.chosen: got {decomp.get('chosen')!r}")
            if (
                isinstance(decomp.get("min_fill_width"), int)
                and isinstance(decomp.get("min_degree_width"), int)
                and decomp["chosen"] == "min-fill"
                and decomp["min_fill_width"] > decomp["min_degree_width"]
            ):
                err(f"decomposition: chose min-fill at larger width: {decomp}")
        if not isinstance(bags, list) or not bags:
            err("bags: cyclic query must materialize at least one bag")
        elif any(not isinstance(b.get("rows"), int) or b["rows"] < 0 for b in bags):
            err(f"bags: malformed bag record: {bags}")
    else:
        if decomp is not None:
            err(f"decomposition: acyclic query must report null, got {decomp!r}")
        if bags != []:
            err(f"bags: acyclic query materializes no bags, got {bags!r}")

    return errors


def main() -> int:
    args = sys.argv[1:]
    cyclic = "--cyclic" in args
    if [a for a in args if a != "--cyclic"]:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        print(f"check_metrics: stdin is not valid JSON: {e}", file=sys.stderr)
        return 1
    errors = check(doc, cyclic)
    if errors:
        for e in errors:
            print(f"check_metrics: {e}", file=sys.stderr)
        return 1
    kind = "cyclic" if cyclic else "acyclic"
    joins = doc["join"]["ops"]
    semis = doc["semijoin"]["ops"]
    print(f"check_metrics: {kind} document ok ({joins} joins, {semis} semijoins, "
          f"{len(doc['levels'])} level timings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
