//! Snapshot format property suite.
//!
//! Two guarantees under test.  First, round-tripping any
//! workload-generated database through the binary snapshot format —
//! including databases whose relations live in separate value pools —
//! preserves contents and pool-sharing structure exactly.  Second, the
//! decoder is total: arbitrary corruption (bit flips, truncation, garbage
//! appended) yields a structured [`EngineError`], never a panic, and never
//! a half-built database.

use acyclic_hypergraphs::reldb::{Database, EngineError, Relation};
use acyclic_hypergraphs::workload::{
    chain, random_database, snowflake, snowflake_tree, star, DataParams,
};
use proptest::prelude::*;

/// One of the acyclic benchmark schema families, scaled by `shape`.
fn db_for(
    family: usize,
    shape: usize,
    tuples: usize,
    domain: i64,
    skew: f64,
    seed: u64,
) -> Database {
    let schema = match family % 4 {
        0 => chain(2 + shape % 4, 2 + shape % 2, 1),
        1 => star(2 + shape % 4, 2),
        2 => snowflake(2 + shape % 2, 2, 2),
        _ => snowflake_tree(1 + shape % 2, 2, 2 + shape % 2),
    };
    random_database(
        &schema,
        DataParams {
            tuples_per_relation: tuples,
            domain,
            skew,
            key_cap: 0,
        },
        seed,
    )
}

/// Schema-equal, relation-by-relation content-equal.
fn same_database(x: &Database, y: &Database) -> bool {
    x.schema().same_edge_sets(y.schema())
        && x.relations().len() == y.relations().len()
        && x.relations()
            .iter()
            .zip(y.relations())
            .all(|(a, b)| a.same_contents(b))
}

/// Rebuilds `db` with every relation interning into its own private pool.
fn split_pools(db: &Database) -> Database {
    let split: Vec<Relation> = db
        .relations()
        .iter()
        .map(|r| {
            let mut own = Relation::new(r.name().to_owned(), r.attributes().clone());
            for t in r.tuples() {
                own.insert(t);
            }
            own
        })
        .collect();
    Database::new(db.schema().clone(), split).expect("same schema")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot round trips are lossless across schema families, sizes and
    /// skew: same schema, same tuples, same pool-sharing structure, and the
    /// reloaded database answers value lookups identically.
    #[test]
    fn round_trip_is_lossless(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 0usize..48,
        domain in 1i64..8,
        skew_tenths in 0usize..16,
        seed in 0u64..1_000,
    ) {
        let db = db_for(family, shape, tuples, domain, skew_tenths as f64 / 10.0, seed);
        let loaded = Database::from_snapshot_bytes(&db.to_snapshot_bytes()).unwrap();
        prop_assert!(same_database(&db, &loaded));
        // The generator interns everything into one shared pool; the round
        // trip must preserve that sharing (handle equality stays global).
        for r in loaded.relations() {
            prop_assert!(r.pool().same_pool(loaded.relations()[0].pool()));
        }
    }

    /// Databases whose relations were built independently (one pool each)
    /// keep that structure through a round trip: contents equal, pools
    /// still distinct per relation.
    #[test]
    fn round_trip_preserves_cross_pool_structure(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
    ) {
        let db = split_pools(&db_for(family, shape, tuples, domain, 0.0, seed));
        let loaded = Database::from_snapshot_bytes(&db.to_snapshot_bytes()).unwrap();
        prop_assert!(same_database(&db, &loaded));
        let rels = loaded.relations();
        for (a, b) in rels.iter().zip(rels.iter().skip(1)) {
            prop_assert!(!a.pool().same_pool(b.pool()));
        }
    }

    /// A single flipped byte anywhere in the image either still decodes to
    /// a well-formed database (flips inside value payloads are legitimate
    /// different values) or fails with a structured parse/IO error — it
    /// never panics and never half-applies.
    #[test]
    fn single_byte_flips_never_panic(
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
        pos_pick in 0usize..4096,
        bit in 0u8..8,
    ) {
        let db = db_for(0, 2, tuples, domain, 0.3, seed);
        let mut bytes = db.to_snapshot_bytes();
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= 1 << bit;
        match Database::from_snapshot_bytes(&bytes) {
            // Some flips land in value payloads or row handles that stay in
            // range: a different but well-formed database is acceptable.
            Ok(loaded) => {
                prop_assert!(loaded.schema().edge_count() == db.schema().edge_count()
                    || pos < 64, "decoded schema changed shape from a data-section flip");
            }
            Err(EngineError::Parse { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error variant: {other:?}"),
        }
    }

    /// Truncation at any prefix and garbage appended at the end are always
    /// structured parse errors.
    #[test]
    fn truncation_and_trailing_garbage_are_structured_errors(
        tuples in 1usize..16,
        seed in 0u64..1_000,
        cut_pick in 0usize..4096,
        garbage in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let db = db_for(1, 1, tuples, 4, 0.0, seed);
        let bytes = db.to_snapshot_bytes();
        let cut = cut_pick % bytes.len();
        prop_assert!(matches!(
            Database::from_snapshot_bytes(&bytes[..cut]),
            Err(EngineError::Parse { .. })
        ));
        let mut extended = bytes.clone();
        extended.extend_from_slice(&garbage);
        prop_assert!(matches!(
            Database::from_snapshot_bytes(&extended),
            Err(EngineError::Parse { .. })
        ));
    }
}
