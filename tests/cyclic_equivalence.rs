//! Equivalence property suite for the **cyclic** pipeline: decompose →
//! materialize bags → reduce → join must agree tuple-for-tuple with the
//! `reldb::reference` oracle across the cyclic schema families (rings,
//! hyper-rings, pair-cliques) and random data, seeds and projections.
//!
//! This is the safety net under the hypertree-decomposition subsystem: the
//! oracle joins every relation naively and projects, so any bag-cover or
//! running-intersection bug shows up as a tuple diff.

use acyclic_hypergraphs::acyclic::join_tree;
use acyclic_hypergraphs::decomp::{decompose, Heuristic};
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::reldb::reference::naive_full_join;
use acyclic_hypergraphs::reldb::{
    materialize_bags, yannakakis_join_any, yannakakis_join_decomposed, Database, ExecPolicy,
    JoinStrategy, Query,
};
use acyclic_hypergraphs::workload::{hyper_ring, pair_clique, random_database, ring, DataParams};
use proptest::prelude::*;

/// One of the cyclic schema families, scaled by `shape`.
fn cyclic_schema(family: usize, shape: usize) -> Hypergraph {
    match family % 3 {
        0 => ring(3 + shape % 5),
        1 => hyper_ring(3 + shape % 3, 2 + shape % 3),
        _ => pair_clique(3 + shape % 3),
    }
}

fn db_for(family: usize, shape: usize, tuples: usize, domain: i64, seed: u64) -> Database {
    random_database(
        &cyclic_schema(family, shape),
        DataParams {
            tuples_per_relation: tuples,
            domain,
            skew: 0.0,
            key_cap: 0,
        },
        seed,
    )
}

/// The oracle answer: join everything naively, project.
fn oracle(db: &Database, output: &NodeSet) -> acyclic_hypergraphs::reldb::reference::NaiveRelation {
    naive_full_join(db).project(output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The routed pipeline answers every cyclic family identically to the
    /// oracle, on the full output and on random projections.
    #[test]
    fn cyclic_pipeline_matches_reference(
        family in 0usize..3,
        shape in 0usize..6,
        tuples in 1usize..20,
        domain in 1i64..6,
        seed in 0u64..1_000,
        pick in 0usize..64,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        prop_assert!(
            join_tree(db.schema()).is_none(),
            "cyclic generators must stay cyclic"
        );
        let output: NodeSet = db
            .schema()
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << (i % 6)) != 0)
            .map(|(_, n)| n)
            .collect();
        let fast = yannakakis_join_any(&db, &output, &ExecPolicy::default())
            .expect("cyclic schemas decompose");
        prop_assert!(
            oracle(&db, &output).agrees_with(&fast),
            "cyclic pipeline diverged from the oracle"
        );
    }

    /// Every execution policy — strategies, parallel workers, spawn mode —
    /// and both elimination heuristics produce the identical answer.
    #[test]
    fn cyclic_policies_and_heuristics_agree(
        family in 0usize..3,
        shape in 0usize..6,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in 0u64..1_000,
        threads in 2usize..5,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let all = db.schema().nodes();
        let want = oracle(&db, &all);
        for policy in [
            ExecPolicy::sequential(JoinStrategy::Hash),
            ExecPolicy::sequential(JoinStrategy::SortMerge),
            ExecPolicy::parallel(JoinStrategy::Hash, threads),
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Auto, threads)
            },
        ] {
            let got = yannakakis_join_any(&db, &all, &policy).expect("decomposable");
            prop_assert!(want.agrees_with(&got), "diverged under {:?}", policy);
        }
        for heuristic in [Heuristic::MinFill, Heuristic::MinDegree] {
            let d = decompose(db.schema(), heuristic).expect("nonempty schema");
            prop_assert!(d.verify(db.schema()), "decomposition must verify");
            let got = yannakakis_join_decomposed(&db, &d, &all, &ExecPolicy::default());
            prop_assert!(want.agrees_with(&got), "diverged under {:?}", heuristic);
        }
    }

    /// The materialized bag database represents exactly the original join:
    /// joining all bag relations equals joining all original relations.
    #[test]
    fn bag_join_equals_original_join(
        family in 0usize..3,
        shape in 0usize..6,
        tuples in 1usize..14,
        domain in 1i64..5,
        seed in 0u64..1_000,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let d = decompose(db.schema(), Heuristic::MinFill).expect("nonempty schema");
        let bag_db = materialize_bags(&db, &d, &ExecPolicy::default());
        let all = db.schema().nodes();
        prop_assert!(
            oracle(&db, &all).agrees_with(&bag_db.full_join().project(&all)),
            "bag join diverged from the original join"
        );
    }

    /// The Query layer routes cyclic schemas too: selections and
    /// projections through `execute_yannakakis` agree with the naive path.
    #[test]
    fn cyclic_queries_with_selections_match_naive(
        family in 0usize..3,
        shape in 0usize..6,
        tuples in 1usize..14,
        domain in 1i64..5,
        seed in 0u64..1_000,
        sel in 0i64..5,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let nodes: Vec<_> = db.schema().nodes().iter().collect();
        let q = Query::new()
            .select(nodes[0])
            .select(*nodes.last().expect("nonempty"))
            .filter_eq(nodes[nodes.len() / 2], sel % domain);
        let yann = q.execute_yannakakis(&db).expect("cyclic schemas execute");
        let naive = q.execute_naive(&db);
        prop_assert!(
            yann.same_contents(&naive),
            "cyclic query with selection diverged"
        );
    }
}

/// Fixed regression: the 4-ring and a hyper-ring execute end-to-end with
/// reported width, per the acceptance criteria.
#[test]
fn ring_and_hyper_ring_acceptance() {
    for (schema, expect_width) in [(ring(4), 2), (hyper_ring(4, 3), 2)] {
        let d = decompose(&schema, Heuristic::MinFill).expect("cyclic schemas decompose");
        assert_eq!(d.width(), expect_width);
        assert!(d.verify(&schema));
        let db = random_database(
            &schema,
            DataParams {
                tuples_per_relation: 40,
                domain: 6,
                skew: 0.0,
                key_cap: 0,
            },
            7,
        );
        let all = schema.nodes();
        let fast = yannakakis_join_any(&db, &all, &ExecPolicy::default()).unwrap();
        assert!(oracle(&db, &all).agrees_with(&fast));
    }
}
