//! The classical graph theorem the paper generalizes, and its relationship
//! to the hypergraph machinery.
//!
//! For ordinary (2-uniform) graphs: a nontrivial connected graph has no
//! articulation point iff it consists of a single biconnected component
//! (equivalently, there are two "independent" ways between every pair of
//! nodes).  These tests exercise the ordinary-graph substrate directly and
//! then check the bridge to hypergraphs: a graph viewed as a hypergraph of
//! binary edges is acyclic iff the graph is a forest of edges glued at
//! articulation points only — i.e. iff it has no graph cycle.

use acyclic_hypergraphs::acyclic::{find_independent_path, AcyclicityExt};
use acyclic_hypergraphs::hypergraph::{Graph, Hypergraph, NodeId};
use acyclic_hypergraphs::workload::{grid, pair_clique, ring};

fn cycle_graph(n: u32) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n));
    }
    g
}

fn path_graph(n: u32) -> Graph {
    let mut g = Graph::new();
    for i in 0..n.saturating_sub(1) {
        g.add_edge(NodeId(i), NodeId(i + 1));
    }
    g
}

/// The classical equivalence on ordinary graphs: no articulation points
/// ⇔ one biconnected component spanning all nodes (for 2-connected shapes).
#[test]
fn blocks_equal_biconnected_components_on_cycles() {
    for n in [3u32, 5, 8, 13] {
        let g = cycle_graph(n);
        assert!(g.articulation_points().is_empty());
        let comps = g.biconnected_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], g.nodes());
    }
}

#[test]
fn paths_decompose_into_one_block_per_edge() {
    for n in [2u32, 4, 9] {
        let g = path_graph(n);
        assert_eq!(g.biconnected_components().len(), (n - 1) as usize);
        assert_eq!(
            g.articulation_points().len(),
            (n.saturating_sub(2)) as usize
        );
    }
}

/// Two cycles sharing a single vertex: that vertex is the articulation
/// point, and the biconnected components are exactly the two cycles.
#[test]
fn figure_eight_decomposition() {
    let mut g = Graph::new();
    for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
        g.add_edge(NodeId(a), NodeId(b));
    }
    let cuts = g.articulation_points();
    assert_eq!(cuts.len(), 1);
    assert!(cuts.contains(NodeId(2)));
    assert_eq!(g.biconnected_components().len(), 2);
}

/// A graph seen as a hypergraph of binary edges is α-acyclic exactly when
/// the graph has no cycle — so ordinary graph cycles are the special case of
/// the paper's hypergraph cycles, and the independent-path certificate
/// exists exactly for cyclic graphs.
#[test]
fn binary_hypergraph_acyclicity_is_graph_forest() {
    // Acyclic cases: paths and stars.
    let path = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
    assert!(path.is_acyclic());
    assert!(path.primal_graph().is_forest());
    assert!(find_independent_path(&path).is_none());

    // Cyclic cases: rings, cliques, grids.
    for h in [ring(4), ring(7), pair_clique(4), grid(2, 3)] {
        assert!(!h.is_acyclic());
        assert!(!h.primal_graph().is_forest());
        let path = find_independent_path(&h).expect("cycle certificate");
        assert!(path.is_independent(&h));
    }
}

/// The hypergraph analogue of "two ways between every pair" in a block:
/// inside a hypergraph block without articulation sets that has more than
/// one edge, Theorem 6.1 guarantees an independent path — and splitting at
/// articulation sets reproduces the block decomposition.
#[test]
fn hypergraph_blocks_generalize_graph_blocks() {
    // The 6-ring of binary edges is one block with no articulation set and
    // is cyclic: an independent path exists.
    let h = ring(6);
    assert!(h.find_articulation_set().is_none());
    assert_eq!(h.blocks(), vec![h.nodes()]);
    assert!(find_independent_path(&h).is_some());

    // A chain is all articulation sets: every block is a single edge and no
    // independent path exists.
    let chain = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
    assert_eq!(chain.blocks().len(), 3);
    assert!(find_independent_path(&chain).is_none());

    // Fig. 1 is a single block (its articulation sets do not split it into
    // single edges in the graph sense) yet acyclic: the "covering" edge
    // {A,C,E} is what distinguishes hypergraph acyclicity from graph
    // acyclicity.
    let fig1 = Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["C", "D", "E"],
        vec!["A", "E", "F"],
        vec!["A", "C", "E"],
    ])
    .unwrap();
    assert!(fig1.is_acyclic());
    assert!(!fig1.primal_graph().is_forest());
}

/// Articulation sets of the hypergraph project onto articulation points of
/// the primal graph in the binary case.
#[test]
fn articulation_sets_match_articulation_points_for_binary_edges() {
    let h = Hypergraph::from_edges([
        vec!["A", "B"],
        vec!["B", "C"],
        vec!["C", "D"],
        vec!["D", "E"],
    ])
    .unwrap();
    let g = h.primal_graph();
    let points = g.articulation_points();
    for x in h.articulation_sets() {
        let node = x
            .as_singleton()
            .expect("binary edges give singleton articulation sets");
        assert!(points.contains(node));
    }
    assert_eq!(h.articulation_sets().len(), points.len());
}
