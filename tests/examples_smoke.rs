//! Smoke test: every example binary must run to completion.
//!
//! `cargo test` already compiles the examples; this test actually executes
//! them, so an example whose scenario drifts from the library API (or
//! panics at runtime) fails CI rather than rotting silently.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "paper_figures",
    "schema_advisor",
    "universal_relation",
];

#[test]
fn every_example_runs_successfully() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} printed nothing"
        );
    }
}
