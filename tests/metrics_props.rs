//! Property suite for the metrics layer: instrumentation must observe the
//! engine, never perturb it.
//!
//! Three invariant families over random acyclic databases:
//!
//! 1. **Conservation** — a (semi)join can only keep rows it probed, and a
//!    semijoin's `kept` counter is exactly the surviving cardinality.
//! 2. **Transparency** — running any pipeline under a [`CollectingSink`]
//!    yields tuple-for-tuple the same answer as the unmetered path (which
//!    is the same code monomorphized over [`NoopMetrics`]).
//! 3. **Coverage** — a metered reducer run accounts for every semijoin the
//!    join tree implies and times at least one level.

use acyclic_hypergraphs::acyclic::join_tree;
use acyclic_hypergraphs::decomp::{decompose, Heuristic};
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::reldb::{
    full_reduce, full_reduce_metered, query_yannakakis, query_yannakakis_metered,
    yannakakis_join_decomposed, yannakakis_join_decomposed_metered, CollectingSink, Database,
    ExecPolicy, JoinStrategy, WorkerLease,
};
use acyclic_hypergraphs::workload::{chain, random_database, ring, snowflake, star, DataParams};
use proptest::prelude::*;

/// One of the acyclic benchmark schema families, scaled by `shape`.
fn schema(family: usize, shape: usize) -> Hypergraph {
    match family % 3 {
        0 => chain(2 + shape % 4, 2 + shape % 2, 1),
        1 => star(2 + shape % 4, 2),
        _ => snowflake(2 + shape % 2, 2, 2),
    }
}

fn db_for(family: usize, shape: usize, tuples: usize, domain: i64, seed: u64) -> Database {
    random_database(
        &schema(family, shape),
        DataParams {
            tuples_per_relation: tuples,
            domain,
            skew: 0.0,
            key_cap: 0,
        },
        seed,
    )
}

/// Every engine the metrics layer instruments, including the calibrated
/// Auto planner whose kernel picks depend on the sampled ratios.
fn policies() -> [ExecPolicy; 3] {
    [
        ExecPolicy::sequential(JoinStrategy::Hash),
        ExecPolicy::sequential(JoinStrategy::SortMerge),
        ExecPolicy::sequential(JoinStrategy::Auto),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation at operation granularity: for every relation pair, a
    /// metered semijoin probes at least as many rows as it keeps, and the
    /// kept counter is exactly the surviving cardinality.
    #[test]
    fn semijoin_counters_conserve_rows(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in any::<u64>(),
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        for policy in policies() {
            for r1 in db.relations() {
                for r0 in db.relations() {
                    let sink = CollectingSink::new();
                    let mut probe = r0.clone();
                    let removed =
                        probe.retain_semijoin_metered(r1, &policy, &WorkerLease::inline(), &sink);
                    let m = sink.snapshot();
                    prop_assert_eq!(m.joins.ops, 0, "a semijoin must not record joins");
                    prop_assert_eq!(m.semijoins.ops, 1);
                    prop_assert!(m.semijoins.kept <= m.semijoins.probed,
                        "kept {} > probed {}", m.semijoins.kept, m.semijoins.probed);
                    prop_assert_eq!(m.semijoins.kept, probe.len() as u64,
                        "kept must equal the surviving cardinality");
                    prop_assert_eq!(m.semijoins.probed, r0.len() as u64,
                        "a semijoin probes every input row exactly once");
                    prop_assert_eq!(removed, r0.len() - probe.len());
                }
            }
        }
    }

    /// Transparency: the metered reducer and Yannakakis query return
    /// tuple-for-tuple the same answers as the unmetered (no-op sink)
    /// paths, under every kernel strategy.
    #[test]
    fn collecting_sink_does_not_perturb_results(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in any::<u64>(),
        selector in any::<u64>(),
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let tree = join_tree(db.schema()).expect("schemas are acyclic by construction");
        let nodes: Vec<_> = db.schema().nodes().iter().collect();
        let x: NodeSet = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| selector & (1 << (i % 63)) != 0)
            .map(|(_, &n)| n)
            .collect();
        for policy in policies() {
            let sink = CollectingSink::new();
            let metered = full_reduce_metered(&db, &tree, &policy, &sink);
            let plain = full_reduce(&db, &tree);
            prop_assert_eq!(&metered.removed, &plain.removed);
            for (m, p) in metered.relations.iter().zip(&plain.relations) {
                prop_assert!(m.same_contents(p), "metered reducer changed a relation");
            }
            if !x.is_empty() {
                let sink = CollectingSink::new();
                let metered = query_yannakakis_metered(&db, &x, &policy, &sink);
                let plain = query_yannakakis(&db, &x);
                match (metered, plain) {
                    (Ok(m), Ok(p)) => prop_assert!(m.same_contents(&p),
                        "metered query changed the answer"),
                    (Err(_), Err(_)) => {}
                    (m, p) => prop_assert!(false, "metered {m:?} vs unmetered {p:?}"),
                }
            }
        }
    }

    /// Coverage: a metered full reduce records exactly the semijoins the
    /// join tree implies (one up and one down per parent-child edge),
    /// conserves rows across them, and times at least one level.
    #[test]
    fn full_reduce_accounts_for_every_semijoin(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in any::<u64>(),
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let tree = join_tree(db.schema()).expect("schemas are acyclic by construction");
        for policy in policies() {
            let sink = CollectingSink::new();
            let reduced = full_reduce_metered(&db, &tree, &policy, &sink);
            let m = sink.snapshot();
            let tree_edges = (db.relations().len() - 1) as u64;
            prop_assert_eq!(m.semijoins.ops, 2 * tree_edges,
                "one upward and one downward semijoin per join-tree edge");
            prop_assert!(m.semijoins.kept <= m.semijoins.probed);
            prop_assert_eq!(
                m.semijoins.probed - m.semijoins.kept,
                reduced.total_removed() as u64,
                "rows dropped by semijoins must equal the reducer's removals"
            );
            if tree_edges > 0 {
                prop_assert!(!m.levels.is_empty(), "no level timings recorded");
                prop_assert!(m.levels.iter().any(|l| l.jobs > 0));
            }
            prop_assert!(!m.leases.is_empty(), "the reducer leases workers exactly once");
        }
    }
}

/// Regression for the carried-over lease item: the decomposed cyclic
/// pipeline — bag materialization, both reducer passes and the bottom-up
/// join — acquires **one** worker lease per query.  It used to lease once
/// per phase (materialize, then reduce+join), doubling pool traffic and
/// letting a concurrent query steal workers between the phases.
#[test]
fn decomposed_pipeline_leases_workers_exactly_once() {
    let schema = ring(5);
    let db = random_database(
        &schema,
        DataParams {
            tuples_per_relation: 48,
            domain: 8,
            skew: 0.0,
            key_cap: 0,
        },
        7,
    );
    let d = decompose(db.schema(), Heuristic::MinFill).expect("rings are nonempty");
    let output: NodeSet = db.schema().nodes().iter().collect();
    let mut policies = vec![
        ExecPolicy::sequential(JoinStrategy::Hash),
        ExecPolicy::parallel(JoinStrategy::Auto, 2),
    ];
    // A pooled lease too: drop the threshold so 240 tuples go parallel.
    let mut pooled = ExecPolicy::parallel(JoinStrategy::Hash, 2);
    pooled.parallel_threshold = 1;
    policies.push(pooled);
    for policy in policies {
        let sink = CollectingSink::new();
        let got = yannakakis_join_decomposed_metered(&db, &d, &output, &policy, &sink);
        let want = yannakakis_join_decomposed(&db, &d, &output, &ExecPolicy::default());
        assert!(got.same_contents(&want), "lease sharing changed the answer");
        let m = sink.snapshot();
        assert_eq!(
            m.leases.len(),
            1,
            "decomposed pipeline must lease exactly once (threads={})",
            policy.threads
        );
    }
}

/// The acyclic pipeline held this invariant already — keep it pinned.
#[test]
fn acyclic_pipeline_leases_workers_exactly_once() {
    let db = db_for(0, 2, 20, 4, 11);
    let x: NodeSet = db.schema().nodes().iter().collect();
    for policy in [
        ExecPolicy::sequential(JoinStrategy::Hash),
        ExecPolicy::parallel(JoinStrategy::Auto, 2),
    ] {
        let sink = CollectingSink::new();
        query_yannakakis_metered(&db, &x, &policy, &sink).expect("full output is joinable");
        assert_eq!(sink.snapshot().leases.len(), 1);
    }
}
