//! Property suite for the governance layer: limits must bound the engine,
//! never corrupt it.
//!
//! Three invariant families over random acyclic *and* cyclic databases:
//!
//! 1. **Transparency** — a governor with no limits set yields tuple-for-tuple
//!    the same answer as the ungoverned path (the same code monomorphized
//!    over [`NoopGovernor`]).
//! 2. **No wrong answers** — a racing deadline either returns the correct
//!    answer or `Err(DeadlineExceeded)`; it never returns a wrong relation.
//! 3. **Abort hygiene** — however a query is aborted (cancellation, a zero
//!    deadline, a starved budget, or an injected failpoint), the loaded
//!    database is left bit-identical and the next ungoverned query over it
//!    still matches the naive-join oracle.

use acyclic_hypergraphs::acyclic::join_tree;
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::reldb::{
    full_reduce, full_reduce_governed, query_via_full_join, query_yannakakis,
    query_yannakakis_governed, CancelToken, Database, EngineError, ExecPolicy, NoopMetrics,
    QueryGovernor, Tuple,
};
use acyclic_hypergraphs::workload::{chain, random_database, ring, snowflake, star, DataParams};
use proptest::prelude::*;
use std::time::Duration;

/// Acyclic benchmark families plus the cyclic ring, so the governed paths
/// through both the join tree and the hypertree decomposition are covered.
fn schema(family: usize, shape: usize) -> Hypergraph {
    match family % 4 {
        0 => chain(2 + shape % 4, 2 + shape % 2, 1),
        1 => star(2 + shape % 4, 2),
        2 => snowflake(2 + shape % 2, 2, 2),
        _ => ring(4 + shape % 3),
    }
}

fn db_for(family: usize, shape: usize, tuples: usize, domain: i64, seed: u64) -> Database {
    random_database(
        &schema(family, shape),
        DataParams {
            tuples_per_relation: tuples,
            domain,
            skew: 0.0,
            key_cap: 0,
        },
        seed,
    )
}

/// Output attributes selected by a bitmask, never empty.
fn select(db: &Database, selector: u64) -> NodeSet {
    let nodes: Vec<_> = db.schema().nodes().iter().collect();
    let x: NodeSet = nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| selector & (1 << (i % 63)) != 0)
        .map(|(_, &n)| n)
        .collect();
    if x.is_empty() {
        std::iter::once(nodes[0]).collect()
    } else {
        x
    }
}

/// The database's observable state: every relation's exact tuple sequence.
fn snapshot(db: &Database) -> Vec<Vec<Tuple>> {
    db.relations()
        .iter()
        .map(|r| r.tuples().collect())
        .collect()
}

/// Asserts the strongest abort guarantee: the database is bit-identical to
/// `before`, and a fresh ungoverned query still matches the oracle.
fn assert_untouched(db: &Database, before: &[Vec<Tuple>], x: &NodeSet) {
    assert_eq!(snapshot(db), before, "abort mutated the database");
    let oracle = query_via_full_join(db, x);
    let after = query_yannakakis(db, x).expect("post-abort query must succeed");
    assert!(
        after.same_contents(&oracle),
        "post-abort query disagrees with the oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transparency: a governor with no limits is invisible — the reducer
    /// and the routed Yannakakis query agree tuple-for-tuple with the
    /// ungoverned paths.
    #[test]
    fn unlimited_governor_does_not_perturb_results(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in any::<u64>(),
        selector in any::<u64>(),
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let x = select(&db, selector);
        let policy = ExecPolicy::default();
        let gov = QueryGovernor::new();
        if let Some(tree) = join_tree(db.schema()) {
            let governed = full_reduce_governed(&db, &tree, &policy, &NoopMetrics, &gov)
                .expect("no limit can trip");
            let plain = full_reduce(&db, &tree);
            prop_assert_eq!(&governed.removed, &plain.removed);
            for (g, p) in governed.relations.iter().zip(&plain.relations) {
                prop_assert!(g.same_contents(p), "governed reducer changed a relation");
            }
        }
        let governed = query_yannakakis_governed(&db, &x, &policy, &NoopMetrics, &gov)
            .expect("no limit can trip");
        let plain = query_yannakakis(&db, &x).expect("ungoverned query");
        prop_assert!(governed.same_contents(&plain), "governed query changed the answer");
    }

    /// No wrong answers under deadline pressure: whatever instant the clock
    /// runs out, the governed query either completes correctly or surfaces
    /// `DeadlineExceeded` — never a wrong relation, never a panic.
    #[test]
    fn racing_deadline_is_timeout_or_correct_never_wrong(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in any::<u64>(),
        selector in any::<u64>(),
        deadline_us in 0u64..200,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let x = select(&db, selector);
        let gov = QueryGovernor::new().with_deadline(Duration::from_micros(deadline_us));
        match query_yannakakis_governed(&db, &x, &ExecPolicy::default(), &NoopMetrics, &gov) {
            Ok(answer) => {
                let oracle = query_via_full_join(&db, &x);
                prop_assert!(answer.same_contents(&oracle),
                    "a governed query beat its deadline with a wrong answer");
            }
            Err(EngineError::DeadlineExceeded { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected abort: {other}"),
        }
    }

    /// Abort hygiene: cancellation, a zero deadline and a one-byte budget
    /// all abort with the documented error, leave the database bit-identical
    /// and keep the next query correct.
    #[test]
    fn aborted_query_leaves_database_unchanged(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in any::<u64>(),
        selector in any::<u64>(),
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let x = select(&db, selector);
        let policy = ExecPolicy::default();
        let before = snapshot(&db);

        let token = CancelToken::new();
        token.cancel();
        let gov = QueryGovernor::with_token(token);
        match query_yannakakis_governed(&db, &x, &policy, &NoopMetrics, &gov) {
            Err(EngineError::Cancelled) => {}
            other => prop_assert!(false, "cancelled token must abort, got {other:?}"),
        }
        assert_untouched(&db, &before, &x);

        let gov = QueryGovernor::new().with_deadline(Duration::ZERO);
        match query_yannakakis_governed(&db, &x, &policy, &NoopMetrics, &gov) {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => prop_assert!(false, "zero deadline must abort, got {other:?}"),
        }
        assert_untouched(&db, &before, &x);

        // One byte of budget: anything that materializes a row trips; a
        // query whose every intermediate is empty may legitimately finish.
        let gov = QueryGovernor::new().with_memory_budget(1);
        match query_yannakakis_governed(&db, &x, &policy, &NoopMetrics, &gov) {
            Err(EngineError::BudgetExceeded { .. }) => {}
            Ok(answer) => {
                let oracle = query_via_full_join(&db, &x);
                prop_assert!(answer.same_contents(&oracle),
                    "a starved query that finished must still be correct");
            }
            Err(other) => prop_assert!(false, "unexpected abort: {other}"),
        }
        assert_untouched(&db, &before, &x);
    }
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use acyclic_hypergraphs::reldb::{FailMode, FailpointGovernor};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A fault injected at a random semijoin either never fires (the
        /// query is correct) or aborts cleanly with the database untouched.
        #[test]
        fn random_semijoin_failpoint_aborts_cleanly(
            family in 0usize..4,
            shape in 0usize..4,
            tuples in 1usize..16,
            domain in 1i64..5,
            seed in any::<u64>(),
            selector in any::<u64>(),
            nth in 1u64..8,
        ) {
            let db = db_for(family, shape, tuples, domain, seed);
            let x = select(&db, selector);
            let before = snapshot(&db);
            let gov = FailpointGovernor::new().fail_at_semijoin(nth);
            match query_yannakakis_governed(&db, &x, &ExecPolicy::default(), &NoopMetrics, &gov) {
                Ok(answer) => {
                    let oracle = query_via_full_join(&db, &x);
                    prop_assert!(answer.same_contents(&oracle),
                        "failpoint never fired but the answer is wrong");
                }
                Err(EngineError::Cancelled) => {}
                Err(other) => prop_assert!(false, "unexpected abort: {other}"),
            }
            assert_untouched(&db, &before, &x);
        }

        /// Same failpoint, panic flavor: the injected panic is contained to
        /// `Err(WorkerPanic)` — it never escapes the public API — and the
        /// database survives untouched.
        #[test]
        fn injected_panic_is_contained_and_leaves_database_unchanged(
            family in 0usize..4,
            shape in 0usize..4,
            tuples in 2usize..16,
            domain in 1i64..4,
            seed in any::<u64>(),
            selector in any::<u64>(),
        ) {
            let db = db_for(family, shape, tuples, domain, seed);
            let x = select(&db, selector);
            let before = snapshot(&db);
            let gov = FailpointGovernor::new()
                .fail_at_semijoin(1)
                .fail_mode(FailMode::Panic);
            match query_yannakakis_governed(&db, &x, &ExecPolicy::default(), &NoopMetrics, &gov) {
                Err(EngineError::WorkerPanic(msg)) => {
                    prop_assert!(msg.contains("injected"), "payload: {msg}");
                }
                Ok(_) => {
                    // Single-relation schemas have no semijoin to fail at.
                    prop_assert!(db.relations().len() == 1,
                        "the first-semijoin panic failpoint never fired");
                }
                Err(other) => prop_assert!(false, "unexpected abort: {other}"),
            }
            assert_untouched(&db, &before, &x);
        }
    }
}
