//! Property-based tests over randomly generated hypergraphs and databases.
//!
//! These are the workspace-level invariants that tie the crates together:
//! the paper's theorems must hold on *every* generated instance, not just
//! the worked examples.

use acyclic_hypergraphs::acyclic::{
    canonical_connection, check_theorem_6_1, find_independent_path, graham_reduction,
    gyo_reduction, is_acyclic_mcs, is_berge_acyclic, is_beta_acyclic, is_confluent, join_tree,
    AcyclicityExt,
};
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::reldb::{
    is_globally_consistent, is_pairwise_consistent, make_globally_consistent, query_via_connection,
    query_via_full_join, query_yannakakis, yannakakis_join,
};
use acyclic_hypergraphs::tableau::tableau_reduction;
use acyclic_hypergraphs::workload::{
    chain, consistent_database, random_acyclic, random_database, random_hypergraph, star,
    AcyclicParams, DataParams, RandomParams,
};
use proptest::prelude::*;

/// Strategy: a random acyclic hypergraph (by construction).
fn acyclic_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..14, any::<u64>()).prop_map(|(edges, seed)| {
        random_acyclic(
            AcyclicParams {
                edges,
                min_edge_size: 2,
                max_edge_size: 4,
                max_overlap: 2,
            },
            seed,
        )
    })
}

/// Strategy: a uniformly random hypergraph (acyclic or cyclic).
fn any_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (2usize..10, 4usize..10, any::<u64>()).prop_map(|(edges, nodes, seed)| {
        random_hypergraph(
            RandomParams {
                edges,
                nodes,
                min_edge_size: 2,
                max_edge_size: 3,
            },
            seed,
        )
    })
}

/// Strategy: a random subset of a hypergraph's nodes to use as a sacred set.
fn sacred_subset(h: &Hypergraph, selector: u64) -> NodeSet {
    let nodes: Vec<_> = h.nodes().iter().collect();
    nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| selector & (1 << (i % 63)) != 0)
        .map(|(_, &n)| n)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.5: GR(H, X) = TR(H, X) on acyclic hypergraphs, for any X.
    #[test]
    fn gr_equals_tr_on_acyclic(h in acyclic_hypergraph(), selector in any::<u64>()) {
        let x = sacred_subset(&h, selector);
        let gr = graham_reduction(&h, &x);
        let tr = tableau_reduction(&h, &x);
        prop_assert!(gr.same_edge_sets(&tr),
            "GR = {} but TR = {}", gr.display(), tr.display());
    }

    /// Lemma 3.6: TR(H, X) is node-generated, acyclic or not.
    #[test]
    fn tr_is_node_generated(h in any_hypergraph(), selector in any::<u64>()) {
        let x = sacred_subset(&h, selector);
        let tr = tableau_reduction(&h, &x);
        prop_assert!(h.is_node_generated_subhypergraph(&tr));
    }

    /// Corollary 3.7 + Lemma 3.8: acyclicity is preserved by TR and TR is
    /// monotone (on nodes) in the sacred set.
    #[test]
    fn tr_preserves_acyclicity_and_is_monotone(h in acyclic_hypergraph(), selector in any::<u64>()) {
        let x = sacred_subset(&h, selector);
        let tr = tableau_reduction(&h, &x);
        prop_assert!(tr.is_acyclic());
        // Shrinking the sacred set can only shrink the connection's nodes.
        if let Some(first) = x.first() {
            let mut smaller = x.clone();
            smaller.remove(first);
            let tr_small = tableau_reduction(&h, &smaller);
            prop_assert!(tr_small.nodes().is_subset(&tr.nodes()));
        }
    }

    /// Lemma 2.1: Graham reduction is confluent (same fixed point under
    /// nodes-first, edges-first and random orders).
    #[test]
    fn graham_confluent(h in any_hypergraph(), selector in any::<u64>()) {
        let x = sacred_subset(&h, selector);
        prop_assert!(is_confluent(&h, &x, 6));
    }

    /// Theorem 6.1 + Corollary 6.2 + the join-tree characterization: the
    /// GYO test, the MCS test, join-tree existence and independent-path
    /// non-existence all agree.
    #[test]
    fn theorem_6_1_equivalence(h in any_hypergraph()) {
        let report = check_theorem_6_1(&h);
        prop_assert!(report.consistent(), "inconsistent report {report:?} for {}", h.display());
    }

    /// The certificates are real: cyclic hypergraphs yield verified
    /// independent paths, acyclic ones yield join trees satisfying the
    /// running-intersection property.
    #[test]
    fn certificates_verify(h in any_hypergraph()) {
        if h.is_acyclic() {
            if !h.is_empty() {
                let tree = join_tree(&h).expect("acyclic");
                prop_assert!(tree.verify_running_intersection(&h));
            }
            prop_assert!(find_independent_path(&h).is_none());
        } else {
            let path = find_independent_path(&h).expect("cyclic hypergraphs have certificates");
            prop_assert!(path.is_connecting_path(&h));
            prop_assert!(path.is_independent(&h));
        }
    }

    /// GYO agrees with the paper's definition of acyclicity on small inputs.
    #[test]
    fn gyo_matches_definition(h in any_hypergraph()) {
        if h.node_count() <= 14 {
            prop_assert_eq!(h.is_acyclic(), h.is_acyclic_by_definition());
        }
    }

    /// GYO agrees with the MCS (chordality + conformality) test.
    #[test]
    fn gyo_matches_mcs(h in any_hypergraph()) {
        prop_assert_eq!(h.is_acyclic(), is_acyclic_mcs(&h));
    }

    /// The acyclicity hierarchy is a chain: Berge ⇒ β ⇒ α.
    #[test]
    fn hierarchy_is_a_chain(h in any_hypergraph()) {
        if is_berge_acyclic(&h) {
            prop_assert!(is_beta_acyclic(&h));
        }
        if h.edge_count() <= 12 && is_beta_acyclic(&h) {
            prop_assert!(h.is_acyclic());
        }
    }

    /// Canonical connections always cover the queried nodes and only use
    /// partial edges of the hypergraph.
    #[test]
    fn connection_covers_query(h in acyclic_hypergraph(), selector in any::<u64>()) {
        let x = sacred_subset(&h, selector);
        let cc = canonical_connection(&h, &x);
        prop_assert!(cc.nodes().is_superset(&x));
        for e in cc.edges() {
            prop_assert!(h.covers(&e.nodes));
        }
    }

    /// Acyclic hypergraphs GYO-reduce to nothing; cyclic ones never do.
    #[test]
    fn gyo_reduction_endpoint(h in any_hypergraph()) {
        prop_assert_eq!(gyo_reduction(&h).is_empty(), h.is_acyclic());
    }
}

proptest! {
    // Database-level properties are more expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Yannakakis over the join tree computes exactly the naive
    /// join-then-project answer, on arbitrary (possibly dangling) data.
    #[test]
    fn yannakakis_matches_naive(edges in 2usize..6, seed in any::<u64>(), selector in any::<u64>()) {
        let schema = chain(edges, 3, 1);
        let db = random_database(&schema, DataParams { tuples_per_relation: 24, domain: 4, skew: 0.0, key_cap: 0 }, seed);
        let tree = join_tree(&schema).expect("chains are acyclic");
        let x = sacred_subset(&schema, selector);
        let fast = yannakakis_join(&db, &tree, &x);
        let naive = query_via_full_join(&db, &x);
        prop_assert!(fast.same_contents(&naive));
    }

    /// On globally consistent databases over acyclic schemas the canonical-
    /// connection answer equals the join-everything answer (the §7 claim);
    /// on arbitrary databases it is always a superset.
    #[test]
    fn connection_query_semantics(satellites in 2usize..5, seed in any::<u64>(), selector in any::<u64>()) {
        let schema = star(satellites, 3);
        let x = sacred_subset(&schema, selector);

        let raw = random_database(&schema, DataParams { tuples_per_relation: 16, domain: 3, skew: 0.0, key_cap: 0 }, seed);
        let via_cc = query_via_connection(&raw, &x);
        let naive = query_via_full_join(&raw, &x);
        for t in naive.tuples() {
            prop_assert!(via_cc.contains(&t), "connection answer must contain the naive answer");
        }

        let consistent = make_globally_consistent(&raw);
        let via_cc = query_via_connection(&consistent, &x);
        let naive = query_via_full_join(&consistent, &x);
        let yann = query_yannakakis(&consistent, &x).expect("acyclic schema");
        prop_assert!(via_cc.same_contents(&naive));
        prop_assert!(yann.same_contents(&naive));
    }

    /// Global consistency implies pairwise consistency, and the
    /// `make_globally_consistent` repair really produces both.
    #[test]
    fn consistency_implication(edges in 2usize..5, seed in any::<u64>()) {
        let schema = chain(edges, 2, 1);
        let db = consistent_database(&schema, DataParams { tuples_per_relation: 12, domain: 3, skew: 0.0, key_cap: 0 }, seed);
        prop_assert!(is_globally_consistent(&db));
        prop_assert!(is_pairwise_consistent(&db));
    }
}
