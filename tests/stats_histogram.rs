//! Property suite for the server telemetry layer: the log-bucketed
//! latency [`Histogram`] behind `hyperqd`'s `stats` op, and the live
//! registry driven over the wire.
//!
//! The histogram properties pin the algebra the `hyperq client bench`
//! scrape-diff workflow depends on: recording is order-insensitive and
//! merge-associative (so two scrapes bracket a window exactly), quantiles
//! are monotone (p50 ≤ p90 ≤ p99 ≤ max), every recorded value lands in a
//! bucket whose representative is within the bucketing scheme's 1/16
//! relative-error bound, and the sparse wire form round-trips.  The live
//! half runs the 8-client soak: the server's histogram count must grow by
//! exactly the number of queries the soak issued — no lost or duplicated
//! observations under concurrency.

use acyclic_hypergraphs::hyperqd::json::Json;
use acyclic_hypergraphs::hyperqd::protocol::{
    parse_response, render_request, EngineKind, Overrides, QuerySpec, Request, Response,
};
use acyclic_hypergraphs::hyperqd::server::Server;
use acyclic_hypergraphs::hyperqd::stats::Histogram;
use acyclic_hypergraphs::workload::{chain, consistent_database, DataParams};
use proptest::collection::vec as arb_vec;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Recording is order-insensitive and merging is associative: any way
    /// of splitting the observations across histograms and merging them
    /// back yields the same buckets, count and max.
    #[test]
    fn merge_is_associative_and_order_insensitive(
        values in arb_vec(0u64..2_000_000, 0..120),
        cut_a in any::<u64>(),
        cut_b in any::<u64>(),
    ) {
        let whole = build(&values);
        let (i, j) = {
            let n = values.len() as u64 + 1;
            let (a, b) = ((cut_a % n) as usize, (cut_b % n) as usize);
            (a.min(b), a.max(b))
        };
        // (left ∪ mid) ∪ right  ==  left ∪ (mid ∪ right)  ==  whole.
        let (left, mid, right) = (build(&values[..i]), build(&values[i..j]), build(&values[j..]));
        let mut lm = left.clone();
        lm.merge(&mid);
        lm.merge(&right);
        let mut mr = mid.clone();
        mr.merge(&right);
        let mut l_mr = left.clone();
        l_mr.merge(&mr);
        prop_assert_eq!(&lm, &whole);
        prop_assert_eq!(&l_mr, &whole);
        // Reversed insertion order changes nothing either.
        let reversed: Vec<u64> = values.iter().rev().copied().collect();
        prop_assert_eq!(&build(&reversed), &whole);
        prop_assert_eq!(whole.count(), values.len() as u64);
    }

    /// Diff inverts merge: the window between two scrapes is exactly the
    /// observations recorded in between.
    #[test]
    fn diff_recovers_the_merged_window(
        before in arb_vec(0u64..1_000_000, 0..60),
        window in arb_vec(0u64..1_000_000, 0..60),
    ) {
        let earlier = build(&before);
        let mut later = earlier.clone();
        for &v in &window {
            later.record(v);
        }
        let diff = later.diff(&earlier);
        prop_assert_eq!(diff.count(), window.len() as u64);
        // Bucket-wise the diff equals a fresh histogram of the window
        // (the max differs: a cumulative histogram can't forget an old
        // max, so diff keeps the later scrape's).
        prop_assert_eq!(diff.sparse(), build(&window).sparse());
    }

    /// Quantiles are monotone in q, bounded by the exact max, and each
    /// reported quantile is within the bucketing scheme's 1/16 relative
    /// error of some recorded value.
    #[test]
    fn quantiles_are_monotone_and_error_bounded(
        values in arb_vec(0u64..10_000_000, 1..120),
    ) {
        let h = build(&values);
        let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert!(p99 <= h.max(), "p99 {p99} > max {}", h.max());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        for q in [p50, p90, p99] {
            let close = values.iter().any(|&v| {
                let err = (q as i128 - v as i128).unsigned_abs();
                err * 16 <= u128::from(v.max(1))
            });
            prop_assert!(close, "quantile {q} near no recorded value {values:?}");
        }
    }

    /// The sparse wire form (what the `stats` op ships) reconstructs the
    /// histogram exactly — the contract `hyperq client bench` relies on
    /// when it diffs two scrapes client-side.
    #[test]
    fn sparse_wire_form_round_trips(
        values in arb_vec(0u64..5_000_000, 0..120),
    ) {
        let h = build(&values);
        let rebuilt = Histogram::from_sparse(&h.sparse(), h.max())
            .expect("own sparse form is valid");
        prop_assert_eq!(&rebuilt, &h);
    }
}

// ----------------------------------------------------------- live soak

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 25;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn round_trip(&mut self, request: &Request) -> Response {
        let line = render_request(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send");
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf).expect("read in time");
        assert!(n > 0, "server closed the connection unexpectedly");
        parse_response(buf.trim_end()).expect("well-formed response")
    }
}

/// Scrapes the stats op and rebuilds the latency histogram from its
/// sparse wire form, plus the derived `queries_total` and the by-outcome
/// breakdown for the conservation check.
fn scrape(addr: SocketAddr) -> (Histogram, u64, u64) {
    let mut c = Client::connect(addr);
    let stats = match c.round_trip(&Request::Stats { prometheus: false }) {
        Response::Stats {
            stats: Some(stats), ..
        } => stats,
        other => panic!("stats scrape got {other:?}"),
    };
    let latency = stats.get("latency_us").expect("latency_us present");
    let max = latency.get("max").and_then(Json::as_u64).expect("max");
    let pairs: Vec<(usize, u64)> = latency
        .get("buckets")
        .and_then(Json::as_arr)
        .expect("buckets")
        .iter()
        .map(|p| {
            let p = p.as_arr().expect("bucket pair");
            (
                p[0].as_u64().expect("bucket index") as usize,
                p[1].as_u64().expect("bucket count"),
            )
        })
        .collect();
    let histogram = Histogram::from_sparse(&pairs, max).expect("valid sparse form");
    let total = stats
        .get("queries_total")
        .and_then(Json::as_u64)
        .expect("queries_total");
    let by_outcome: u64 = match stats.get("queries_by_outcome").expect("by_outcome") {
        Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        other => panic!("queries_by_outcome not an object: {other}"),
    };
    (histogram, total, by_outcome)
}

/// The 8-client soak against the live registry: the latency histogram and
/// `queries_total` each grow by exactly the number of queries issued, and
/// the by-outcome breakdown conserves the total — under full concurrency.
#[test]
fn soak_query_count_matches_the_stats_delta() {
    let schema = chain(3, 2, 1);
    let db = Arc::new(consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 24,
            domain: 6,
            skew: 0.0,
            key_cap: 0,
        },
        7,
    ));
    let server = Server::bind_preloaded("127.0.0.1:0", vec![("chain".into(), db)]).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let (before, total_before, outcome_before) = scrape(addr);
    assert_eq!(total_before, outcome_before);

    let threads: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for step in 0..QUERIES_PER_CLIENT {
                    let request = Request::Query(QuerySpec {
                        db: "chain".into(),
                        select: vec!["N00000".into(), "N00002".into()],
                        engine: match (client_id + step) % 3 {
                            0 => None,
                            1 => Some(EngineKind::Yannakakis),
                            _ => Some(EngineKind::Connection),
                        },
                        overrides: Overrides::default(),
                    });
                    match c.round_trip(&request) {
                        Response::Answer { trace, .. } => {
                            assert!(
                                trace.as_deref().is_some_and(|t| t.starts_with("q-")),
                                "answer lacks a trace id"
                            );
                        }
                        other => panic!("soak query got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("soak client panicked");
    }

    let (after, total_after, outcome_after) = scrape(addr);
    let issued = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(
        after.diff(&before).count(),
        issued,
        "histogram delta must equal the queries issued"
    );
    assert_eq!(total_after - total_before, issued);
    assert_eq!(
        total_after, outcome_after,
        "outcomes must conserve the total"
    );

    let mut c = Client::connect(addr);
    assert_eq!(
        c.round_trip(&Request::Shutdown { now: false }),
        Response::Bye
    );
    let stats = handle.join();
    assert!(stats.drained_clean, "drain must finish clean: {stats:?}");
}

/// The Prometheus exposition is served over the same op and carries the
/// counter families the CI scrape greps for.
#[test]
fn prometheus_exposition_is_served_over_the_wire() {
    let schema = chain(3, 2, 1);
    let db = Arc::new(consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 12,
            domain: 5,
            skew: 0.0,
            key_cap: 0,
        },
        7,
    ));
    let server = Server::bind_preloaded("127.0.0.1:0", vec![("chain".into(), db)]).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut c = Client::connect(addr);
    match c.round_trip(&Request::Query(QuerySpec {
        db: "chain".into(),
        select: vec!["N00000".into()],
        engine: None,
        overrides: Overrides::default(),
    })) {
        Response::Answer { .. } => {}
        other => panic!("warmup query got {other:?}"),
    }
    let text = match c.round_trip(&Request::Stats { prometheus: true }) {
        Response::Stats {
            text: Some(text),
            stats: None,
        } => text,
        other => panic!("prometheus scrape got {other:?}"),
    };
    for family in [
        "# TYPE hyperqd_queries_total counter",
        "hyperqd_queries_total{outcome=\"ok\"} 1",
        "hyperqd_query_latency_us{quantile=\"0.5\"}",
        "hyperqd_query_latency_us_count 1",
        "hyperqd_in_flight_queries 0",
    ] {
        assert!(
            text.contains(family),
            "exposition lacks {family:?}:\n{text}"
        );
    }

    assert_eq!(
        c.round_trip(&Request::Shutdown { now: false }),
        Response::Bye
    );
    assert!(handle.join().drained_clean);
}
