//! Integration tests about the *process* of Graham reduction — the trace
//! structure Lemma 2.1 and Lemma 3.4 talk about — and about the interplay
//! between reductions and the derived structures (join trees, blocks,
//! hierarchy) across crates.

use acyclic_hypergraphs::acyclic::{
    degree, graham_reduce, graham_reduction, graham_reduction_fast, gyo_reduction, is_confluent,
    join_tree, AcyclicityExt, Degree, GrahamStep, Strategy,
};
use acyclic_hypergraphs::hypergraph::NodeSet;
use acyclic_hypergraphs::tableau::{find_mapping_onto, minimize, Tableau};
use acyclic_hypergraphs::workload::{
    chain, paper, random_acyclic, ring, snowflake, star, tpc_like, AcyclicParams,
};
use std::collections::BTreeSet;

/// Every reduction order applies the same number of steps on acyclic
/// hypergraphs: each removes every node once and every edge once.
#[test]
fn trace_lengths_are_order_independent() {
    for h in [
        paper::fig1(),
        chain(6, 3, 1),
        star(5, 3),
        random_acyclic(AcyclicParams::with_edges(12), 3),
    ] {
        let x = NodeSet::new();
        let a = graham_reduce(&h, &x, Strategy::NodesFirst);
        let b = graham_reduce(&h, &x, Strategy::EdgesFirst);
        let c = graham_reduce(&h, &x, Strategy::Seeded(99));
        assert!(a.result.is_empty() && b.result.is_empty() && c.result.is_empty());
        assert_eq!(a.steps.len(), b.steps.len());
        assert_eq!(a.steps.len(), c.steps.len());
        // A full GYO reduction of a connected acyclic hypergraph removes
        // every node by a node-removal step and every edge but the last by
        // an edge-removal step (the final edge is dropped when its last node
        // goes).
        assert_eq!(a.node_removals(), h.node_count());
        assert_eq!(a.edge_removals(), h.edge_count() - 1);
    }
}

/// On cyclic hypergraphs the reduction gets stuck, and the stuck part is the
/// same under every order; the removed prefix differs only in order.
#[test]
fn stuck_remainder_is_order_independent() {
    for h in [ring(5), paper::fig1_ring(), ring(9)] {
        let x = NodeSet::new();
        let nodes_first = graham_reduce(&h, &x, Strategy::NodesFirst).result;
        let edges_first = graham_reduce(&h, &x, Strategy::EdgesFirst).result;
        let seeded = graham_reduce(&h, &x, Strategy::Seeded(5)).result;
        assert!(!nodes_first.is_empty());
        assert!(nodes_first.same_edge_sets(&edges_first));
        assert!(nodes_first.same_edge_sets(&seeded));
        assert!(is_confluent(&h, &x, 12));
    }
}

/// Lemma 3.4's direction in executable form: every Graham-reduction step
/// sequence is matched by a row mapping — so the rows surviving in
/// `GR(H, X)` always admit a retraction from the full tableau.
#[test]
fn graham_survivors_admit_a_row_mapping() {
    for (h, sacred_names) in [
        (paper::fig1(), vec!["A", "D"]),
        (paper::fig1(), vec!["B", "F"]),
        (chain(5, 3, 1), vec!["N00000"]),
        (star(4, 3), vec!["K000", "K002"]),
    ] {
        let x = h.node_set(sacred_names.iter().copied()).unwrap();
        let gr = graham_reduction(&h, &x);
        // Identify the original edges whose (partial) versions survive.
        let survivors: BTreeSet<tableau::RowId> = gr
            .edges()
            .iter()
            .map(|pe| {
                let idx = h
                    .edges()
                    .iter()
                    .position(|e| e.label == pe.label)
                    .expect("labels are preserved by reduction");
                tableau::RowId(idx as u32)
            })
            .collect();
        let t = Tableau::new(&h, &x);
        assert!(
            find_mapping_onto(&t, &survivors).is_some(),
            "no row mapping onto the Graham survivors {survivors:?} for X = {sacred_names:?}"
        );
        // And the tableau minimization target is exactly the survivor set on
        // these acyclic inputs (Theorem 3.5 at the row level).
        assert_eq!(minimize(&t).target, survivors);
    }
}

/// The fast pass-based reducer and the traced reducer agree on larger
/// generated workloads, not just the unit-test fixtures.
#[test]
fn fast_and_traced_reducers_agree_on_workloads() {
    for (i, h) in [
        random_acyclic(AcyclicParams::with_edges(40), 17),
        snowflake(4, 3, 3),
        tpc_like(),
        ring(12),
    ]
    .into_iter()
    .enumerate()
    {
        for selector in [0u64, 0b1011, u64::MAX] {
            let x: NodeSet = h
                .nodes()
                .iter()
                .enumerate()
                .filter(|(k, _)| selector & (1 << (k % 60)) != 0)
                .map(|(_, n)| n)
                .collect();
            let fast = graham_reduction_fast(&h, &x);
            let traced = graham_reduction(&h, &x);
            assert!(
                fast.same_edge_sets(&traced),
                "workload #{i}: fast and traced reducers disagree"
            );
        }
    }
}

/// Removing the root edge of a join tree from an acyclic hypergraph can make
/// it cyclic (Fig. 1!), while removing a leaf edge never can.
#[test]
fn leaf_removal_preserves_acyclicity() {
    for h in [
        paper::fig1(),
        chain(7, 3, 1),
        star(6, 3),
        snowflake(3, 2, 3),
        random_acyclic(AcyclicParams::with_edges(20), 23),
    ] {
        let tree = join_tree(&h).expect("acyclic workload");
        // A leaf of the join tree is an edge with no children.
        let leaf = h
            .edge_ids()
            .find(|e| tree.children(*e).is_empty())
            .expect("every tree has a leaf");
        let remaining: Vec<_> = h
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != leaf.index())
            .map(|(_, e)| e.clone())
            .collect();
        let smaller = h.with_edges(remaining);
        assert!(
            smaller.is_acyclic(),
            "removing leaf {leaf} broke acyclicity of {}",
            h.display()
        );
    }
    // The contrast: removing the covering edge {A,C,E} from Fig. 1 (the root
    // of its join tree) leaves the cyclic ring of Example 5.1.
    let fig1 = paper::fig1();
    let without_root: Vec<_> = fig1.edges().iter().take(3).cloned().collect();
    assert!(!fig1.with_edges(without_root).is_acyclic());
}

/// The Berge ⊂ β ⊂ α hierarchy is populated by the workload generators:
/// chains are Berge-acyclic, "wide" overlaps give β-but-not-Berge, Fig. 1 is
/// α-but-not-β, and rings are cyclic.
#[test]
fn hierarchy_degrees_across_workloads() {
    assert_eq!(degree(&chain(5, 2, 1)), Degree::Berge);
    let wide_overlap = acyclic_hypergraphs::hypergraph::Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["A", "B", "D"],
    ])
    .unwrap();
    assert_eq!(degree(&wide_overlap), Degree::Beta);
    assert_eq!(degree(&paper::fig1()), Degree::Alpha);
    assert_eq!(degree(&ring(5)), Degree::Cyclic);
    // GYO agrees with every level above cyclic.
    for h in [chain(5, 2, 1), wide_overlap, paper::fig1()] {
        assert!(h.is_acyclic());
        assert!(gyo_reduction(&h).is_empty());
    }
}

/// Traces only ever mention real nodes and edges of the input, and node
/// removals never touch sacred nodes — a structural audit of the trace API.
#[test]
fn traces_are_well_formed() {
    let h = tpc_like();
    let x = h.node_set(["custkey", "orderkey"]).unwrap();
    let red = graham_reduce(&h, &x, Strategy::Seeded(1234));
    let labels: BTreeSet<&str> = h.edges().iter().map(|e| e.label.as_str()).collect();
    for step in &red.steps {
        match step {
            GrahamStep::RemoveNode { node, from_edge } => {
                assert!(h.nodes().contains(*node));
                assert!(!x.contains(*node), "sacred node removed");
                assert!(labels.contains(from_edge.as_str()));
            }
            GrahamStep::RemoveEdge { edge, subsumed_by } => {
                assert!(labels.contains(edge.as_str()));
                assert!(labels.contains(subsumed_by.as_str()));
                assert_ne!(edge, subsumed_by);
            }
        }
    }
    assert!(red.result.nodes().is_superset(&x));
}
