//! Equivalence property suite: the columnar engine against the retained
//! naive reference implementation (`reldb::reference`).
//!
//! Random acyclic databases come from the workload generators; every core
//! kernel — join, semijoin, projection, selection, the full reducer and the
//! Yannakakis join — must agree with the reference tuple-for-tuple.  This is
//! the safety net under the columnar rewrite: the reference is the
//! pre-rewrite engine kept alive as an oracle.

use acyclic_hypergraphs::acyclic::join_tree;
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::reldb::reference::{
    naive_full_reduce, naive_yannakakis_join, NaiveRelation,
};
use acyclic_hypergraphs::reldb::{full_reduce, yannakakis_join, Database, Relation, Tuple, Value};
use acyclic_hypergraphs::workload::{chain, random_database, snowflake, star, DataParams};
use proptest::prelude::*;

/// One of the acyclic benchmark schema families, scaled by `shape`.
fn schema(family: usize, shape: usize) -> Hypergraph {
    match family % 3 {
        0 => chain(2 + shape % 4, 2 + shape % 2, 1),
        1 => star(2 + shape % 4, 2),
        _ => snowflake(2 + shape % 2, 2, 2),
    }
}

fn db_for(family: usize, shape: usize, tuples: usize, domain: i64, seed: u64) -> Database {
    random_database(
        &schema(family, shape),
        DataParams {
            tuples_per_relation: tuples,
            domain,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pairwise join and semijoin agree with the reference on every pair of
    /// relations of a random acyclic database.
    #[test]
    fn join_and_semijoin_match_reference(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let rels = db.relations();
        let naive: Vec<NaiveRelation> = rels.iter().map(NaiveRelation::from_relation).collect();
        for i in 0..rels.len() {
            for j in 0..rels.len() {
                prop_assert!(
                    naive[i].join(&naive[j]).agrees_with(&rels[i].join(&rels[j])),
                    "join diverged on relations {i}×{j}"
                );
                prop_assert!(
                    naive[i].semijoin(&naive[j]).agrees_with(&rels[i].semijoin(&rels[j])),
                    "semijoin diverged on relations {i}⋉{j}"
                );
            }
        }
    }

    /// Projection onto random attribute subsets agrees with the reference,
    /// including the empty projection.
    #[test]
    fn projection_matches_reference(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
        keep_mask in 0usize..64,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        for r in db.relations() {
            let naive = NaiveRelation::from_relation(r);
            let kept: NodeSet = r
                .attributes()
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask & (1 << (i % 6)) != 0)
                .map(|(_, n)| n)
                .collect();
            prop_assert!(
                naive.project(&kept).agrees_with(&r.project(&kept)),
                "projection diverged on {} -> {} attrs",
                r.attributes().len(),
                kept.len()
            );
        }
    }

    /// The in-place full reducer removes exactly the tuples the reference
    /// reducer removes — same counts, same survivors.
    #[test]
    fn full_reduce_matches_reference(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let fast = full_reduce(&db, &tree);
        let (naive_rels, naive_removed) = naive_full_reduce(&db, &tree);
        prop_assert_eq!(&fast.removed, &naive_removed, "removed-tuple counts diverged");
        for (n, f) in naive_rels.iter().zip(&fast.relations) {
            prop_assert!(n.agrees_with(f), "reduced relation contents diverged");
        }
    }

    /// The full Yannakakis pipeline agrees with the reference pipeline on
    /// random output attribute sets.
    #[test]
    fn yannakakis_join_matches_reference(
        family in 0usize..3,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in 0u64..1_000,
        pick in 0usize..64,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let all: Vec<_> = db.schema().nodes().iter().collect();
        let output: NodeSet = all
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << (i % 6)) != 0)
            .map(|(_, &n)| n)
            .collect();
        let fast = yannakakis_join(&db, &tree, &output);
        let slow = naive_yannakakis_join(&db, &tree, &output);
        prop_assert!(slow.agrees_with(&fast), "yannakakis output diverged");
    }

    /// Kernels translate handles correctly across independently built
    /// relations (distinct value pools), matching the shared-pool result.
    #[test]
    fn cross_pool_kernels_match_shared_pool(
        tuples in 1usize..20,
        domain in 1i64..5,
        seed in 0u64..1_000,
    ) {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        // r and s_own intern into unrelated pools; s_shared mirrors s_own
        // inside r's pool.
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        let mut s_own = Relation::new("S", h.node_set(["B", "C"]).unwrap());
        let mut s_shared =
            Relation::with_pool("S", h.node_set(["B", "C"]).unwrap(), r.pool().clone());
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Value::Int(((x >> 33) as i64).rem_euclid(domain))
        };
        for _ in 0..tuples {
            let (va, vb) = (next(), next());
            r.insert(Tuple::from_pairs([(a, va), (b, vb)]));
            let (vb2, vc) = (next(), next());
            s_own.insert(Tuple::from_pairs([(b, vb2.clone()), (c, vc.clone())]));
            s_shared.insert(Tuple::from_pairs([(b, vb2), (c, vc)]));
        }
        prop_assert!(s_own.same_contents(&s_shared));
        prop_assert!(r.join(&s_own).same_contents(&r.join(&s_shared)));
        prop_assert!(r.semijoin(&s_own).same_contents(&r.semijoin(&s_shared)));
        prop_assert_eq!(r.semijoin_count(&s_own), r.semijoin_count(&s_shared));
    }
}

/// Fixed regression: the rewrite must remove exactly the same number of
/// dangling tuples as the pre-rewrite reducer did (the reference preserves
/// its semantics) on the canonical chain instance of the yannakakis tests.
#[test]
fn full_reduce_removed_counts_regression() {
    let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
    let (a, b, c, d) = (
        h.node("A").unwrap(),
        h.node("B").unwrap(),
        h.node("C").unwrap(),
        h.node("D").unwrap(),
    );
    let mut db = Database::empty(h);
    use acyclic_hypergraphs::hypergraph::EdgeId;
    for i in 0..5i64 {
        db.insert(EdgeId(0), Tuple::from_pairs([(a, i), (b, i)]));
    }
    for i in 0..3i64 {
        db.insert(EdgeId(1), Tuple::from_pairs([(b, i), (c, i * 10)]));
    }
    db.insert(EdgeId(1), Tuple::from_pairs([(b, 99), (c, 990)]));
    for i in 0..2i64 {
        db.insert(EdgeId(2), Tuple::from_pairs([(c, i * 10), (d, i + 100)]));
    }
    let tree = join_tree(db.schema()).unwrap();
    let fast = full_reduce(&db, &tree);
    let (_, naive_removed) = naive_full_reduce(&db, &tree);
    assert_eq!(fast.removed, naive_removed);
    assert_eq!(fast.total_removed(), naive_removed.iter().sum::<usize>());
    assert!(
        fast.total_removed() > 0,
        "instance must contain dangling tuples"
    );
}
