//! Equivalence property suite: the columnar engine against the retained
//! naive reference implementation (`reldb::reference`).
//!
//! Random acyclic databases come from the workload generators; every core
//! kernel — join, semijoin, projection, selection, the full reducer and the
//! Yannakakis join — must agree with the reference tuple-for-tuple.  This is
//! the safety net under the columnar rewrite: the reference is the
//! pre-rewrite engine kept alive as an oracle.

use acyclic_hypergraphs::acyclic::join_tree;
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::reldb::reference::{
    naive_full_reduce, naive_yannakakis_join, NaiveRelation,
};
use acyclic_hypergraphs::reldb::{
    full_reduce, full_reduce_with, yannakakis_join, yannakakis_join_with, Database, ExecPolicy,
    JoinStrategy, Relation, Tuple, Value, DEFAULT_MORSEL_ROWS,
};
use acyclic_hypergraphs::workload::{
    chain, random_database, snowflake, snowflake_tree, star, DataParams,
};
use proptest::prelude::*;

/// One of the acyclic benchmark schema families, scaled by `shape`.
fn schema(family: usize, shape: usize) -> Hypergraph {
    match family % 4 {
        0 => chain(2 + shape % 4, 2 + shape % 2, 1),
        1 => star(2 + shape % 4, 2),
        2 => snowflake(2 + shape % 2, 2, 2),
        // The fanout-tree snowflake: multi-edge join-tree levels, the shape
        // that exercises the parallel reducer's target-sharding.
        _ => snowflake_tree(1 + shape % 2, 2, 2 + shape % 2),
    }
}

fn db_for_skewed(
    family: usize,
    shape: usize,
    tuples: usize,
    domain: i64,
    skew: f64,
    seed: u64,
) -> Database {
    random_database(
        &schema(family, shape),
        DataParams {
            tuples_per_relation: tuples,
            domain,
            skew,
            key_cap: 0,
        },
        seed,
    )
}

fn db_for(family: usize, shape: usize, tuples: usize, domain: i64, seed: u64) -> Database {
    db_for_skewed(family, shape, tuples, domain, 0.0, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pairwise join and semijoin agree with the reference on every pair of
    /// relations of a random acyclic database.
    #[test]
    fn join_and_semijoin_match_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let rels = db.relations();
        let naive: Vec<NaiveRelation> = rels.iter().map(NaiveRelation::from_relation).collect();
        for i in 0..rels.len() {
            for j in 0..rels.len() {
                prop_assert!(
                    naive[i].join(&naive[j]).agrees_with(&rels[i].join(&rels[j])),
                    "join diverged on relations {i}×{j}"
                );
                prop_assert!(
                    naive[i].semijoin(&naive[j]).agrees_with(&rels[i].semijoin(&rels[j])),
                    "semijoin diverged on relations {i}⋉{j}"
                );
            }
        }
    }

    /// Projection onto random attribute subsets agrees with the reference,
    /// including the empty projection.
    #[test]
    fn projection_matches_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
        keep_mask in 0usize..64,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        for r in db.relations() {
            let naive = NaiveRelation::from_relation(r);
            let kept: NodeSet = r
                .attributes()
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask & (1 << (i % 6)) != 0)
                .map(|(_, n)| n)
                .collect();
            prop_assert!(
                naive.project(&kept).agrees_with(&r.project(&kept)),
                "projection diverged on {} -> {} attrs",
                r.attributes().len(),
                kept.len()
            );
        }
    }

    /// The in-place full reducer removes exactly the tuples the reference
    /// reducer removes — same counts, same survivors.
    #[test]
    fn full_reduce_matches_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        seed in 0u64..1_000,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let fast = full_reduce(&db, &tree);
        let (naive_rels, naive_removed) = naive_full_reduce(&db, &tree);
        prop_assert_eq!(&fast.removed, &naive_removed, "removed-tuple counts diverged");
        for (n, f) in naive_rels.iter().zip(&fast.relations) {
            prop_assert!(n.agrees_with(f), "reduced relation contents diverged");
        }
    }

    /// The full Yannakakis pipeline agrees with the reference pipeline on
    /// random output attribute sets.
    #[test]
    fn yannakakis_join_matches_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in 0u64..1_000,
        pick in 0usize..64,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let all: Vec<_> = db.schema().nodes().iter().collect();
        let output: NodeSet = all
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << (i % 6)) != 0)
            .map(|(_, &n)| n)
            .collect();
        let fast = yannakakis_join(&db, &tree, &output);
        let slow = naive_yannakakis_join(&db, &tree, &output);
        prop_assert!(slow.agrees_with(&fast), "yannakakis output diverged");
    }

    /// Kernels translate handles correctly across independently built
    /// relations (distinct value pools), matching the shared-pool result.
    #[test]
    fn cross_pool_kernels_match_shared_pool(
        tuples in 1usize..20,
        domain in 1i64..5,
        seed in 0u64..1_000,
    ) {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        // r and s_own intern into unrelated pools; s_shared mirrors s_own
        // inside r's pool.
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        let mut s_own = Relation::new("S", h.node_set(["B", "C"]).unwrap());
        let mut s_shared =
            Relation::with_pool("S", h.node_set(["B", "C"]).unwrap(), r.pool().clone());
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Value::Int(((x >> 33) as i64).rem_euclid(domain))
        };
        for _ in 0..tuples {
            let (va, vb) = (next(), next());
            r.insert(Tuple::from_pairs([(a, va), (b, vb)]));
            let (vb2, vc) = (next(), next());
            s_own.insert(Tuple::from_pairs([(b, vb2.clone()), (c, vc.clone())]));
            s_shared.insert(Tuple::from_pairs([(b, vb2), (c, vc)]));
        }
        prop_assert!(s_own.same_contents(&s_shared));
        prop_assert!(r.join(&s_own).same_contents(&r.join(&s_shared)));
        prop_assert!(r.semijoin(&s_own).same_contents(&r.semijoin(&s_shared)));
        // The sort-merge kernels translate handles exactly like the hash
        // kernels do.
        prop_assert!(r
            .join_with(&s_own, JoinStrategy::SortMerge)
            .same_contents(&r.join(&s_shared)));
        prop_assert!(r
            .semijoin_with(&s_own, JoinStrategy::SortMerge)
            .same_contents(&r.semijoin(&s_shared)));
        prop_assert_eq!(r.semijoin_count(&s_own), r.semijoin_count(&s_shared));
    }

    /// The level-synchronous parallel reducer is tuple-for-tuple identical
    /// to the sequential pass and to the reference oracle, across schema
    /// families (chains stress probe-sharding, fanout trees stress
    /// target-sharding) and Zipf-skewed data.
    #[test]
    fn parallel_full_reduce_matches_sequential_and_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..32,
        domain in 1i64..8,
        skew_tenths in 0usize..16,
        seed in 0u64..1_000,
        threads in 2usize..6,
    ) {
        let db = db_for_skewed(family, shape, tuples, domain, skew_tenths as f64 / 10.0, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let sequential = full_reduce_with(&db, &tree, &ExecPolicy::sequential(JoinStrategy::Hash));
        let parallel = full_reduce_with(&db, &tree, &ExecPolicy::parallel(JoinStrategy::Hash, threads));
        prop_assert_eq!(&sequential.removed, &parallel.removed, "removed counts diverged");
        for (s, p) in sequential.relations.iter().zip(&parallel.relations) {
            prop_assert!(s.same_contents(p), "parallel reducer diverged from sequential");
        }
        let (naive_rels, naive_removed) = naive_full_reduce(&db, &tree);
        prop_assert_eq!(&parallel.removed, &naive_removed, "removed counts diverged from oracle");
        for (n, p) in naive_rels.iter().zip(&parallel.relations) {
            prop_assert!(n.agrees_with(p), "parallel reducer diverged from oracle");
        }
    }

    /// The sort-merge kernels and the auto cost-pick agree with the hash
    /// kernels and the reference oracle on joins and semijoins, including
    /// Zipf-skewed (high-duplicate) data.
    #[test]
    fn sort_merge_kernels_match_hash_and_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        skew_tenths in 0usize..16,
        seed in 0u64..1_000,
    ) {
        let db = db_for_skewed(family, shape, tuples, domain, skew_tenths as f64 / 10.0, seed);
        let rels = db.relations();
        let naive: Vec<NaiveRelation> = rels.iter().map(NaiveRelation::from_relation).collect();
        for i in 0..rels.len() {
            for j in 0..rels.len() {
                let naive_join = naive[i].join(&naive[j]);
                let naive_semi = naive[i].semijoin(&naive[j]);
                for strategy in [JoinStrategy::SortMerge, JoinStrategy::Auto] {
                    prop_assert!(
                        naive_join.agrees_with(&rels[i].join_with(&rels[j], strategy)),
                        "{strategy:?} join diverged on relations {i}×{j}"
                    );
                    prop_assert!(
                        naive_semi.agrees_with(&rels[i].semijoin_with(&rels[j], strategy)),
                        "{strategy:?} semijoin diverged on relations {i}⋉{j}"
                    );
                }
            }
        }
    }

    /// The level-synchronous parallel bottom-up join is tuple-for-tuple
    /// identical to the sequential join and the reference oracle, across
    /// schema families (fanout snowflake trees have multi-edge levels, so
    /// sibling subtree jobs genuinely fan out; chains degrade to the
    /// sequential per-level path), Zipf-skewed data, random projections,
    /// and both worker modes (leased pool and spawn-per-batch).
    #[test]
    fn parallel_bottom_up_join_matches_sequential_and_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..24,
        domain in 1i64..6,
        skew_tenths in 0usize..16,
        seed in 0u64..1_000,
        threads in 2usize..6,
        pick in 0usize..64,
    ) {
        let db = db_for_skewed(family, shape, tuples, domain, skew_tenths as f64 / 10.0, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let output: NodeSet = db
            .schema()
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << (i % 6)) != 0)
            .map(|(_, n)| n)
            .collect();
        let sequential =
            yannakakis_join_with(&db, &tree, &output, &ExecPolicy::sequential(JoinStrategy::Hash));
        for policy in [
            ExecPolicy::parallel(JoinStrategy::Hash, threads),
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Hash, threads)
            },
            ExecPolicy::parallel(JoinStrategy::Auto, threads),
        ] {
            let parallel = yannakakis_join_with(&db, &tree, &output, &policy);
            prop_assert!(
                sequential.same_contents(&parallel),
                "parallel join diverged from sequential under {:?}",
                policy
            );
        }
        let slow = naive_yannakakis_join(&db, &tree, &output);
        prop_assert!(slow.agrees_with(&sequential), "sequential diverged from oracle");
    }

    /// The parallel pipeline also holds when the database's relations were
    /// built independently (one value pool each): every semijoin and join
    /// in both phases pays the cross-pool handle translation, and the
    /// result still matches the oracle and the sequential engine.
    #[test]
    fn parallel_pipeline_matches_on_cross_pool_relations(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        seed in 0u64..1_000,
        threads in 2usize..5,
    ) {
        let db = db_for(family, shape, tuples, domain, seed);
        // Rebuild every relation into its own private pool.
        let split: Vec<Relation> = db
            .relations()
            .iter()
            .map(|r| {
                let mut own = Relation::new(r.name().to_owned(), r.attributes().clone());
                for t in r.tuples() {
                    own.insert(t);
                }
                own
            })
            .collect();
        for (a, b) in split.iter().zip(split.iter().skip(1)) {
            prop_assert!(!a.pool().same_pool(b.pool()));
        }
        let split_db = Database::new(db.schema().clone(), split).expect("same schema");
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let output = db.schema().nodes();
        let want = yannakakis_join_with(&db, &tree, &output, &ExecPolicy::sequential(JoinStrategy::Hash));
        for policy in [
            ExecPolicy::sequential(JoinStrategy::Hash),
            ExecPolicy::parallel(JoinStrategy::Hash, threads),
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Auto, threads)
            },
        ] {
            let got = yannakakis_join_with(&split_db, &tree, &output, &policy);
            prop_assert!(
                want.same_contents(&got),
                "cross-pool pipeline diverged under {:?}",
                policy
            );
        }
        let slow = naive_yannakakis_join(&split_db, &tree, &output);
        prop_assert!(slow.agrees_with(&want), "cross-pool oracle diverged");
    }

    /// Morsel-driven execution is tuple-for-tuple identical to the
    /// sequential engine and the reference oracle at every morsel size:
    /// one-row morsels (maximal scheduling interleaving), the default, and
    /// morsels larger than any input (degenerating to one chunk per scan).
    /// Covers both pipeline phases — reduce and the bottom-up join with its
    /// materialized output — across schema families and Zipf skew.
    #[test]
    fn morsel_sizes_match_sequential_and_reference(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..32,
        domain in 1i64..6,
        skew_tenths in 0usize..16,
        seed in 0u64..1_000,
        threads in 2usize..6,
        pick in 0usize..64,
    ) {
        let db = db_for_skewed(family, shape, tuples, domain, skew_tenths as f64 / 10.0, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let output: NodeSet = db
            .schema()
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << (i % 6)) != 0)
            .map(|(_, n)| n)
            .collect();
        let sequential = ExecPolicy::sequential(JoinStrategy::Hash);
        let reduced = full_reduce_with(&db, &tree, &sequential);
        let joined = yannakakis_join_with(&db, &tree, &output, &sequential);
        for morsel_rows in [1usize, 3, DEFAULT_MORSEL_ROWS, usize::MAX / 2] {
            let policy = ExecPolicy {
                morsel_rows,
                ..ExecPolicy::parallel(JoinStrategy::Hash, threads)
            };
            let r = full_reduce_with(&db, &tree, &policy);
            prop_assert_eq!(&reduced.removed, &r.removed,
                "removed counts diverged at morsel_rows={}", morsel_rows);
            for (s, p) in reduced.relations.iter().zip(&r.relations) {
                prop_assert!(s.same_contents(p),
                    "morsel reducer diverged at morsel_rows={morsel_rows}");
            }
            let j = yannakakis_join_with(&db, &tree, &output, &policy);
            prop_assert!(joined.same_contents(&j),
                "morsel join diverged at morsel_rows={morsel_rows}");
        }
        let (naive_rels, naive_removed) = naive_full_reduce(&db, &tree);
        prop_assert_eq!(&reduced.removed, &naive_removed, "reduce diverged from oracle");
        for (n, s) in naive_rels.iter().zip(&reduced.relations) {
            prop_assert!(n.agrees_with(s), "reduced contents diverged from oracle");
        }
        let slow = naive_yannakakis_join(&db, &tree, &output);
        prop_assert!(slow.agrees_with(&joined), "join diverged from oracle");
    }

    /// The full Yannakakis pipeline agrees with the reference under every
    /// policy combination (strategy × parallelism) on skewed data.
    #[test]
    fn yannakakis_policies_match_reference_on_skewed_data(
        family in 0usize..4,
        shape in 0usize..4,
        tuples in 1usize..16,
        domain in 1i64..5,
        skew_tenths in 0usize..14,
        seed in 0u64..1_000,
        pick in 0usize..64,
    ) {
        let db = db_for_skewed(family, shape, tuples, domain, skew_tenths as f64 / 10.0, seed);
        let tree = join_tree(db.schema()).expect("generator schemas are acyclic");
        let output: NodeSet = db
            .schema()
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| pick & (1 << (i % 6)) != 0)
            .map(|(_, n)| n)
            .collect();
        let slow = naive_yannakakis_join(&db, &tree, &output);
        for policy in [
            ExecPolicy::sequential(JoinStrategy::SortMerge),
            ExecPolicy::sequential(JoinStrategy::Auto),
            ExecPolicy::parallel(JoinStrategy::Auto, 3),
        ] {
            let fast = yannakakis_join_with(&db, &tree, &output, &policy);
            prop_assert!(slow.agrees_with(&fast), "yannakakis diverged under {:?}", policy);
        }
    }
}

/// Fixed regression: the rewrite must remove exactly the same number of
/// dangling tuples as the pre-rewrite reducer did (the reference preserves
/// its semantics) on the canonical chain instance of the yannakakis tests.
#[test]
fn full_reduce_removed_counts_regression() {
    let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
    let (a, b, c, d) = (
        h.node("A").unwrap(),
        h.node("B").unwrap(),
        h.node("C").unwrap(),
        h.node("D").unwrap(),
    );
    let mut db = Database::empty(h);
    use acyclic_hypergraphs::hypergraph::EdgeId;
    for i in 0..5i64 {
        db.insert(EdgeId(0), Tuple::from_pairs([(a, i), (b, i)]));
    }
    for i in 0..3i64 {
        db.insert(EdgeId(1), Tuple::from_pairs([(b, i), (c, i * 10)]));
    }
    db.insert(EdgeId(1), Tuple::from_pairs([(b, 99), (c, 990)]));
    for i in 0..2i64 {
        db.insert(EdgeId(2), Tuple::from_pairs([(c, i * 10), (d, i + 100)]));
    }
    let tree = join_tree(db.schema()).unwrap();
    let fast = full_reduce(&db, &tree);
    let (_, naive_removed) = naive_full_reduce(&db, &tree);
    assert_eq!(fast.removed, naive_removed);
    assert_eq!(fast.total_removed(), naive_removed.iter().sum::<usize>());
    assert!(
        fast.total_removed() > 0,
        "instance must contain dangling tuples"
    );
}
