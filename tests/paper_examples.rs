//! Integration tests reproducing every worked example of the paper exactly
//! (experiment ids E1–E7 in DESIGN.md), spanning the hypergraph, tableau,
//! acyclic and workload crates.

use acyclic_hypergraphs::acyclic::{
    canonical_connection, check_theorem_6_1, classify, find_independent_path, graham_reduce,
    graham_reduction, AcyclicityExt, Classification, ConnectingTree, GrahamStep, Strategy,
};
use acyclic_hypergraphs::tableau::{minimize, tableau_reduction, RowId, Tableau};
use acyclic_hypergraphs::workload::paper;
use std::collections::BTreeSet;

/// E1 — Example 2.2: `GR(H, {A, D})` removes F and B, then the edges
/// {A,E} and {A,C}, leaving {A,C,E} and {C,D,E}.
#[test]
fn example_2_2_graham_reduction() {
    let h = paper::fig1();
    let x = paper::fig1_sacred_ad(&h);
    let red = graham_reduce(&h, &x, Strategy::NodesFirst);

    assert_eq!(red.result.edge_count(), 2);
    for expected in paper::fig1_expected_reduction(&h) {
        assert!(red.result.contains_edge_set(&expected));
    }

    // The trace removes exactly the non-sacred degree-one nodes F and B and
    // exactly two edges; the sacred D survives although its degree is one.
    let removed: BTreeSet<&str> = red
        .steps
        .iter()
        .filter_map(|s| match s {
            GrahamStep::RemoveNode { node, .. } => Some(h.universe().name(*node)),
            _ => None,
        })
        .collect();
    assert_eq!(removed, BTreeSet::from(["B", "F"]));
    assert_eq!(red.edge_removals(), 2);
    assert!(red.result.nodes().contains(h.node("D").unwrap()));
}

/// E2 — Example 3.1 / Fig. 2: the tableau has one row per edge, special
/// symbols exactly where edges contain the column's node, and distinguished
/// symbols for the sacred nodes A and D.
#[test]
fn example_3_1_tableau_shape() {
    let h = paper::fig1();
    let x = paper::fig1_sacred_ad(&h);
    let t = Tableau::new(&h, &x);

    assert_eq!(t.row_count(), 4);
    assert_eq!(t.columns().len(), 6);

    let a = h.node("A").unwrap();
    let d = h.node("D").unwrap();
    // a is special in rows 1, 3, 4 (paper's numbering) = 0, 2, 3 here.
    assert_eq!(t.rows_with_special(a), vec![RowId(0), RowId(2), RowId(3)]);
    // d is special (and distinguished) only in row 2 (paper) = 1 here.
    assert_eq!(t.rows_with_special(d), vec![RowId(1)]);
    assert!(t.is_distinguished(RowId(1), d));
    assert!(t.is_distinguished(RowId(0), a));
    // Non-sacred special symbols are not distinguished.
    let c = h.node("C").unwrap();
    assert!(!t.is_distinguished(RowId(0), c));
    // The summary carries distinguished symbols only for A and D.
    let distinguished: usize = t.summary().iter().filter(|(_, s)| s.is_some()).count();
    assert_eq!(distinguished, 2);
}

/// E3 — Example 3.3 / Fig. 3: the minimal rows are the second and fourth;
/// the resulting partial edges are {C,D,E} and {A,C,E}.
#[test]
fn example_3_3_tableau_reduction() {
    let h = paper::fig1();
    let x = paper::fig1_sacred_ad(&h);

    let t = Tableau::new(&h, &x);
    let min = minimize(&t);
    assert_eq!(
        min.target,
        BTreeSet::from([RowId(1), RowId(3)]),
        "the minimal rows are the paper's second and fourth"
    );
    // The mapping sends rows 1, 3, 4 (paper) to 4 and fixes row 2.
    assert_eq!(min.mapping.image(RowId(0)), RowId(3));
    assert_eq!(min.mapping.image(RowId(2)), RowId(3));
    assert_eq!(min.mapping.image(RowId(1)), RowId(1));

    let tr = tableau_reduction(&h, &x);
    assert_eq!(tr.edge_count(), 2);
    for expected in paper::fig1_expected_reduction(&h) {
        assert!(tr.contains_edge_set(&expected));
    }
}

/// E4 — Theorem 3.5 on the paper's inputs: `GR = TR` on the acyclic Fig. 1
/// for a spread of sacred sets, and the explicit cyclic counterexample where
/// they differ.
#[test]
fn theorem_3_5_and_its_counterexample() {
    let h = paper::fig1();
    for names in [
        vec![],
        vec!["A"],
        vec!["A", "D"],
        vec!["B", "F"],
        vec!["A", "C"],
        vec!["C", "D", "E"],
        vec!["A", "B", "C", "D", "E", "F"],
    ] {
        let x = h.node_set(names.iter().copied()).unwrap();
        let gr = graham_reduction(&h, &x);
        let tr = tableau_reduction(&h, &x);
        assert!(
            gr.same_edge_sets(&tr),
            "GR != TR on acyclic Fig. 1 for X = {names:?}: {} vs {}",
            gr.display(),
            tr.display()
        );
    }

    let (cyc, d) = paper::counterexample_after_theorem_3_5();
    let gr = graham_reduction(&cyc, &d);
    let tr = tableau_reduction(&cyc, &d);
    assert_eq!(gr.edge_count(), 4, "Graham reduction keeps all four edges");
    assert_eq!(tr.nodes(), d, "tableau reduction keeps only node D");
    assert!(!gr.same_edge_sets(&tr));
}

/// E5 — Lemma 3.6 (TR is node-generated) and Corollary 3.7 (acyclicity is
/// preserved) on every paper fixture.
#[test]
fn lemma_3_6_and_corollary_3_7() {
    for (name, h) in paper::all_fixtures() {
        let node_ids: Vec<_> = h.nodes().iter().collect();
        // Try every singleton and every adjacent pair as the sacred set.
        let mut sacred_sets = vec![];
        for &n in &node_ids {
            sacred_sets.push(hypergraph::NodeSet::from_ids([n]));
        }
        for e in h.edges() {
            sacred_sets.push(e.nodes.clone());
        }
        for x in sacred_sets {
            let tr = tableau_reduction(&h, &x);
            assert!(
                h.is_node_generated_subhypergraph(&tr),
                "TR not node-generated for {name} with X = {}",
                x.display(h.universe())
            );
            if h.is_acyclic() {
                assert!(
                    tr.is_acyclic(),
                    "Corollary 3.7 violated for {name} with X = {}",
                    x.display(h.universe())
                );
            }
        }
    }
}

/// E6 — Example 5.1 / Fig. 6: in the ring (Fig. 1 without {A,C,E}) the
/// canonical connection of {A, C} is the single partial edge {A, C}, and the
/// tree {A} - {E} - {C} is independent; in Fig. 1 itself it is not.
#[test]
fn example_5_1_independent_tree() {
    let ring = paper::fig1_ring();
    let x = ring.node_set(["A", "C"]).unwrap();
    let cc = canonical_connection(&ring, &x);
    assert_eq!(cc.edge_count(), 1);
    assert_eq!(cc.nodes(), x);

    let tree = ConnectingTree::new(paper::fig6_tree_sets(&ring), vec![(0, 1), (1, 2)]);
    assert!(tree.verify(&ring).is_ok());
    assert!(tree.is_independent(&ring));
    let path = tree.extract_independent_path(&ring).expect("Lemma 5.2");
    assert!(path.is_independent(&ring));

    // In Fig. 1 the edge {A, C, E} contains three of the tree's node sets,
    // so the same tree is not even a connecting tree.
    let fig1 = paper::fig1();
    let tree_in_fig1 = ConnectingTree::new(paper::fig6_tree_sets(&fig1), vec![(0, 1), (1, 2)]);
    assert!(tree_in_fig1.verify(&fig1).is_err());
}

/// E7 — Theorem 6.1 / Corollary 6.2 on all fixtures: acyclic fixtures have
/// join trees and no independent paths; cyclic fixtures have verified
/// independent-path certificates.
#[test]
fn theorem_6_1_on_all_fixtures() {
    for (name, h) in paper::all_fixtures() {
        let report = check_theorem_6_1(&h);
        assert!(
            report.consistent(),
            "inconsistent report for {name}: {report:?}"
        );
        match classify(&h) {
            Classification::Acyclic { join_tree } => {
                assert!(h.is_acyclic(), "{name} misclassified");
                assert!(join_tree.unwrap().verify_running_intersection(&h));
                assert!(find_independent_path(&h).is_none());
            }
            Classification::Cyclic { independent_path } => {
                assert!(!h.is_acyclic(), "{name} misclassified");
                assert!(independent_path.is_connecting_path(&h));
                assert!(independent_path.is_independent(&h));
            }
        }
    }
}

/// The paper's definition of acyclicity (every node-generated set of edges
/// is a single edge or has an articulation set) agrees with the GYO test on
/// every fixture — the ground-truth cross-check.
#[test]
fn definition_matches_gyo_on_fixtures() {
    for (name, h) in paper::all_fixtures() {
        assert_eq!(
            h.is_acyclic(),
            h.is_acyclic_by_definition(),
            "definition disagrees with GYO on {name}"
        );
    }
}
