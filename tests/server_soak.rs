//! Differential concurrency soak for `hyperqd`: 8 client threads fire a
//! mixed workload — acyclic chains and stars, a cyclic ring routed through
//! hypertree decomposition, prepared queries, policy overrides, governed
//! timeouts — at one in-process server, and every successful answer must
//! be **byte-identical** to the frame the sequential single-threaded
//! oracle renders for the same query.  After the soak the served
//! databases' snapshots are bit-identical to their pre-soak snapshots
//! (queries never mutate), and a graceful shutdown drains cleanly.
//!
//! Byte-identity works because [`answer_frame`] is canonical (attributes
//! in universe order, rows sorted) and both sides render through it; any
//! cross-thread interference, lost lease, or engine divergence shows up as
//! a frame diff on some thread.  The server stamps every answer with a
//! per-query trace id the oracle can't predict; each soak client asserts
//! the id is present and well-formed, strips it, and byte-compares the
//! rest.

use acyclic_hypergraphs::hyperqd::protocol::{
    render_request, render_response, EngineKind, ErrorKind, Overrides, QuerySpec, Request,
    Response, StrategyKind,
};
use acyclic_hypergraphs::hyperqd::server::{answer_frame, Server};
use acyclic_hypergraphs::hyperqd::{parse_response, ServerHandle};
use acyclic_hypergraphs::reldb::{
    query_via_connection, query_via_full_join, query_yannakakis, Database,
};
use acyclic_hypergraphs::workload::{chain, consistent_database, ring, star, DataParams};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 30; // 240 total, over the 200 floor

fn data(tuples: usize, domain: i64) -> DataParams {
    DataParams {
        tuples_per_relation: tuples,
        domain,
        skew: 0.0,
        key_cap: 0,
    }
}

/// The served databases: two acyclic families and one cyclic (decomposed
/// pipeline), sized so queries are non-trivial but a 240-query soak stays
/// fast on one CPU.
fn databases() -> BTreeMap<String, Arc<Database>> {
    let mut dbs = BTreeMap::new();
    let chain_schema = chain(4, 3, 1);
    dbs.insert(
        "chain".to_owned(),
        Arc::new(consistent_database(&chain_schema, data(48, 8), 11)),
    );
    let star_schema = star(4, 3);
    dbs.insert(
        "star".to_owned(),
        Arc::new(consistent_database(&star_schema, data(32, 6), 12)),
    );
    let ring_schema = ring(5);
    dbs.insert(
        "ring".to_owned(),
        Arc::new(consistent_database(&ring_schema, data(40, 7), 13)),
    );
    dbs
}

/// One soak workload: the request to send and the exact frame expected
/// back (`None` for governed-timeout workloads, checked by kind instead).
#[derive(Clone)]
struct Workload {
    request: String,
    expect: Expected,
}

#[derive(Clone, PartialEq, Debug)]
enum Expected {
    /// The full response line, byte for byte.
    Frame(String),
    /// An error response of this kind (its message carries timing noise).
    ErrorKind(ErrorKind),
}

/// Renders the oracle frame for `spec` by running the same engine the
/// server dispatches to — sequentially, ungoverned, in this thread — and
/// serializing through the server's own canonical [`answer_frame`].
fn oracle_frame(dbs: &BTreeMap<String, Arc<Database>>, spec: &QuerySpec) -> String {
    let db = &dbs[&spec.db];
    let x = db
        .attributes(spec.select.iter().map(String::as_str))
        .expect("soak selects name real attributes");
    let answer = match spec.engine.unwrap_or_default() {
        EngineKind::Yannakakis => query_yannakakis(db, &x).expect("oracle query"),
        EngineKind::Connection => query_via_connection(db, &x),
        EngineKind::Naive => query_via_full_join(db, &x),
    };
    render_response(&answer_frame(db, &answer, None))
}

/// Deterministic workload mix: every (client, step) pair maps to a spec
/// through a fixed table, so the soak reproduces exactly.
fn build_workloads(dbs: &BTreeMap<String, Arc<Database>>) -> Vec<Workload> {
    // (db, select, engine) templates covering all three databases and all
    // three engines; selects span multiple relations to force real joins.
    let templates: &[(&str, &[&str], Option<EngineKind>)] = &[
        ("chain", &["N00000", "N00002"], None),
        ("chain", &["N00001", "N00004"], Some(EngineKind::Yannakakis)),
        ("chain", &["N00000", "N00006"], Some(EngineKind::Connection)),
        ("chain", &["N00002", "N00003"], Some(EngineKind::Naive)),
        ("star", &["K000", "K002"], Some(EngineKind::Yannakakis)),
        ("star", &["K001", "S001_1"], Some(EngineKind::Connection)),
        ("star", &["K003", "S003_2"], None),
        ("ring", &["N0000", "N0002"], Some(EngineKind::Yannakakis)),
        ("ring", &["N0001", "N0003"], Some(EngineKind::Yannakakis)),
        (
            "ring",
            &["N0000", "N0001", "N0002"],
            Some(EngineKind::Yannakakis),
        ),
    ];
    // Exec-policy variations layered on top; none of these may change the
    // canonical answer frame.
    let policies = [
        Overrides::default(),
        Overrides {
            strategy: Some(StrategyKind::Hash),
            ..Overrides::default()
        },
        Overrides {
            strategy: Some(StrategyKind::SortMerge),
            ..Overrides::default()
        },
        Overrides {
            strategy: Some(StrategyKind::Auto),
            threads: Some(2),
            ..Overrides::default()
        },
    ];
    let mut workloads = Vec::new();
    for (i, (db, select, engine)) in templates.iter().enumerate() {
        for (j, policy) in policies.iter().enumerate() {
            let spec = QuerySpec {
                db: (*db).to_owned(),
                select: select.iter().map(|s| (*s).to_owned()).collect(),
                engine: *engine,
                overrides: policy.clone(),
            };
            let expect = Expected::Frame(oracle_frame(dbs, &spec));
            // Every fourth variation rides the prepared-query path; the
            // expected frame is identical either way.
            let request = if (i + j) % 4 == 0 {
                render_request(&Request::Run {
                    name: format!("prep{i}"),
                    overrides: spec.overrides.clone(),
                })
            } else {
                render_request(&Request::Query(spec))
            };
            workloads.push(Workload { request, expect });
        }
    }
    // Governed-timeout workloads: a zero deadline trips the governor at
    // its first checkpoint, deterministically.
    for (db, select) in [("chain", "N00000"), ("ring", "N0000")] {
        workloads.push(Workload {
            request: render_request(&Request::Query(QuerySpec {
                db: db.to_owned(),
                select: vec![select.to_owned()],
                engine: Some(EngineKind::Yannakakis),
                overrides: Overrides {
                    timeout_ms: Some(0),
                    ..Overrides::default()
                },
            })),
            expect: Expected::ErrorKind(ErrorKind::Deadline),
        });
    }
    workloads
}

/// Registers the prepared queries the `Run` workloads reference: one per
/// template, engine and select stored server-side, overrides per request.
fn prepare_all(addr: SocketAddr, dbs: &BTreeMap<String, Arc<Database>>) {
    let templates: &[(&str, &[&str], Option<EngineKind>)] = &[
        ("chain", &["N00000", "N00002"], None),
        ("chain", &["N00001", "N00004"], Some(EngineKind::Yannakakis)),
        ("chain", &["N00000", "N00006"], Some(EngineKind::Connection)),
        ("chain", &["N00002", "N00003"], Some(EngineKind::Naive)),
        ("star", &["K000", "K002"], Some(EngineKind::Yannakakis)),
        ("star", &["K001", "S001_1"], Some(EngineKind::Connection)),
        ("star", &["K003", "S003_2"], None),
        ("ring", &["N0000", "N0002"], Some(EngineKind::Yannakakis)),
        ("ring", &["N0001", "N0003"], Some(EngineKind::Yannakakis)),
        (
            "ring",
            &["N0000", "N0001", "N0002"],
            Some(EngineKind::Yannakakis),
        ),
    ];
    let mut client = SoakClient::connect(addr);
    for (i, (db, select, engine)) in templates.iter().enumerate() {
        assert!(dbs.contains_key(*db));
        let response = client.round_trip(&render_request(&Request::Prepare {
            name: format!("prep{i}"),
            spec: QuerySpec {
                db: (*db).to_owned(),
                select: select.iter().map(|s| (*s).to_owned()).collect(),
                engine: *engine,
                overrides: Overrides::default(),
            },
        }));
        assert!(
            matches!(parse_response(&response), Ok(Response::Prepared { .. })),
            "prepare {i} got {response}"
        );
    }
}

struct SoakClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl SoakClient {
    fn connect(addr: SocketAddr) -> SoakClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        SoakClient {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// Sends one frame, returns the raw response line (no terminator).
    fn round_trip(&mut self, request_line: &str) -> String {
        self.writer
            .write_all(request_line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read in time");
        assert!(n > 0, "server closed mid-soak");
        line.truncate(line.trim_end().len());
        line
    }
}

/// Asserts the server stamped a well-formed trace id on an answer frame,
/// then re-renders the frame without it so the byte-identity comparison
/// against the (trace-free) oracle frame still holds.
fn strip_trace(got: &str) -> Option<String> {
    match parse_response(got) {
        Ok(Response::Answer {
            attrs,
            rows,
            metrics,
            trace: Some(trace),
        }) if trace.starts_with("q-") => Some(render_response(&Response::Answer {
            attrs,
            rows,
            metrics,
            trace: None,
        })),
        _ => None,
    }
}

fn shut_down_clean(handle: ServerHandle) -> acyclic_hypergraphs::hyperqd::ServeStats {
    let mut c = SoakClient::connect(handle.addr());
    let bye = c.round_trip(&render_request(&Request::Shutdown { now: false }));
    assert!(
        matches!(parse_response(&bye), Ok(Response::Bye)),
        "shutdown got {bye}"
    );
    let stats = handle.join();
    assert!(stats.drained_clean, "drain must finish clean: {stats:?}");
    stats
}

#[test]
fn concurrent_soak_is_byte_identical_to_the_sequential_oracle() {
    let dbs = databases();
    let pre_soak: BTreeMap<String, Vec<u8>> = dbs
        .iter()
        .map(|(name, db)| (name.clone(), db.to_snapshot_bytes()))
        .collect();
    let workloads = Arc::new(build_workloads(&dbs));

    let server = Server::bind_preloaded(
        "127.0.0.1:0",
        dbs.iter()
            .map(|(name, db)| (name.clone(), Arc::clone(db)))
            .collect(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    prepare_all(addr, &dbs);

    let threads: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let workloads = Arc::clone(&workloads);
            std::thread::spawn(move || {
                let mut client = SoakClient::connect(addr);
                let mut failures = Vec::new();
                for step in 0..QUERIES_PER_CLIENT {
                    // Stride by a prime co-prime to the table size so each
                    // client walks the whole mix in a different order.
                    let w = &workloads[(client_id * 7 + step * 13) % workloads.len()];
                    let got = client.round_trip(&w.request);
                    let ok = match &w.expect {
                        Expected::Frame(frame) => {
                            strip_trace(&got).as_deref() == Some(frame.as_str())
                        }
                        // Error frames carry the trace id too, so a failed
                        // query is still correlatable with the slow-query
                        // log and the server's stderr.
                        Expected::ErrorKind(kind) => matches!(
                            parse_response(&got),
                            Ok(Response::Error(e))
                                if e.kind == *kind
                                    && e.trace.as_deref().is_some_and(|t| t.starts_with("q-"))
                        ),
                    };
                    if !ok {
                        failures.push(format!(
                            "client {client_id} step {step}:\n  sent {}\n  want {:?}\n  got  {got}",
                            w.request, w.expect
                        ));
                    }
                }
                failures
            })
        })
        .collect();

    let mut failures = Vec::new();
    for t in threads {
        failures.extend(t.join().expect("soak client panicked"));
    }
    assert!(
        failures.is_empty(),
        "{} divergent responses:\n{}",
        failures.len(),
        failures.join("\n")
    );

    let stats = shut_down_clean(handle);
    let executed = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert!(
        stats.queries >= executed,
        "server saw {} queries, soak sent {executed}",
        stats.queries
    );

    // Queries never mutate: the served databases' snapshots are
    // bit-identical to the pre-soak snapshots.
    for (name, db) in &dbs {
        assert_eq!(
            db.to_snapshot_bytes(),
            pre_soak[name],
            "database {name} changed during the soak"
        );
    }
}

/// Metrics-carrying answers can't be byte-compared (timings), but their
/// relational payload must still match the oracle and the metrics document
/// must be present and well-formed — under concurrency.
#[test]
fn concurrent_metrics_answers_match_the_oracle_payload() {
    let dbs = databases();
    let server = Server::bind_preloaded(
        "127.0.0.1:0",
        dbs.iter()
            .map(|(name, db)| (name.clone(), Arc::clone(db)))
            .collect(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let spec = QuerySpec {
        db: "ring".to_owned(),
        select: vec!["N0000".to_owned(), "N0002".to_owned()],
        engine: Some(EngineKind::Yannakakis),
        overrides: Overrides {
            metrics: Some(true),
            ..Overrides::default()
        },
    };
    let want = {
        let mut plain = spec.clone();
        plain.overrides.metrics = None;
        oracle_frame(&dbs, &plain)
    };
    let want = match parse_response(&want).expect("oracle frame parses") {
        Response::Answer { attrs, rows, .. } => (attrs, rows),
        other => panic!("oracle produced {other:?}"),
    };

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                let mut client = SoakClient::connect(addr);
                for _ in 0..8 {
                    let got = client.round_trip(&render_request(&Request::Query(spec.clone())));
                    match parse_response(&got).expect("answer parses") {
                        Response::Answer {
                            attrs,
                            rows,
                            metrics,
                            trace,
                        } => {
                            assert_eq!((attrs, rows), want);
                            assert!(
                                trace.as_deref().is_some_and(|t| t.starts_with("q-")),
                                "metrics answer lacks a trace id: {trace:?}"
                            );
                            let m = metrics.expect("metrics requested but absent");
                            let leases = m
                                .get("pool")
                                .and_then(|p| p.get("leases"))
                                .and_then(|l| l.as_arr())
                                .unwrap_or_else(|| {
                                    panic!("metrics document lacks lease stats: {m}")
                                });
                            // The whole decomposed pipeline shares one
                            // worker lease — the lease-count regression
                            // guard, observed over the wire.
                            assert_eq!(leases.len(), 1, "leases: {m}");
                        }
                        other => panic!("metrics query got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("metrics client panicked");
    }
    shut_down_clean(handle);
}
