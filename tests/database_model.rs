//! Integration tests of the §7 database interpretation across the whole
//! stack: schema hypergraphs from the workload generators, data from the
//! data generators, query answering through canonical connections, the
//! Yannakakis pipeline, and the consistency dichotomy.

use acyclic_hypergraphs::acyclic::{join_tree, AcyclicityExt};
use acyclic_hypergraphs::reldb::{
    dangling_report, full_reduce, is_globally_consistent, is_pairwise_consistent,
    make_globally_consistent, plan_connection, query_via_connection, query_via_full_join,
    query_yannakakis, Query,
};
use acyclic_hypergraphs::workload::{
    chain, consistent_database, inconsistent_ring_database, random_database, snowflake, star,
    tpc_like, with_cycle, DataParams,
};

/// The TPC-style schema answers attribute-level queries identically through
/// all three execution paths on consistent data.
#[test]
fn tpc_schema_query_paths_agree() {
    let schema = tpc_like();
    assert!(schema.is_acyclic());
    let db = consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 30,
            domain: 20,
            skew: 0.0,
            key_cap: 0,
        },
        7,
    );
    assert!(is_globally_consistent(&db));
    for attrs in [
        vec!["c_name", "orderdate"],
        vec!["r_name", "c_name"],
        vec!["p_name", "quantity"],
        vec!["s_name", "n_name"],
    ] {
        let x = db.attributes(attrs.iter().copied()).unwrap();
        let via_cc = query_via_connection(&db, &x);
        let naive = query_via_full_join(&db, &x);
        let yann = query_yannakakis(&db, &x).unwrap();
        assert!(
            via_cc.same_contents(&naive),
            "CC path diverged on {attrs:?}"
        );
        assert!(
            yann.same_contents(&naive),
            "Yannakakis diverged on {attrs:?}"
        );
    }
}

/// The canonical connection picks strictly fewer objects than the whole
/// schema for localized queries — the planning payoff of §7.
#[test]
fn localized_queries_touch_few_objects() {
    let schema = tpc_like();
    let db = consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 10,
            domain: 8,
            skew: 0.0,
            key_cap: 0,
        },
        3,
    );
    // Region name with nation name: only REGION and NATION are needed.
    let x = db.attributes(["r_name", "n_name"]).unwrap();
    let plan = plan_connection(db.schema(), &x);
    assert!(plan.objects.len() <= 2, "plan used {:?}", plan.objects);

    // Part name with supplier name: goes through PARTSUPP.
    let x = db.attributes(["p_name", "s_name"]).unwrap();
    let plan = plan_connection(db.schema(), &x);
    assert!(plan.objects.len() < schema.edge_count());
}

/// The full reducer removes every dangling tuple on random (inconsistent)
/// data and never removes anything on already-consistent data.
#[test]
fn full_reducer_behaviour() {
    for (schema, seed) in [
        (chain(5, 3, 1), 11u64),
        (star(5, 3), 12),
        (snowflake(3, 2, 3), 13),
    ] {
        let tree = join_tree(&schema).expect("acyclic schema");
        let raw = random_database(
            &schema,
            DataParams {
                tuples_per_relation: 12,
                domain: 4,
                skew: 0.0,
                key_cap: 0,
            },
            seed,
        );
        let reduced = full_reduce(&raw, &tree);
        // After reduction the database is globally consistent.
        let reduced_db =
            acyclic_hypergraphs::reldb::Database::new(schema.clone(), reduced.relations.clone())
                .unwrap();
        assert!(is_globally_consistent(&reduced_db));
        assert!(dangling_report(&reduced_db).is_empty());

        let consistent = make_globally_consistent(&raw);
        let second = full_reduce(&consistent, &tree);
        assert_eq!(
            second.total_removed(),
            0,
            "reducer must be idempotent on consistent data"
        );
    }
}

/// Pairwise consistency implies global consistency on acyclic schemas with
/// reduced data, but not on cyclic ones — the semantic dichotomy.
#[test]
fn consistency_dichotomy() {
    // Cyclic: the ring instance is pairwise consistent yet its join is empty.
    for k in [3usize, 4, 6] {
        let db = inconsistent_ring_database(k);
        assert!(!db.schema().is_acyclic());
        assert!(is_pairwise_consistent(&db));
        assert!(!is_globally_consistent(&db));
    }

    // Acyclic: running the full reducer (a pairwise process along the join
    // tree) always reaches global consistency.
    let schema = chain(4, 2, 1);
    let tree = join_tree(&schema).unwrap();
    let raw = random_database(
        &schema,
        DataParams {
            tuples_per_relation: 25,
            domain: 3,
            skew: 0.0,
            key_cap: 0,
        },
        99,
    );
    let reduced = full_reduce(&raw, &tree);
    let db = acyclic_hypergraphs::reldb::Database::new(schema, reduced.relations).unwrap();
    assert!(is_pairwise_consistent(&db));
    assert!(is_globally_consistent(&db));
}

/// Making a schema cyclic (adding a shortcut edge) no longer stops the
/// Yannakakis path: it routes through the hypertree decomposition and
/// agrees tuple-for-tuple with the naive full join.
#[test]
fn cyclic_schema_degrades_gracefully() {
    let schema = with_cycle(&star(4, 3));
    assert!(!schema.is_acyclic());
    let db = random_database(
        &schema,
        DataParams {
            tuples_per_relation: 8,
            domain: 3,
            skew: 0.0,
            key_cap: 0,
        },
        1,
    );
    let x = db.attributes(["K000", "K001"]).expect("hub keys exist");
    let naive = query_via_full_join(&db, &x);
    let yann = query_yannakakis(&db, &x).expect("cyclic schemas execute via decomposition");
    assert!(
        yann.same_contents(&naive),
        "decomposed pipeline diverged from the naive join"
    );
    let via_cc = query_via_connection(&db, &x);
    // The connection answer is still well defined and contains the naive one.
    for t in naive.tuples() {
        assert!(via_cc.contains(&t));
    }
}

/// The declarative query layer agrees with the low-level paths end to end.
#[test]
fn declarative_queries_end_to_end() {
    let schema = snowflake(3, 2, 3);
    let db = consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 18,
            domain: 6,
            skew: 0.0,
            key_cap: 0,
        },
        21,
    );
    let u = db.schema().universe();
    let k0 = db.schema().node("K000_0").unwrap();
    let far = db.schema().node("K002_2").unwrap();
    let q = Query::new().select(k0).select(far);
    let via_cc = q.execute(&db);
    let naive = q.execute_naive(&db);
    let yann = q.execute_yannakakis(&db).unwrap();
    assert!(via_cc.same_contents(&naive));
    assert!(yann.same_contents(&naive));
    // A selection on a dimension key narrows the result.
    let filtered = Query::new()
        .select(k0)
        .select(far)
        .filter_eq(k0, 0)
        .execute(&db);
    for t in filtered.tuples() {
        assert_eq!(t.get(k0), Some(&acyclic_hypergraphs::reldb::Value::Int(0)));
    }
    let _ = u;
}
