//! Protocol property suite for the `hyperqd` wire format and server
//! framing: serialization round-trips exactly (`parse ∘ render` is the
//! identity on every frame), and malformed input — truncations, bad JSON,
//! oversized lines, interleaved garbage, invalid UTF-8 — always yields a
//! structured error response, never a panic and never a hung connection.
//!
//! The live-server half drives an in-process [`Server`] on an ephemeral
//! port; every read carries a timeout so a server that stops answering
//! fails the test instead of wedging the suite.

use acyclic_hypergraphs::hyperqd::json::Json;
use acyclic_hypergraphs::hyperqd::protocol::{
    parse_request, parse_response, render_request, render_response, DbInfo, EngineKind, ErrorKind,
    Overrides, QuerySpec, Request, Response, StrategyKind, WireError, MAX_LINE,
};
use acyclic_hypergraphs::hyperqd::server::Server;
use acyclic_hypergraphs::reldb::Database;
use acyclic_hypergraphs::workload::{chain, consistent_database, DataParams};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- builders

/// A random [`Overrides`] decoded from integer dice.
fn arb_overrides(bits: u64, a: u64, b: u64) -> Overrides {
    Overrides {
        strategy: match bits & 0b11 {
            0 => None,
            1 => Some(StrategyKind::Hash),
            2 => Some(StrategyKind::SortMerge),
            _ => Some(StrategyKind::Auto),
        },
        threads: (bits & 0b100 != 0).then_some(a % 9),
        timeout_ms: (bits & 0b1000 != 0).then_some(b % 10_000),
        mem_budget_mb: (bits & 0b1_0000 != 0).then_some(1 + a % 512),
        metrics: (bits & 0b10_0000 != 0).then_some(bits & 0b100_0000 != 0),
        fail_at_semijoin: (bits & 0b1000_0000 != 0).then_some(b % 17),
        fail_panic: (bits & 0b1_0000_0000 != 0).then_some(a & 1 == 0),
    }
}

/// A random [`QuerySpec`] over synthetic names (including characters that
/// need JSON escaping).
fn arb_spec(sel: u64, bits: u64, a: u64, b: u64) -> QuerySpec {
    let names = ["A", "B2", "weird \"name\"", "tab\tchar", "Ω", "N00001"];
    let k = 1 + (sel as usize % names.len());
    QuerySpec {
        db: format!("db{}", sel % 5),
        select: names[..k].iter().map(|s| (*s).to_owned()).collect(),
        engine: match sel % 4 {
            0 => None,
            1 => Some(EngineKind::Yannakakis),
            2 => Some(EngineKind::Connection),
            _ => Some(EngineKind::Naive),
        },
        overrides: arb_overrides(bits, a, b),
    }
}

fn arb_request(sel: u64, bits: u64, a: u64, b: u64) -> Request {
    match sel % 7 {
        0 => Request::Ping,
        1 => Request::List,
        2 => Request::Shutdown { now: a & 1 == 1 },
        3 => Request::Query(arb_spec(a, bits, a, b)),
        4 => Request::Prepare {
            name: format!("prep\n{}", a % 7),
            spec: arb_spec(b, bits, a, b),
        },
        5 => Request::Stats {
            prometheus: b & 1 == 1,
        },
        _ => Request::Run {
            name: format!("q{}", a % 7),
            overrides: arb_overrides(bits, a, b),
        },
    }
}

fn arb_response(sel: u64, bits: u64, a: u64, b: u64) -> Response {
    match sel % 7 {
        0 => Response::Pong,
        1 => Response::Bye,
        2 => Response::Prepared {
            name: format!("p{}", a % 9),
        },
        3 => Response::Listing {
            databases: (0..a % 4)
                .map(|i| DbInfo {
                    name: format!("db{i}"),
                    relations: b % 10,
                    tuples: b % 1000,
                    acyclic: (b >> i) & 1 == 1,
                })
                .collect(),
            queries: (0..b % 4).map(|i| format!("q{i}")).collect(),
        },
        4 => Response::Answer {
            attrs: (0..1 + a % 4).map(|i| format!("A{i}")).collect(),
            rows: (0..b % 5)
                .map(|r| {
                    (0..1 + a % 4)
                        .map(|c| {
                            if (bits >> (r + c)) & 1 == 1 {
                                Json::Int((a ^ (r << c)) as i64 - 500)
                            } else {
                                Json::Str(format!("v{r}\"{c}\\"))
                            }
                        })
                        .collect()
                })
                .collect(),
            metrics: (bits & 1 == 1).then(|| Json::Obj(vec![("x".into(), Json::Int(3))])),
            trace: (bits & 0b10 != 0).then(|| format!("q-{:06}", a % 1_000_000)),
        },
        5 => {
            // Exactly one of the JSON snapshot / Prometheus text sides is
            // populated — the invariant the parser enforces.
            if a & 1 == 1 {
                Response::Stats {
                    stats: Some(Json::Obj(vec![
                        ("uptime_ms".into(), Json::Int((b % 100_000) as i64)),
                        (
                            "latency_us".into(),
                            Json::Obj(vec![
                                ("count".into(), Json::Int((a % 50) as i64)),
                                (
                                    "buckets".into(),
                                    Json::Arr(vec![Json::Arr(vec![
                                        Json::Int((b % 400) as i64),
                                        Json::Int(1 + (a % 9) as i64),
                                    ])]),
                                ),
                            ]),
                        ),
                    ])),
                    text: None,
                }
            } else {
                Response::Stats {
                    stats: None,
                    text: Some(format!(
                        "# TYPE hyperqd_queries_total counter\nhyperqd_queries_total {}\n",
                        b % 1000
                    )),
                }
            }
        }
        _ => {
            let e = WireError::new(
                match a % 11 {
                    0 => ErrorKind::Proto,
                    1 => ErrorKind::UnknownDb,
                    2 => ErrorKind::UnknownQuery,
                    3 => ErrorKind::Schema,
                    4 => ErrorKind::Parse,
                    5 => ErrorKind::Io,
                    6 => ErrorKind::Deadline,
                    7 => ErrorKind::Cancelled,
                    8 => ErrorKind::Budget,
                    9 => ErrorKind::Panic,
                    _ => ErrorKind::Shutdown,
                },
                format!("detail {b} with \"quotes\" and \u{1F980}"),
            );
            Response::Error(if bits & 0b100 != 0 {
                e.with_trace(format!("q-{:06}", b % 1_000_000))
            } else {
                e
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse_request ∘ render_request` is the identity on every frame.
    #[test]
    fn request_frames_round_trip(
        sel in any::<u64>(),
        bits in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let request = arb_request(sel, bits, a, b);
        let line = render_request(&request);
        prop_assert!(!line.contains('\n'), "frames must be single lines: {line}");
        prop_assert_eq!(parse_request(&line).unwrap(), request, "frame: {}", line);
    }

    /// `parse_response ∘ render_response` is the identity on every frame.
    #[test]
    fn response_frames_round_trip(
        sel in any::<u64>(),
        bits in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let response = arb_response(sel, bits, a, b);
        let line = render_response(&response);
        prop_assert!(!line.contains('\n'), "frames must be single lines: {line}");
        prop_assert_eq!(parse_response(&line).unwrap(), response, "frame: {}", line);
    }

    /// Truncating a valid frame at any byte boundary never panics the
    /// parser: the result is a parse (of a prefix that happens to be
    /// valid JSON — impossible for object frames) or a structured error.
    #[test]
    fn truncated_frames_never_panic(
        sel in any::<u64>(),
        bits in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let line = render_request(&arb_request(sel, bits, a, b));
        let mut cut = cut as usize % line.len();
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut < line.len() {
            let e = parse_request(&line[..cut]).unwrap_err();
            prop_assert_eq!(e.kind, ErrorKind::Proto);
        }
    }

    /// Flipping an arbitrary byte of a valid frame never panics either
    /// parser; whatever comes back is a value or a structured error.
    #[test]
    fn mutated_frames_never_panic(
        sel in any::<u64>(),
        bits in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        pos in any::<u64>(),
        xor in 1u16..256,
    ) {
        let line = render_request(&arb_request(sel, bits, a, b));
        let mut bytes = line.into_bytes();
        let at = pos as usize % bytes.len();
        bytes[at] ^= xor as u8;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_request(&mutated);
        let _ = parse_response(&mutated);
    }

    /// Arbitrary garbage bytes never panic the parsers.
    #[test]
    fn garbage_never_panics(seed in any::<u64>(), len in 0usize..200) {
        let mut state = seed;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let garbage = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_request(&garbage);
        let _ = parse_response(&garbage);
    }
}

// ----------------------------------------------------------- live server

/// One test client with a bounded read: a server that stops answering
/// fails the test instead of hanging it.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .expect("read within timeout");
        assert!(n > 0, "server closed the connection instead of answering");
        parse_response(line.trim_end()).expect("well-formed response frame")
    }

    fn round_trip(&mut self, request: &Request) -> Response {
        self.send_raw(format!("{}\n", render_request(request)).as_bytes());
        self.read_response()
    }
}

fn tiny_server() -> (
    acyclic_hypergraphs::hyperqd::server::ServerHandle,
    Arc<Database>,
) {
    let schema = chain(3, 2, 1);
    let db = Arc::new(consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 12,
            domain: 5,
            skew: 0.0,
            key_cap: 0,
        },
        42,
    ));
    let server = Server::bind_preloaded("127.0.0.1:0", vec![("chain".into(), Arc::clone(&db))])
        .expect("bind");
    (server.spawn(), db)
}

fn shut_down(handle: acyclic_hypergraphs::hyperqd::server::ServerHandle) {
    let mut c = Client::connect(handle.addr());
    assert_eq!(
        c.round_trip(&Request::Shutdown { now: false }),
        Response::Bye
    );
    let stats = handle.join();
    assert!(stats.drained_clean, "drain must finish: {stats:?}");
}

#[test]
fn malformed_frames_get_structured_errors_and_the_connection_survives() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    for garbage in [
        "not json at all\n",
        "{\"op\":\"query\"}\n",
        "{\"op\": \"ping\"\n", // truncated JSON
        "[1,2,3]\n",
        "{\"op\":\"warp\"}\n",
        "\u{FFFD}\u{FFFD}\n",
    ] {
        c.send_raw(garbage.as_bytes());
        match c.read_response() {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::Proto, "input {garbage:?}"),
            other => panic!("garbage {garbage:?} got non-error {other:?}"),
        }
        // The connection is still good: a valid request right after works.
        assert_eq!(c.round_trip(&Request::Ping), Response::Pong);
    }
    shut_down(handle);
}

#[test]
fn invalid_utf8_bytes_get_a_structured_error() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    c.send_raw(b"\xFF\xFE{\"op\":\"ping\"}\n");
    match c.read_response() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Proto),
        other => panic!("invalid UTF-8 got {other:?}"),
    }
    assert_eq!(c.round_trip(&Request::Ping), Response::Pong);
    shut_down(handle);
}

#[test]
fn blank_lines_are_ignored_keepalives() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    c.send_raw(b"\n\r\n\n");
    assert_eq!(c.round_trip(&Request::Ping), Response::Pong);
    shut_down(handle);
}

#[test]
fn unterminated_final_line_is_still_answered() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    // No trailing newline; half-close the write side to signal EOF.
    c.send_raw(render_request(&Request::Ping).as_bytes());
    c.writer
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert_eq!(c.read_response(), Response::Pong);
    shut_down(handle);
}

#[test]
fn oversized_line_gets_an_error_then_the_connection_closes() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    // MAX_LINE+1 bytes of non-newline: unframeable.
    let big = vec![b'x'; MAX_LINE + 1];
    c.send_raw(&big);
    match c.read_response() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::Proto),
        other => panic!("oversized line got {other:?}"),
    }
    // The server must close this connection (it cannot resynchronize).
    let mut rest = Vec::new();
    let n = c.reader.read_to_end(&mut rest).expect("read to EOF");
    assert_eq!(n, 0, "connection must be closed after an unframeable line");
    shut_down(handle);
}

#[test]
fn interleaved_garbage_keeps_real_requests_flowing_in_order() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    // Batch: garbage, ping, garbage, list — written in one packet.  Every
    // frame is answered, in order.
    let batch = format!(
        "?!\n{}\n{{bad\n{}\n",
        render_request(&Request::Ping),
        render_request(&Request::List),
    );
    c.send_raw(batch.as_bytes());
    assert!(matches!(c.read_response(), Response::Error(e) if e.kind == ErrorKind::Proto));
    assert_eq!(c.read_response(), Response::Pong);
    assert!(matches!(c.read_response(), Response::Error(e) if e.kind == ErrorKind::Proto));
    match c.read_response() {
        Response::Listing { databases, .. } => {
            assert_eq!(databases.len(), 1);
            assert_eq!(databases[0].name, "chain");
            assert!(databases[0].acyclic);
        }
        other => panic!("expected listing, got {other:?}"),
    }
    shut_down(handle);
}

#[cfg(not(feature = "failpoints"))]
#[test]
fn fault_injection_requests_are_refused_without_the_feature() {
    let (handle, _db) = tiny_server();
    let mut c = Client::connect(handle.addr());
    let response = c.round_trip(&Request::Query(QuerySpec {
        db: "chain".into(),
        select: vec!["N00001".into()],
        engine: None,
        overrides: Overrides {
            fail_at_semijoin: Some(1),
            ..Overrides::default()
        },
    }));
    match response {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Proto);
            assert!(e.message.contains("failpoints"), "message: {}", e.message);
        }
        other => panic!("fault request without the feature got {other:?}"),
    }
    shut_down(handle);
}
