//! Over-the-wire fault injection for `hyperqd` (feature `failpoints`).
//!
//! A request can arm `reldb`'s deterministic failpoints through the
//! protocol's `fail_at_semijoin`/`fail_panic` overrides.  These tests
//! prove the blast radius is one query: the injected failure surfaces as
//! a typed error response *on that connection*, concurrent clients'
//! answers stay byte-identical to the oracle, the failing connection
//! itself remains usable, and the server survives to shut down cleanly —
//! including gracefully under load, draining or cancelling every
//! in-flight query.

#![cfg(feature = "failpoints")]

use acyclic_hypergraphs::hyperqd::protocol::{
    parse_response, render_request, render_response, EngineKind, ErrorKind, Overrides, QuerySpec,
    Request, Response,
};
use acyclic_hypergraphs::hyperqd::server::{answer_frame, Server, ServerHandle};
use acyclic_hypergraphs::reldb::{query_yannakakis, Database};
use acyclic_hypergraphs::workload::{chain, consistent_database, ring, DataParams};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn db(
    schema: &acyclic_hypergraphs::hypergraph::Hypergraph,
    tuples: usize,
    seed: u64,
) -> Arc<Database> {
    Arc::new(consistent_database(
        schema,
        DataParams {
            tuples_per_relation: tuples,
            domain: 7,
            skew: 0.0,
            key_cap: 0,
        },
        seed,
    ))
}

fn serve() -> (ServerHandle, Arc<Database>, Arc<Database>) {
    let chain_db = db(&chain(4, 3, 1), 48, 21);
    let ring_db = db(&ring(5), 40, 22);
    let server = Server::bind_preloaded(
        "127.0.0.1:0",
        vec![
            ("chain".into(), Arc::clone(&chain_db)),
            ("ring".into(), Arc::clone(&ring_db)),
        ],
    )
    .expect("bind");
    (server.spawn(), chain_db, ring_db)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn round_trip(&mut self, request: &Request) -> Response {
        let line = render_request(request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send");
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf).expect("read in time");
        assert!(n > 0, "server closed the connection unexpectedly");
        parse_response(buf.trim_end()).expect("well-formed response")
    }
}

fn ring_query(overrides: Overrides) -> Request {
    Request::Query(QuerySpec {
        db: "ring".into(),
        select: vec!["N0000".into(), "N0002".into()],
        engine: Some(EngineKind::Yannakakis),
        overrides,
    })
}

fn oracle_answer(db: &Database, select: &[&str]) -> Response {
    let x = db
        .attributes(select.iter().copied())
        .expect("attributes resolve");
    answer_frame(db, &query_yannakakis(db, &x).expect("oracle"), None)
}

/// Asserts the server stamped a well-formed trace id on an answer frame,
/// then re-renders it trace-free so oracle byte-comparisons hold.
fn stripped(got: Response) -> String {
    match got {
        Response::Answer {
            attrs,
            rows,
            metrics,
            trace,
        } => {
            assert!(
                trace.as_deref().is_some_and(|t| t.starts_with("q-")),
                "answer frame lacks a trace id: {trace:?}"
            );
            render_response(&Response::Answer {
                attrs,
                rows,
                metrics,
                trace: None,
            })
        }
        other => panic!("expected an answer frame, got {other:?}"),
    }
}

/// Asserts an error frame carries the per-query trace id — the handle
/// that correlates a client-visible failure with the server's slow-query
/// log and stderr.
fn assert_traced(e: &acyclic_hypergraphs::hyperqd::WireError) {
    assert!(
        e.trace.as_deref().is_some_and(|t| t.starts_with("q-")),
        "error frame lacks a trace id: {e}"
    );
}

fn shut_down_clean(handle: ServerHandle, now: bool) -> acyclic_hypergraphs::hyperqd::ServeStats {
    let mut c = Client::connect(handle.addr());
    assert_eq!(c.round_trip(&Request::Shutdown { now }), Response::Bye);
    let stats = handle.join();
    assert!(stats.drained_clean, "drain must finish clean: {stats:?}");
    stats
}

#[test]
fn injected_error_surfaces_as_a_typed_response_and_spares_everyone_else() {
    let (handle, _chain_db, ring_db) = serve();
    let addr = handle.addr();
    let want = render_response(&oracle_answer(&ring_db, &["N0000", "N0002"]));

    // Concurrent bystanders run clean queries the whole time.
    let bystanders: Vec<_> = (0..3)
        .map(|_| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for _ in 0..10 {
                    let got = c.round_trip(&ring_query(Overrides::default()));
                    assert_eq!(stripped(got), want, "bystander answer diverged");
                }
            })
        })
        .collect();

    // The faulty client arms a failpoint at the first semijoin.
    let mut faulty = Client::connect(addr);
    for _ in 0..10 {
        match faulty.round_trip(&ring_query(Overrides {
            fail_at_semijoin: Some(0),
            ..Overrides::default()
        })) {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Cancelled, "fired failpoint: {e}");
                assert_traced(&e);
            }
            other => panic!("armed failpoint produced {other:?}"),
        }
    }
    // The same connection still works for clean queries afterwards.
    let got = faulty.round_trip(&ring_query(Overrides::default()));
    assert_eq!(stripped(got), want);

    for t in bystanders {
        t.join().expect("bystander diverged or died");
    }
    shut_down_clean(handle, false);
}

#[test]
fn injected_panic_is_contained_to_the_query() {
    let (handle, _chain_db, ring_db) = serve();
    let mut c = Client::connect(handle.addr());
    match c.round_trip(&ring_query(Overrides {
        fail_at_semijoin: Some(0),
        fail_panic: Some(true),
        ..Overrides::default()
    })) {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Panic, "injected panic: {e}");
            assert_eq!(e.kind.code(), 5);
            assert_traced(&e);
        }
        other => panic!("injected panic produced {other:?}"),
    }
    // Same connection, same server: a clean query still answers.
    let want = render_response(&oracle_answer(&ring_db, &["N0000", "N0002"]));
    let got = c.round_trip(&ring_query(Overrides::default()));
    assert_eq!(stripped(got), want);
    shut_down_clean(handle, false);
}

/// Graceful shutdown under load: workers hammer the server while another
/// client asks it to stop.  Every worker response must be a well-formed
/// frame — a correct answer or a typed `shutdown` refusal — and the
/// server drains clean with no orphan queries.
#[test]
fn graceful_shutdown_under_load_drains_cleanly() {
    let (handle, chain_db, _ring_db) = serve();
    let addr = handle.addr();
    let want = render_response(&oracle_answer(&chain_db, &["N00000", "N00004"]));

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut answered = 0u32;
                for _ in 0..40 {
                    let request = Request::Query(QuerySpec {
                        db: "chain".into(),
                        select: vec!["N00000".into(), "N00004".into()],
                        engine: None,
                        overrides: Overrides::default(),
                    });
                    match c.round_trip(&request) {
                        Response::Error(e) => {
                            // Once shutdown begins this is the only
                            // acceptable error; stop sending.
                            assert_eq!(e.kind, ErrorKind::Shutdown, "under load: {e}");
                            assert_traced(&e);
                            break;
                        }
                        got @ Response::Answer { .. } => {
                            assert_eq!(stripped(got), want, "answer diverged");
                            answered += 1;
                        }
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
                answered
            })
        })
        .collect();

    // Let the load build, then pull the plug gracefully.
    std::thread::sleep(Duration::from_millis(50));
    let stats = shut_down_clean(handle, false);

    let mut total = 0u32;
    for w in workers {
        total += w.join().expect("worker saw a malformed shutdown");
    }
    assert!(
        total > 0,
        "soak produced no successful answers before shutdown"
    );
    assert!(stats.queries >= u64::from(total));
}

/// `shutdown now` cancels in-flight queries through the shared token:
/// responses after the cut are `cancelled` or `shutdown`, each one a
/// typed frame on its own connection, and the drain still finishes.
#[test]
fn shutdown_now_cancels_in_flight_queries_cleanly() {
    let (handle, chain_db, _ring_db) = serve();
    let addr = handle.addr();
    let want = render_response(&oracle_answer(&chain_db, &["N00000", "N00006"]));

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let want = want.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for _ in 0..40 {
                    let request = Request::Query(QuerySpec {
                        db: "chain".into(),
                        select: vec!["N00000".into(), "N00006".into()],
                        engine: None,
                        overrides: Overrides::default(),
                    });
                    match c.round_trip(&request) {
                        Response::Error(e) => {
                            assert!(
                                matches!(e.kind, ErrorKind::Shutdown | ErrorKind::Cancelled),
                                "shutdown-now leaked error {e}"
                            );
                            assert_traced(&e);
                            break;
                        }
                        got @ Response::Answer { .. } => {
                            assert_eq!(stripped(got), want, "answer diverged");
                        }
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    shut_down_clean(handle, true);
    for w in workers {
        w.join().expect("worker saw a malformed cancellation");
    }
}
