//! Reproduces every figure and worked example of the paper on stdout:
//! Fig. 1 (the acyclic hypergraph), Fig. 2 (its tableau), Fig. 3 (the
//! reduced tableau), Example 2.2 (Graham reduction), Example 3.3 (tableau
//! reduction), the cyclic counterexample after Theorem 3.5, and the
//! independent tree of Fig. 6 / Example 5.1.
//!
//! Run with `cargo run --example paper_figures`.

use acyclic_hypergraphs::acyclic::{
    canonical_connection, find_independent_path, graham_reduction, AcyclicityExt, ConnectingTree,
};
use acyclic_hypergraphs::tableau::{minimize, tableau_reduction, Tableau};
use acyclic_hypergraphs::workload::paper;

fn banner(title: &str) {
    println!("\n==================== {title} ====================");
}

fn main() {
    // ---- Fig. 1 ----
    let h = paper::fig1();
    banner("Fig. 1 — an acyclic hypergraph");
    println!("{}", h.to_ascii_table());
    println!("acyclic: {}", h.is_acyclic());

    // ---- Example 2.2: GR(H, {A, D}) ----
    banner("Example 2.2 — Graham reduction with X = {A, D}");
    let x = paper::fig1_sacred_ad(&h);
    let gr = graham_reduction(&h, &x);
    println!("GR(H, X) = {}", gr.display());
    for expected in paper::fig1_expected_reduction(&h) {
        assert!(gr.contains_edge_set(&expected));
    }
    println!("matches the paper's result {{A,C,E}}, {{C,D,E}}: yes");

    // ---- Fig. 2 / Example 3.1: the tableau ----
    banner("Fig. 2 — tableau for Fig. 1 with A, D sacred");
    let tableau = Tableau::new(&h, &x);
    println!("{tableau}");

    // ---- Fig. 3 / Example 3.3: the reduced tableau ----
    banner("Fig. 3 — minimal rows and TR(H, {A, D})");
    let min = minimize(&tableau);
    println!(
        "minimal rows: {:?} (the paper's second and fourth rows)",
        min.target
    );
    let tr = tableau_reduction(&h, &x);
    println!("TR(H, X) = {}", tr.display());
    assert!(tr.same_edge_sets(&gr), "Theorem 3.5: GR must equal TR");
    println!("Theorem 3.5 check (GR = TR): ok");

    // ---- The cyclic counterexample after Theorem 3.5 ----
    banner("Counterexample after Theorem 3.5 — GR != TR on a cyclic hypergraph");
    let (cyc, d) = paper::counterexample_after_theorem_3_5();
    println!("hypergraph: {}", cyc.display());
    println!("acyclic: {}", cyc.is_acyclic());
    let gr_c = graham_reduction(&cyc, &d);
    let tr_c = tableau_reduction(&cyc, &d);
    println!("GR(H, {{D}}) = {} (all four edges remain)", gr_c.display());
    println!("TR(H, {{D}}) = {} (only node D)", tr_c.display());
    assert!(!gr_c.same_edge_sets(&tr_c));

    // ---- Fig. 5 (style) ----
    banner("Fig. 5 (style) — two apparent paths, no independent path");
    let f5 = paper::fig5_like();
    println!("hypergraph: {}", f5.display());
    println!("acyclic: {}", f5.is_acyclic());
    println!(
        "independent path exists: {}",
        find_independent_path(&f5).is_some()
    );

    // ---- Fig. 6 / Example 5.1 ----
    banner("Fig. 6 / Example 5.1 — an independent tree in the 3-ring");
    let ring = paper::fig1_ring();
    println!("hypergraph (Fig. 1 without {{A,C,E}}): {}", ring.display());
    let xac = ring.node_set(["A", "C"]).expect("nodes");
    let cc = canonical_connection(&ring, &xac);
    println!("CC({{A, C}}) = {}", cc.display());
    let tree = ConnectingTree::new(paper::fig6_tree_sets(&ring), vec![(0, 1), (1, 2)]);
    println!(
        "tree {{A}} - {{E}} - {{C}} is a connecting tree: {}",
        tree.verify(&ring).is_ok()
    );
    println!("tree is independent: {}", tree.is_independent(&ring));
    let path = tree
        .extract_independent_path(&ring)
        .expect("Lemma 5.2: an independent tree yields an independent path");
    println!("extracted independent path: {}", path.display(&ring));
    println!(
        "Theorem 6.1: the ring is cyclic and indeed has an independent path: {}",
        find_independent_path(&ring)
            .map(|p| p.display(&ring))
            .unwrap_or_default()
    );
}
