//! Quickstart: build a hypergraph, test acyclicity, compute reductions and
//! canonical connections, and classify it under the paper's main theorem.
//!
//! Run with `cargo run --example quickstart`.

use acyclic_hypergraphs::acyclic::{
    canonical_connection, check_theorem_6_1, classify, graham_reduction, join_tree, AcyclicityExt,
    Classification,
};
use acyclic_hypergraphs::hypergraph::Hypergraph;
use acyclic_hypergraphs::tableau::{minimize, Tableau};

fn main() {
    // The hypergraph of the paper's Fig. 1: nodes are attributes, edges are
    // "objects" of a universal-relation schema.
    let h = Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["C", "D", "E"],
        vec!["A", "E", "F"],
        vec!["A", "C", "E"],
    ])
    .expect("valid edges");

    println!("Hypergraph: {}", h.display());
    println!("{}", h.to_ascii_table());
    println!("connected: {}", h.is_connected());
    println!("reduced:   {}", h.is_reduced());
    println!("acyclic:   {}", h.is_acyclic());

    // Graham reduction with sacred nodes {A, D} (Example 2.2).
    let x = h.node_set(["A", "D"]).expect("known nodes");
    let gr = graham_reduction(&h, &x);
    println!("\nGR(H, {{A, D}}) = {}", gr.display());

    // The tableau of Fig. 2 and its minimization (Example 3.3).
    let tableau = Tableau::new(&h, &x);
    println!("\nTableau (Fig. 2):\n{tableau}");
    let min = minimize(&tableau);
    println!("minimal rows: {:?}", min.target);

    // The canonical connection — what a universal-relation system would
    // join to answer a query about A and D.
    let cc = canonical_connection(&h, &x);
    println!("CC({{A, D}}) = {}", cc.display());

    // A join tree certifies acyclicity and drives Yannakakis joins.
    let tree = join_tree(&h).expect("acyclic hypergraphs have join trees");
    println!("\njoin tree edges (child -> parent):");
    for (c, p) in tree.tree_edges() {
        println!(
            "  {} -> {}",
            h.edges()[c.index()].label,
            h.edges()[p.index()].label
        );
    }

    // Theorem 6.1 in one call: acyclic hypergraphs get a join tree,
    // cyclic ones get an independent path as the certificate.
    match classify(&h) {
        Classification::Acyclic { .. } => println!("\nclassified: acyclic (no independent path)"),
        Classification::Cyclic { independent_path } => {
            println!(
                "\nclassified: cyclic, witness {}",
                independent_path.display(&h)
            )
        }
    }

    // Cross-check every characterization at once.
    let report = check_theorem_6_1(&h);
    println!("theorem 6.1 report: {report:?}");
    assert!(report.consistent());
}
