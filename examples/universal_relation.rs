//! The database payoff (paper §7): universal-relation query answering over
//! an order-management schema.
//!
//! The example builds a TPC-style schema, fills it with random data, and
//! answers attribute-set queries three ways — joining the canonical
//! connection's objects, running the Yannakakis algorithm over the join
//! tree, and naively joining everything — then shows the consistency story
//! on a cyclic schema where pairwise consistency is not enough.
//!
//! Run with `cargo run --example universal_relation`.

use acyclic_hypergraphs::acyclic::{join_tree, AcyclicityExt};
use acyclic_hypergraphs::reldb::{
    full_reduce, is_globally_consistent, is_pairwise_consistent, plan_connection,
    query_via_connection, query_via_full_join, query_yannakakis,
};
use acyclic_hypergraphs::workload::{
    consistent_database, inconsistent_ring_database, tpc_like, DataParams,
};

fn main() {
    // ---- An acyclic, TPC-style schema ----
    let schema = tpc_like();
    println!("schema: {}", schema.display());
    println!("acyclic: {}\n", schema.is_acyclic());

    // Key domains comparable to the relation sizes keep join fan-out
    // realistic (roughly foreign-key-like joins).
    let db = consistent_database(
        &schema,
        DataParams {
            tuples_per_relation: 40,
            domain: 24,
            skew: 0.0,
            key_cap: 0,
        },
        2024,
    );
    println!(
        "database: {} tuples across {} relations",
        db.tuple_count(),
        db.relations().len()
    );
    println!("globally consistent: {}\n", is_globally_consistent(&db));

    // A universal-relation query: "customer names together with order dates"
    // — the user only names attributes; the system picks the objects.
    for attrs in [
        vec!["c_name", "orderdate"],
        vec!["r_name", "c_name"],
        vec!["p_name", "quantity"],
    ] {
        let x = db
            .attributes(attrs.iter().copied())
            .expect("known attributes");
        let plan = plan_connection(db.schema(), &x);
        let objects: Vec<&str> = plan
            .objects
            .iter()
            .map(|&i| db.schema().edges()[i].label.as_str())
            .collect();
        let via_cc = query_via_connection(&db, &x);
        let yann = query_yannakakis(&db, &x).expect("acyclic schema");
        let naive = query_via_full_join(&db, &x);
        println!("query {attrs:?}");
        println!("  canonical connection joins: {objects:?}");
        println!(
            "  answers: connection = {} tuples, yannakakis = {} tuples, naive = {} tuples",
            via_cc.len(),
            yann.len(),
            naive.len()
        );
        assert!(yann.same_contents(&naive));
        assert!(via_cc.same_contents(&naive));
    }

    // ---- The full reducer at work ----
    let tree = join_tree(&schema).expect("acyclic");
    let reduced = full_reduce(&db, &tree);
    println!(
        "\nfull reducer removed {} dangling tuples (globally consistent input, so few or none)",
        reduced.total_removed()
    );

    // ---- Why acyclicity matters: the cyclic consistency trap ----
    let ring_db = inconsistent_ring_database(4);
    println!("\ncyclic 4-ring schema: {}", ring_db.schema().display());
    println!("  acyclic: {}", ring_db.schema().is_acyclic());
    println!(
        "  pairwise consistent: {}, globally consistent: {}",
        is_pairwise_consistent(&ring_db),
        is_globally_consistent(&ring_db)
    );
    println!(
        "  full join has {} tuples even though every relation has data — the\n  straightforward universal-relation interpretation breaks on cyclic schemas,\n  which is exactly the warning in the paper's conclusion.",
        ring_db.full_join().len()
    );
}
