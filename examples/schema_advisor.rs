//! A "schema advisor": given a schema hypergraph, report whether it is
//! acyclic, how it decomposes, and — if it is cyclic — show the independent
//! path explaining *which* attributes have an ambiguous connection, plus the
//! acyclicity-degree classification of some alternatives.
//!
//! This is the kind of tool a database designer would run before committing
//! to universal-relation semantics; it exercises Graham reduction, join
//! trees, canonical connections, independent paths and the acyclicity
//! hierarchy in one pass.
//!
//! Run with `cargo run --example schema_advisor`.

use acyclic_hypergraphs::acyclic::{
    canonical_connection, classify, degree, is_confluent, Classification,
};
use acyclic_hypergraphs::hypergraph::{Hypergraph, NodeSet};
use acyclic_hypergraphs::workload::{tpc_like, with_cycle};

fn advise(name: &str, h: &Hypergraph) {
    println!("\n########## {name} ##########");
    println!("{}", h.display());
    println!("degree of acyclicity: {:?}", degree(h));
    println!(
        "Graham reduction is order-independent (Lemma 2.1 spot check): {}",
        is_confluent(h, &NodeSet::new(), 8)
    );
    match classify(h) {
        Classification::Acyclic { join_tree } => {
            println!("verdict: ACYCLIC — universal-relation semantics is safe");
            if let Some(tree) = join_tree {
                println!("join tree (child -> parent):");
                for (c, p) in tree.tree_edges() {
                    println!(
                        "  {:<10} -> {}",
                        h.edges()[c.index()].label,
                        h.edges()[p.index()].label
                    );
                }
            }
        }
        Classification::Cyclic { independent_path } => {
            println!("verdict: CYCLIC — connections are not uniquely defined");
            println!(
                "witness (independent path): {}",
                independent_path.display(h)
            );
            let endpoints = independent_path.first().union(independent_path.last());
            println!(
                "the canonical connection of {} is {}, which the path escapes",
                endpoints.display(h.universe()),
                canonical_connection(h, &endpoints).display()
            );
        }
    }
}

fn main() {
    // A healthy schema.
    advise("TPC-style schema", &tpc_like());

    // The same schema with an extra shortcut relation that creates a cycle.
    advise("TPC-style schema + shortcut", &with_cycle(&tpc_like()));

    // The paper's own example of a dangerous-looking but fine schema.
    let fig1 = Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["C", "D", "E"],
        vec!["A", "E", "F"],
        vec!["A", "C", "E"],
    ])
    .expect("static");
    advise("Fig. 1 (ring covered by {A,C,E})", &fig1);

    // …and what happens when the covering edge is dropped.
    let ring = Hypergraph::from_edges([
        vec!["A", "B", "C"],
        vec!["C", "D", "E"],
        vec!["A", "E", "F"],
    ])
    .expect("static");
    advise("Fig. 1 without {A,C,E} (Example 5.1)", &ring);
}
