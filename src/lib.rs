//! Facade crate for the "Connections in Acyclic Hypergraphs" reproduction.
//!
//! Re-exports every workspace crate so examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`hypergraph`] — hypergraph substrate (node sets, edges, components,
//!   articulation sets, induced sub-hypergraphs, ordinary graphs).
//! * [`tableau`] — tableaux, row mappings, minimization, `TR(H, X)`, chase.
//! * [`acyclic`] — the paper's core: Graham (GYO) reduction with sacred
//!   nodes, acyclicity tests, join trees, canonical connections,
//!   independent paths and Theorem 6.1.
//! * [`decomp`] — hypertree decomposition: triangulation-based elimination
//!   orders, maximal-clique bags and running-intersection bag trees, the
//!   bridge that lets cyclic schemas run on the acyclic engine.
//! * [`reldb`] — relational database substrate: universal-relation queries
//!   over canonical connections and the Yannakakis algorithm, including the
//!   decompose→materialize→reduce→join path for cyclic schemas.
//! * [`workload`] — synthetic hypergraph/relation generators and the paper's
//!   figures as fixtures.
//! * [`hyperqd`] — the concurrent query server: line-oriented JSON protocol,
//!   prepared queries, per-request governance, graceful shutdown.

#![forbid(unsafe_code)]

pub use acyclic;
pub use decomp;
pub use hypergraph;
pub use hyperqd;
pub use reldb;
pub use tableau;
pub use workload;

/// Everything a quickstart needs, re-exported flat.
pub mod prelude {
    pub use acyclic::prelude::*;
    pub use decomp::prelude::*;
    pub use hypergraph::prelude::*;
    pub use reldb::prelude::*;
    pub use tableau::prelude::*;
}
