//! Connecting trees, connecting paths, and independent paths (paper §5).
//!
//! A *connecting tree* is a tree whose vertices are node sets of the
//! hypergraph, each tree edge's two node sets lying inside one hyperedge,
//! with the minimality condition that no hyperedge contains three of the
//! tree's node sets.  A connecting tree in the shape of a single path is a
//! *connecting path*.
//!
//! A connecting tree/path is *independent* when some tree node is not wholly
//! contained in the nodes of the canonical connection of the sets it links
//! (for a path: the first and last set).  Independent paths are the
//! certificates of cyclicity in the paper's main theorem (Theorem 6.1);
//! [`find_independent_path`] extracts such a certificate from any cyclic
//! hypergraph, following the constructive "if" direction of the proof.

use crate::acyclicity::AcyclicityExt;
use crate::connection::canonical_connection;
use hypergraph::{Hypergraph, NodeSet};
use std::fmt;

/// Why a candidate connecting path (or tree) is not valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionViolation {
    /// A connecting path needs at least two node sets.
    TooShort,
    /// The node set at this position is empty.
    EmptySet(usize),
    /// The union of the node sets at these positions is not covered by any
    /// hyperedge, so they cannot be adjacent in the tree/path.
    PairUncovered(usize, usize),
    /// One hyperedge contains three of the node sets, violating minimality.
    TripleInOneEdge(usize, usize, usize),
    /// The edge list does not form a tree over the node sets.
    NotATree,
}

impl fmt::Display for ConnectionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooShort => write!(f, "a connecting path needs at least two node sets"),
            Self::EmptySet(i) => write!(f, "node set #{i} is empty"),
            Self::PairUncovered(i, j) => {
                write!(f, "no hyperedge covers node sets #{i} and #{j} together")
            }
            Self::TripleInOneEdge(i, j, k) => write!(
                f,
                "one hyperedge contains node sets #{i}, #{j} and #{k}, violating minimality"
            ),
            Self::NotATree => write!(f, "the tree edges do not form a tree"),
        }
    }
}

impl std::error::Error for ConnectionViolation {}

/// A connecting path: a sequence of node sets, consecutive ones lying in a
/// common hyperedge, with no hyperedge containing three of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectingPath {
    sets: Vec<NodeSet>,
}

impl ConnectingPath {
    /// Wraps a sequence of node sets as a (not yet verified) path.
    pub fn new(sets: Vec<NodeSet>) -> Self {
        Self { sets }
    }

    /// The node sets along the path.
    pub fn sets(&self) -> &[NodeSet] {
        &self.sets
    }

    /// Number of node sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the path has no node sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The first node set (one endpoint).
    pub fn first(&self) -> &NodeSet {
        &self.sets[0]
    }

    /// The last node set (the other endpoint).
    pub fn last(&self) -> &NodeSet {
        self.sets.last().expect("nonempty path")
    }

    /// Checks that this is a connecting path of `h`.
    pub fn verify(&self, h: &Hypergraph) -> Result<(), ConnectionViolation> {
        if self.sets.len() < 2 {
            return Err(ConnectionViolation::TooShort);
        }
        for (i, s) in self.sets.iter().enumerate() {
            if s.is_empty() {
                return Err(ConnectionViolation::EmptySet(i));
            }
        }
        for i in 0..self.sets.len() - 1 {
            if !h.covers(&self.sets[i].union(&self.sets[i + 1])) {
                return Err(ConnectionViolation::PairUncovered(i, i + 1));
            }
        }
        for e in h.edges() {
            let mut inside = Vec::new();
            for (i, s) in self.sets.iter().enumerate() {
                if s.is_subset(&e.nodes) {
                    inside.push(i);
                    if inside.len() == 3 {
                        return Err(ConnectionViolation::TripleInOneEdge(
                            inside[0], inside[1], inside[2],
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// True if this is a valid connecting path of `h`.
    pub fn is_connecting_path(&self, h: &Hypergraph) -> bool {
        self.verify(h).is_ok()
    }

    /// If this connecting path is independent, the index of a witnessing
    /// node set that is not wholly contained in the nodes of
    /// `CC(first ∪ last)`.
    pub fn independence_witness(&self, h: &Hypergraph) -> Option<usize> {
        if self.verify(h).is_err() {
            return None;
        }
        let endpoints = self.first().union(self.last());
        let cc_nodes = canonical_connection(h, &endpoints).nodes();
        self.sets.iter().position(|s| !s.is_subset(&cc_nodes))
    }

    /// True if this is an independent path of `h`.
    pub fn is_independent(&self, h: &Hypergraph) -> bool {
        self.independence_witness(h).is_some()
    }

    /// Renders the path with node names, e.g. `{A} - {E} - {C}`.
    pub fn display(&self, h: &Hypergraph) -> String {
        self.sets
            .iter()
            .map(|s| format!("{}", s.display(h.universe())))
            .collect::<Vec<_>>()
            .join(" - ")
    }
}

/// A connecting tree: node sets plus a tree structure over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectingTree {
    sets: Vec<NodeSet>,
    edges: Vec<(usize, usize)>,
}

impl ConnectingTree {
    /// Wraps node sets and tree edges as a (not yet verified) tree.
    pub fn new(sets: Vec<NodeSet>, edges: Vec<(usize, usize)>) -> Self {
        Self { sets, edges }
    }

    /// The node sets (tree vertices).
    pub fn sets(&self) -> &[NodeSet] {
        &self.sets
    }

    /// The tree edges, as index pairs into [`ConnectingTree::sets`].
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Indices of the leaf sets (degree ≤ 1 in the tree).
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.sets.len())
            .filter(|&i| {
                self.edges
                    .iter()
                    .filter(|(a, b)| *a == i || *b == i)
                    .count()
                    <= 1
            })
            .collect()
    }

    /// Checks that this is a connecting tree of `h`.
    pub fn verify(&self, h: &Hypergraph) -> Result<(), ConnectionViolation> {
        let k = self.sets.len();
        if k < 2 {
            return Err(ConnectionViolation::TooShort);
        }
        for (i, s) in self.sets.iter().enumerate() {
            if s.is_empty() {
                return Err(ConnectionViolation::EmptySet(i));
            }
        }
        // Tree structure: k - 1 edges, connected, indices in range.
        if self.edges.len() != k - 1 || self.edges.iter().any(|&(a, b)| a >= k || b >= k || a == b)
        {
            return Err(ConnectionViolation::NotATree);
        }
        let mut reach = vec![false; k];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(i) = stack.pop() {
            for &(a, b) in &self.edges {
                let other = if a == i {
                    b
                } else if b == i {
                    a
                } else {
                    continue;
                };
                if !reach[other] {
                    reach[other] = true;
                    stack.push(other);
                }
            }
        }
        if reach.iter().any(|r| !r) {
            return Err(ConnectionViolation::NotATree);
        }
        // Every tree edge's pair of node sets lies in one hyperedge.
        for &(a, b) in &self.edges {
            if !h.covers(&self.sets[a].union(&self.sets[b])) {
                return Err(ConnectionViolation::PairUncovered(a, b));
            }
        }
        // Minimality: no hyperedge contains three tree nodes.
        for e in h.edges() {
            let inside: Vec<usize> = (0..k)
                .filter(|&i| self.sets[i].is_subset(&e.nodes))
                .collect();
            if inside.len() >= 3 {
                return Err(ConnectionViolation::TripleInOneEdge(
                    inside[0], inside[1], inside[2],
                ));
            }
        }
        Ok(())
    }

    /// True if this is an independent tree of `h`: a valid connecting tree
    /// with some tree node not wholly contained in the nodes of the
    /// canonical connection of the union of its *leaf* sets.
    pub fn is_independent(&self, h: &Hypergraph) -> bool {
        if self.verify(h).is_err() {
            return false;
        }
        let mut union = NodeSet::new();
        for i in self.leaves() {
            union.union_with(&self.sets[i]);
        }
        let cc_nodes = canonical_connection(h, &union).nodes();
        self.sets.iter().any(|s| !s.is_subset(&cc_nodes))
    }

    /// Extracts an independent *path* from an independent tree (Lemma 5.2):
    /// the path between two leaves that passes through a tree node escaping
    /// the canonical connection.
    pub fn extract_independent_path(&self, h: &Hypergraph) -> Option<ConnectingPath> {
        if !self.is_independent(h) {
            return None;
        }
        let leaves = self.leaves();
        for (ai, &a) in leaves.iter().enumerate() {
            for &b in &leaves[ai + 1..] {
                let path_idx = self.tree_path(a, b)?;
                let path =
                    ConnectingPath::new(path_idx.iter().map(|&i| self.sets[i].clone()).collect());
                if path.is_independent(h) {
                    return Some(path);
                }
            }
        }
        None
    }

    /// Vertex indices along the unique tree path from `a` to `b`.
    fn tree_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let k = self.sets.len();
        let mut prev = vec![usize::MAX; k];
        let mut stack = vec![a];
        let mut seen = vec![false; k];
        seen[a] = true;
        while let Some(i) = stack.pop() {
            for &(x, y) in &self.edges {
                let other = if x == i {
                    y
                } else if y == i {
                    x
                } else {
                    continue;
                };
                if !seen[other] {
                    seen[other] = true;
                    prev[other] = i;
                    stack.push(other);
                }
            }
        }
        if !seen[b] {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// A node-minimal cyclic node-generated sub-hypergraph of `h`, or `None` if
/// `h` is acyclic.
///
/// Minimality gives the structure the Theorem 6.1 construction needs: the
/// returned hypergraph is connected, has at least two edges, and has **no
/// articulation set** (otherwise a smaller node set would already be
/// cyclic, contradicting minimality).
pub fn find_cyclic_core(h: &Hypergraph) -> Option<Hypergraph> {
    if h.is_acyclic() {
        return None;
    }
    let mut nodes = h.nodes();
    let mut core = h.induced(&nodes);
    loop {
        let mut shrunk = false;
        for n in nodes.clone().iter() {
            let mut candidate_nodes = nodes.clone();
            candidate_nodes.remove(n);
            let candidate = h.induced(&candidate_nodes);
            if !candidate.is_acyclic() {
                nodes = candidate_nodes;
                core = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            break;
        }
    }
    Some(core)
}

/// Constructs a candidate independent path inside a hypergraph that is
/// cyclic, connected and has no articulation set, following the "if"
/// direction of Theorem 6.1.  The candidate is built between `F - X` and
/// `X = F ∩ G` for a maximal pairwise edge intersection `X`, then repaired
/// until no hyperedge contains three of its sets.
fn construct_in_core(core: &Hypergraph, f_idx: usize, g_idx: usize) -> Option<ConnectingPath> {
    let f = &core.edges()[f_idx].nodes;
    let g = &core.edges()[g_idx].nodes;
    let x = f.intersection(g);
    if x.is_empty() {
        return None;
    }

    // Edge path from F to G in the hypergraph with X removed: consecutive
    // edges must intersect outside X.  BFS over edge indices.
    let m = core.edge_count();
    let alive: Vec<bool> = core
        .edges()
        .iter()
        .map(|e| !e.nodes.difference(&x).is_empty())
        .collect();
    if !alive[f_idx] || !alive[g_idx] {
        return None;
    }
    let mut prev: Vec<Option<usize>> = vec![None; m];
    let mut seen = vec![false; m];
    seen[f_idx] = true;
    let mut queue = std::collections::VecDeque::from([f_idx]);
    while let Some(i) = queue.pop_front() {
        if i == g_idx {
            break;
        }
        for j in 0..m {
            if seen[j] || !alive[j] {
                continue;
            }
            let shared_outside_x = core.edges()[i]
                .nodes
                .intersection(&core.edges()[j].nodes)
                .difference(&x);
            if !shared_outside_x.is_empty() {
                seen[j] = true;
                prev[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    if !seen[g_idx] {
        return None;
    }
    let mut edge_path = vec![g_idx];
    let mut cur = g_idx;
    while let Some(p) = prev[cur] {
        edge_path.push(p);
        cur = p;
    }
    edge_path.reverse(); // f_idx … g_idx

    // Set sequence: F−X, (f0∩f1)−X, …, (f_{p-1}∩f_p)−X, G−X, and finally X.
    let mut sets: Vec<NodeSet> = Vec::new();
    sets.push(f.difference(&x));
    for w in edge_path.windows(2) {
        let inter = core.edges()[w[0]]
            .nodes
            .intersection(&core.edges()[w[1]].nodes)
            .difference(&x);
        sets.push(inter);
    }
    sets.push(g.difference(&x));
    sets.push(x.clone());
    if sets.iter().any(NodeSet::is_empty) {
        return None;
    }

    // Repair until no hyperedge of the core contains three of the sets.
    // Invariant: the last set is X, the one before it is G−X (never
    // removed), and the first set is contained in the current "F" edge.
    'repair: loop {
        let t = sets.len();
        for e in core.edges() {
            let inside: Vec<usize> = (0..t).filter(|&i| sets[i].is_subset(&e.nodes)).collect();
            if inside.len() < 3 {
                continue;
            }
            let has_x = inside.contains(&(t - 1));
            let ms: Vec<usize> = inside.iter().copied().filter(|&i| i != t - 1).collect();
            if ms.len() >= 2 && ms[ms.len() - 1] > ms[0] + 1 {
                // Two non-adjacent M sets inside one edge: splice out the
                // intermediate sets (the edge covers the shortcut).
                let (lo, hi) = (ms[0], ms[ms.len() - 1]);
                sets.drain(lo + 1..hi);
                continue 'repair;
            }
            if has_x && ms.len() >= 2 {
                // X together with two adjacent M_i, M_{i+1}: this edge plays
                // the role of F and the sequence restarts at M_{i+1}.
                let i = ms[0];
                sets.drain(0..=i);
                continue 'repair;
            }
            // Three adjacent M sets inside one edge: drop the middle one.
            if ms.len() >= 3 {
                sets.remove(ms[1]);
                continue 'repair;
            }
            // Any remaining triple pattern is impossible when X is a maximal
            // intersection; bail out rather than loop.
            return None;
        }
        break;
    }
    if sets.len() < 3 {
        return None;
    }
    Some(ConnectingPath::new(sets))
}

/// Finds an independent path in `h`, or `None` if `h` is acyclic.
///
/// The returned path is always verified: it is a valid connecting path of
/// `h` and [`ConnectingPath::is_independent`] holds for it.  Together with
/// the acyclic direction this realizes Theorem 6.1 constructively.
pub fn find_independent_path(h: &Hypergraph) -> Option<ConnectingPath> {
    if h.is_acyclic() {
        return None;
    }
    // Work inside a node-minimal cyclic core: connected, ≥ 2 edges, no
    // articulation set — exactly the situation of the proof's base case.
    let core = find_cyclic_core(h)?;

    // Try every pair of edges realizing a maximal pairwise intersection,
    // preferring candidates the proof's construction accepts; each candidate
    // path is verified against the *original* hypergraph before returning.
    let mut intersections: Vec<(usize, usize, NodeSet)> = Vec::new();
    for i in 0..core.edge_count() {
        for j in i + 1..core.edge_count() {
            let x = core.edges()[i].nodes.intersection(&core.edges()[j].nodes);
            if !x.is_empty() {
                intersections.push((i, j, x));
            }
        }
    }
    // Maximal intersections first (the proof's choice), then the rest as a
    // robustness fallback.
    let is_maximal = |x: &NodeSet| !intersections.iter().any(|(_, _, y)| x.is_proper_subset(y));
    let mut ordered: Vec<(usize, usize)> = intersections
        .iter()
        .filter(|(_, _, x)| is_maximal(x))
        .map(|&(i, j, _)| (i, j))
        .collect();
    ordered.extend(
        intersections
            .iter()
            .filter(|(_, _, x)| !is_maximal(x))
            .map(|&(i, j, _)| (i, j)),
    );
    for (i, j) in ordered {
        for (f_idx, g_idx) in [(i, j), (j, i)] {
            if let Some(path) = construct_in_core(&core, f_idx, g_idx) {
                if path.is_connecting_path(h) && path.is_independent(h) {
                    return Some(path);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hypergraph of Example 5.1: Fig. 1 without edge {A, C, E}.
    fn ring() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
        ])
        .unwrap()
    }

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn sets(h: &Hypergraph, groups: &[&[&str]]) -> Vec<NodeSet> {
        groups
            .iter()
            .map(|g| h.node_set(g.iter().copied()).unwrap())
            .collect()
    }

    #[test]
    fn example_5_1_tree_is_independent_in_the_ring() {
        let h = ring();
        let tree = ConnectingTree::new(sets(&h, &[&["A"], &["E"], &["C"]]), vec![(0, 1), (1, 2)]);
        assert!(tree.verify(&h).is_ok());
        assert!(tree.is_independent(&h));
        let path = tree.extract_independent_path(&h).unwrap();
        assert!(path.is_independent(&h));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn example_5_1_tree_is_not_independent_in_fig1() {
        // With edge {A, C, E} present, the same tree has three of its node
        // sets inside one hyperedge, so it is not even a connecting tree.
        let h = fig1();
        let tree = ConnectingTree::new(sets(&h, &[&["A"], &["E"], &["C"]]), vec![(0, 1), (1, 2)]);
        assert!(matches!(
            tree.verify(&h),
            Err(ConnectionViolation::TripleInOneEdge(..))
        ));
        assert!(!tree.is_independent(&h));
    }

    #[test]
    fn fig5_style_apparent_paths_are_not_independent() {
        // Fig. 5's point (the exact edge set is not recoverable from the
        // text, so a representative acyclic hypergraph is used): between A
        // and F there *appear* to be two distinct routes because either of
        // the two middle edges can be eliminated, yet no independent path
        // exists — the hypergraph is acyclic and Theorem 6.1 applies.
        let h = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["B", "C", "F"],
            vec!["B", "D", "F"],
            vec!["B", "C", "D", "F"],
        ])
        .unwrap();
        assert!(h.is_acyclic());
        assert!(find_independent_path(&h).is_none());
        // The apparent route through C is not even a connecting path: the
        // big edge contains three of its node sets.
        let through_c = ConnectingPath::new(sets(&h, &[&["A"], &["B"], &["C"], &["F"]]));
        assert!(matches!(
            through_c.verify(&h),
            Err(ConnectionViolation::TripleInOneEdge(..))
        ));
        // A subset of the canonical connection still connects A and F
        // (the paper's closing footnote): {A,B} and the big edge.
        let cc = canonical_connection(&h, &h.node_set(["A", "F"]).unwrap());
        assert!(cc
            .nodes()
            .is_superset(&h.node_set(["A", "B", "F"]).unwrap()));
    }

    #[test]
    fn path_verification_catches_structural_errors() {
        let h = ring();
        assert_eq!(
            ConnectingPath::new(sets(&h, &[&["A"]])).verify(&h),
            Err(ConnectionViolation::TooShort)
        );
        let with_empty = ConnectingPath::new(vec![h.node_set(["A"]).unwrap(), NodeSet::new()]);
        assert_eq!(with_empty.verify(&h), Err(ConnectionViolation::EmptySet(1)));
        let uncovered = ConnectingPath::new(sets(&h, &[&["A"], &["D"]]));
        assert_eq!(
            uncovered.verify(&h),
            Err(ConnectionViolation::PairUncovered(0, 1))
        );
        let triple = ConnectingPath::new(sets(&h, &[&["A"], &["B"], &["C"]]));
        assert!(matches!(
            triple.verify(&h),
            Err(ConnectionViolation::TripleInOneEdge(0, 1, 2))
        ));
    }

    #[test]
    fn tree_verification_catches_non_trees() {
        let h = ring();
        let not_a_tree = ConnectingTree::new(sets(&h, &[&["A"], &["E"], &["C"]]), vec![(0, 1)]);
        assert_eq!(not_a_tree.verify(&h), Err(ConnectionViolation::NotATree));
        let self_loop = ConnectingTree::new(sets(&h, &[&["A"], &["E"]]), vec![(0, 0)]);
        assert_eq!(self_loop.verify(&h), Err(ConnectionViolation::NotATree));
    }

    #[test]
    fn cyclic_core_of_the_ring_is_itself() {
        let h = ring();
        let core = find_cyclic_core(&h).unwrap();
        assert!(!core.is_acyclic());
        assert!(core.find_articulation_set().is_none());
        assert!(core.edge_count() >= 2);
        // Fig. 1 is acyclic, so it has no cyclic core.
        assert!(find_cyclic_core(&fig1()).is_none());
    }

    #[test]
    fn independent_path_found_for_cyclic_examples() {
        for h in [
            ring(),
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap(),
            Hypergraph::from_edges([
                vec!["A", "B"],
                vec!["B", "C"],
                vec!["C", "D"],
                vec!["D", "A"],
            ])
            .unwrap(),
            Hypergraph::from_edges([
                vec!["A", "B"],
                vec!["A", "C"],
                vec!["B", "C"],
                vec!["A", "D"],
            ])
            .unwrap(),
        ] {
            let path = find_independent_path(&h)
                .unwrap_or_else(|| panic!("no certificate for {}", h.display()));
            assert!(path.is_connecting_path(&h));
            assert!(
                path.is_independent(&h),
                "path {} not independent",
                path.display(&h)
            );
        }
    }

    #[test]
    fn no_independent_path_in_acyclic_examples() {
        for h in [
            fig1(),
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap(),
            Hypergraph::from_edges([vec!["A", "B", "C", "D"]]).unwrap(),
        ] {
            assert!(find_independent_path(&h).is_none());
        }
    }

    #[test]
    fn leaves_of_a_path_tree_are_its_endpoints() {
        let h = ring();
        let tree = ConnectingTree::new(sets(&h, &[&["A"], &["E"], &["C"]]), vec![(0, 1), (1, 2)]);
        assert_eq!(tree.leaves(), vec![0, 2]);
    }

    #[test]
    fn display_shows_node_names() {
        let h = ring();
        let path = ConnectingPath::new(sets(&h, &[&["A"], &["E"], &["C"]]));
        assert_eq!(path.display(&h), "{A} - {E} - {C}");
    }
}
