//! Core algorithms of "Connections in Acyclic Hypergraphs"
//! (Maier & Ullman).
//!
//! This crate implements the paper's contribution on top of the
//! [`hypergraph`] and [`tableau`] substrates:
//!
//! * **Graham reduction with sacred nodes** `GR(H, X)` (§2), with step
//!   traces, alternative rule orders, and an empirical Church–Rosser
//!   checker (Lemma 2.1);
//! * **acyclicity tests**: GYO reduction, the definition-based baseline,
//!   and a maximum-cardinality-search (chordality + conformality) test;
//! * **join trees** via ear decomposition, with running-intersection
//!   verification — the structure acyclic query processing consumes;
//! * **canonical connections** `CC_H(X) = TR(H, X)` (§5), computable by
//!   tableau reduction or — on acyclic hypergraphs, by Theorem 3.5 — by
//!   Graham reduction;
//! * **connecting / independent trees and paths** (§5) and the constructive
//!   **Theorem 6.1** machinery (§6): classify any hypergraph as acyclic
//!   (with a join tree certificate) or cyclic (with a verified independent
//!   path certificate);
//! * the **acyclicity-degree hierarchy** (Berge / β / α) as an extension.
//!
//! # Module map
//!
//! | Module | Paper concept |
//! |---|---|
//! | `graham` | Graham reduction with sacred nodes `GR(H, X)` and GYO reduction, with step traces (§2) |
//! | `confluence` | empirical Church–Rosser check for Graham reduction rule orders (Lemma 2.1) |
//! | `acyclicity` | acyclicity tests: GYO-reduces-to-empty, plus the definition-based baseline (§2) |
//! | `mcs` | maximum-cardinality-search test: chordality + conformality of the primal graph (the classical equivalent) |
//! | `jointree` | join trees by ear decomposition, running-intersection verification, depth levels — what the `reldb` Yannakakis engine consumes (§4) |
//! | `connection` | canonical connections `CC_H(X) = TR(H, X)`, computable by Graham reduction on acyclic inputs (§5, Theorem 3.5) |
//! | `independent` | connecting/independent trees and paths — the cyclicity certificates (§5) |
//! | `theorem` | the constructive Theorem 6.1 dichotomy: join tree xor verified independent path (§6) |
//! | `hierarchy` | Berge / β / α acyclicity degrees (extension beyond the paper) |
//!
//! # Example
//!
//! ```
//! use hypergraph::Hypergraph;
//! use acyclic::{AcyclicityExt, canonical_connection, classify, Classification};
//!
//! let h = Hypergraph::from_edges([
//!     vec!["A", "B", "C"],
//!     vec!["C", "D", "E"],
//!     vec!["A", "E", "F"],
//!     vec!["A", "C", "E"],
//! ]).unwrap();
//!
//! assert!(h.is_acyclic());
//! let x = h.node_set(["A", "D"]).unwrap();
//! assert_eq!(canonical_connection(&h, &x).edge_count(), 2);
//! assert!(matches!(classify(&h), Classification::Acyclic { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acyclicity;
mod confluence;
mod connection;
mod graham;
mod hierarchy;
mod independent;
mod jointree;
mod mcs;
mod theorem;

pub use acyclicity::{graham_reduction_fast, is_acyclic, AcyclicityExt};
pub use confluence::{check_confluence, is_confluent, ConfluenceReport};
pub use connection::{
    canonical_connection, canonical_connection_with, graham_equals_tableau, ConnectionMethod,
};
pub use graham::{
    graham_reduce, graham_reduction, gyo_reduction, GrahamReduction, GrahamStep, Strategy,
};
pub use hierarchy::{
    degree, is_alpha_acyclic, is_berge_acyclic, is_beta_acyclic, Degree, BETA_EDGE_LIMIT,
};
pub use independent::{
    find_cyclic_core, find_independent_path, ConnectingPath, ConnectingTree, ConnectionViolation,
};
pub use jointree::{join_tree, join_tree_with_separators, JoinTree};
pub use mcs::{
    is_acyclic_mcs, is_chordal, is_conformal_chordal, maximal_cliques_chordal,
    maximum_cardinality_search,
};
pub use theorem::{check_theorem_6_1, classify, Classification, TheoremReport};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::{
        canonical_connection, canonical_connection_with, check_theorem_6_1, classify,
        find_independent_path, graham_reduction, gyo_reduction, is_acyclic, is_acyclic_mcs,
        join_tree, AcyclicityExt, Classification, ConnectingPath, ConnectingTree, ConnectionMethod,
        JoinTree,
    };
}
