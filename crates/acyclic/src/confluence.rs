//! Empirical verification of Lemma 2.1 (Church–Rosser property of Graham
//! reduction).
//!
//! The lemma states that the node-removal / edge-removal rewriting system is
//! finite Church–Rosser: all maximal reduction sequences from the same
//! hypergraph and sacred set end in the same hypergraph.  This module runs
//! the reduction under many different rule orders (deterministic
//! nodes-first, deterministic edges-first, and a batch of seeded random
//! orders) and checks that every run reaches the same fixed point; it backs
//! the `graham_confluent` property test and the confluence benchmark (B3).

use crate::graham::{graham_reduce, Strategy};
use hypergraph::{Hypergraph, NodeSet};

/// Outcome of a confluence check.
#[derive(Debug, Clone)]
pub struct ConfluenceReport {
    /// The fixed point reached by the deterministic nodes-first strategy.
    pub reference: Hypergraph,
    /// Number of alternative orders tried (including edges-first).
    pub orders_tried: usize,
    /// Orders (by index into the tried sequence) that reached a different
    /// fixed point.  Empty iff the check passed.
    pub divergent: Vec<usize>,
    /// The lengths of the reduction traces, one per order, in the order
    /// tried.  All orders remove the same multiset of nodes and edges, so
    /// the lengths agree whenever the check passes.
    pub trace_lengths: Vec<usize>,
}

impl ConfluenceReport {
    /// True if every tried order reached the reference fixed point.
    pub fn is_confluent(&self) -> bool {
        self.divergent.is_empty()
    }
}

/// Reduces `h` under `1 + random_orders` different rule orders and reports
/// whether they all reach the same fixed point.
pub fn check_confluence(
    h: &Hypergraph,
    sacred: &NodeSet,
    random_orders: usize,
) -> ConfluenceReport {
    let reference = graham_reduce(h, sacred, Strategy::NodesFirst);
    let mut divergent = Vec::new();
    let mut trace_lengths = vec![reference.steps.len()];

    let mut strategies = vec![Strategy::EdgesFirst];
    strategies.extend((0..random_orders).map(|i| Strategy::Seeded(0x9E37_79B9 ^ (i as u64 + 1))));

    for (idx, strategy) in strategies.iter().enumerate() {
        let run = graham_reduce(h, sacred, *strategy);
        trace_lengths.push(run.steps.len());
        if !run.result.same_edge_sets(&reference.result) {
            divergent.push(idx);
        }
    }

    ConfluenceReport {
        reference: reference.result,
        orders_tried: strategies.len(),
        divergent,
        trace_lengths,
    }
}

/// Convenience wrapper: true if `random_orders + 2` reduction orders all
/// agree on `GR(h, sacred)`.
pub fn is_confluent(h: &Hypergraph, sacred: &NodeSet, random_orders: usize) -> bool {
    check_confluence(h, sacred, random_orders).is_confluent()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn fig1_reduction_is_confluent() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let report = check_confluence(&h, &x, 16);
        assert!(report.is_confluent());
        assert_eq!(report.orders_tried, 17);
        assert_eq!(report.reference.edge_count(), 2);
        // Every order applies the same multiset of rules, so every trace has
        // the same length.
        assert!(report
            .trace_lengths
            .iter()
            .all(|&l| l == report.trace_lengths[0]));
    }

    #[test]
    fn cyclic_hypergraphs_are_also_confluent() {
        // Confluence is a property of the rewriting system, not of
        // acyclicity: the stuck triangle is reached from every order.
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        assert!(is_confluent(&h, &NodeSet::new(), 8));
    }

    #[test]
    fn confluence_with_various_sacred_sets() {
        let h = fig1();
        for names in [
            vec![],
            vec!["A"],
            vec!["B", "F"],
            vec!["A", "B", "C", "D", "E", "F"],
        ] {
            let x = h.node_set(names.iter().copied()).unwrap();
            assert!(is_confluent(&h, &x, 8), "divergence for X = {names:?}");
        }
    }

    #[test]
    fn empty_hypergraph_is_trivially_confluent() {
        let h = Hypergraph::builder().build().unwrap();
        let report = check_confluence(&h, &NodeSet::new(), 4);
        assert!(report.is_confluent());
        assert!(report.reference.is_empty());
    }
}
