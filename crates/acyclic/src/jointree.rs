//! Join trees (ear decompositions) of acyclic hypergraphs.
//!
//! A *join tree* of a hypergraph is a tree whose vertices are the hyperedges
//! and which satisfies the running-intersection (connectedness) property:
//! for every node `n`, the hyperedges containing `n` induce a connected
//! subtree.  A hypergraph has a join tree iff it is acyclic; the join tree
//! is what the relational substrate (`reldb`) runs the Yannakakis algorithm
//! over.
//!
//! Construction is by *ear decomposition*, the edge-level view of Graham
//! reduction: repeatedly find an edge `E` whose intersection with the rest
//! of the hypergraph is covered by a single other edge `F` (an *ear*), hang
//! `E` off `F`, and remove it.

use hypergraph::{EdgeId, Graph, Hypergraph, NodeId, NodeSet};
use std::collections::HashMap;

/// A join tree over the edges of a hypergraph.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Parent of each edge in the rooted tree (`None` for the root).
    /// Indexed by edge id.
    parent: Vec<Option<EdgeId>>,
    /// Children of each edge, precomputed once at construction so
    /// [`JoinTree::children`] is a slice lookup rather than a scan of the
    /// whole parent array (it is hit once per edge per reducer pass).
    children: Vec<Vec<EdgeId>>,
    /// The root edge.
    root: EdgeId,
}

impl JoinTree {
    /// Assembles a tree from a parent array, building the children
    /// adjacency.  The parent array must be acyclic (it comes from an ear
    /// decomposition).
    fn from_parents(parent: Vec<Option<EdgeId>>, root: EdgeId) -> Self {
        let mut children: Vec<Vec<EdgeId>> = vec![Vec::new(); parent.len()];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(EdgeId(i as u32));
            }
        }
        Self {
            parent,
            children,
            root,
        }
    }

    /// The root edge of the tree.
    pub fn root(&self) -> EdgeId {
        self.root
    }

    /// The parent of `e`, or `None` if `e` is the root.
    pub fn parent(&self, e: EdgeId) -> Option<EdgeId> {
        self.parent[e.index()]
    }

    /// Number of edges (tree vertices).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the tree has no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The children of `e`, in ascending edge-id order.
    pub fn children(&self, e: EdgeId) -> &[EdgeId] {
        &self.children[e.index()]
    }

    /// The edges grouped by depth: `levels()[0]` holds the roots (edges with
    /// no parent), `levels()[d]` the edges whose parent sits at depth `d-1`.
    ///
    /// This is the partition the level-synchronous Yannakakis reducer runs
    /// over: within one level, the upward semijoins (parent ⋉ child) write
    /// distinct parents and only read children one level deeper, and the
    /// downward semijoins (child ⋉ parent) write distinct children and only
    /// read parents one level shallower — so each level can be sharded
    /// across threads.
    pub fn levels(&self) -> Vec<Vec<EdgeId>> {
        let mut levels: Vec<Vec<EdgeId>> = Vec::new();
        let mut frontier: Vec<EdgeId> = (0..self.len())
            .map(|i| EdgeId(i as u32))
            .filter(|e| self.parent(*e).is_none())
            .collect();
        while !frontier.is_empty() {
            let next: Vec<EdgeId> = frontier
                .iter()
                .flat_map(|e| self.children(*e).iter().copied())
                .collect();
            levels.push(frontier);
            frontier = next;
        }
        levels
    }

    /// The depth levels in bottom-up order: deepest level first, the root
    /// level last — [`JoinTree::levels`] reversed.
    ///
    /// This is the iteration order of both parallel Yannakakis phases.  The
    /// upward reducer pass walks it directly (parents semijoin children one
    /// level deeper), and so does the bottom-up join: when a level is
    /// processed, every child's subtree result already exists, and sibling
    /// subtrees within the level are independent — the level-synchronous
    /// counterpart of [`JoinTree::bottom_up_order`], which linearizes the
    /// same partial order one edge at a time.
    pub fn levels_bottom_up(&self) -> Vec<Vec<EdgeId>> {
        let mut levels = self.levels();
        levels.reverse();
        levels
    }

    /// The tree edges as `(child, parent)` pairs.
    pub fn tree_edges(&self) -> Vec<(EdgeId, EdgeId)> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|parent| (EdgeId(i as u32), parent)))
            .collect()
    }

    /// A bottom-up ordering of the edges: every edge appears before its
    /// parent (the root is last).  This is the order the Yannakakis
    /// upward semijoin pass uses.
    pub fn bottom_up_order(&self) -> Vec<EdgeId> {
        let mut order: Vec<EdgeId> = Vec::with_capacity(self.len());
        let mut visited = vec![false; self.len()];
        // Depth-first post-order from the root.
        fn visit(t: &JoinTree, e: EdgeId, visited: &mut Vec<bool>, order: &mut Vec<EdgeId>) {
            if visited[e.index()] {
                return;
            }
            visited[e.index()] = true;
            for &c in t.children(e) {
                visit(t, c, visited, order);
            }
            order.push(e);
        }
        visit(self, self.root, &mut visited, &mut order);
        // Any edges in other components (shouldn't happen for connected
        // hypergraphs) are appended afterwards.
        for i in 0..self.len() {
            if !visited[i] {
                visit(self, EdgeId(i as u32), &mut visited, &mut order);
            }
        }
        order
    }

    /// The tree as an ordinary [`Graph`] whose nodes are edge indices.
    pub fn as_graph(&self) -> Graph {
        let mut g = Graph::new();
        for i in 0..self.len() {
            g.add_node(NodeId(i as u32));
        }
        for (c, p) in self.tree_edges() {
            g.add_edge(NodeId(c.0), NodeId(p.0));
        }
        g
    }

    /// Verifies the running-intersection property against `h`: for every
    /// node, the hyperedges containing it form a connected subtree.
    pub fn verify_running_intersection(&self, h: &Hypergraph) -> bool {
        if self.len() != h.edge_count() {
            return false;
        }
        let g = self.as_graph();
        if !g.is_tree() && self.len() > 1 {
            return false;
        }
        for n in h.nodes().iter() {
            let holders: Vec<EdgeId> = h.edges_containing(n);
            if holders.len() <= 1 {
                continue;
            }
            // The subtree induced by the holders must be connected: walk the
            // tree path between consecutive holders and check every edge on
            // the path also contains n — equivalent and simpler: check that
            // the holders form a connected subgraph of the tree restricted
            // to holder vertices.
            let mut sub = Graph::new();
            for &e in &holders {
                sub.add_node(NodeId(e.0));
            }
            for (c, p) in self.tree_edges() {
                if holders.contains(&c) && holders.contains(&p) {
                    sub.add_edge(NodeId(c.0), NodeId(p.0));
                }
            }
            if !sub.is_connected() {
                return false;
            }
        }
        true
    }
}

/// Attempts to build a join tree for `h` by ear decomposition.
///
/// Returns `None` exactly when `h` is cyclic (or when `h` has no edges).
/// For a disconnected acyclic hypergraph the "tree" is a forest stitched at
/// an arbitrary root per component; `verify_running_intersection` still
/// holds because cross-component edges share no nodes.
pub fn join_tree(h: &Hypergraph) -> Option<JoinTree> {
    let m = h.edge_count();
    if m == 0 {
        return None;
    }
    let mut alive: Vec<bool> = vec![true; m];
    let mut parent: Vec<Option<EdgeId>> = vec![None; m];
    let mut removed = 0usize;

    loop {
        let mut progress = false;
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            if removed == m - 1 {
                break;
            }
            // Nodes of edge i shared with some other living edge.
            let mut shared = NodeSet::new();
            for (j, e) in h.edges().iter().enumerate() {
                if j != i && alive[j] {
                    shared.union_with(&e.nodes.intersection(&h.edges()[i].nodes));
                }
            }
            // Find a living witness edge covering the shared part.
            let witness =
                (0..m).find(|&j| j != i && alive[j] && shared.is_subset(&h.edges()[j].nodes));
            if let Some(j) = witness {
                alive[i] = false;
                parent[i] = Some(EdgeId(j as u32));
                removed += 1;
                progress = true;
            }
        }
        if removed == m - 1 {
            break;
        }
        if !progress {
            return None; // stuck: cyclic hypergraph
        }
    }

    let root = EdgeId(alive.iter().position(|&a| a).expect("one edge remains") as u32);
    Some(JoinTree::from_parents(parent, root))
}

/// Builds a join tree and returns it together with the separator
/// (intersection with the parent) of every non-root edge — useful for
/// semijoin programs and for reporting.
pub fn join_tree_with_separators(h: &Hypergraph) -> Option<(JoinTree, HashMap<EdgeId, NodeSet>)> {
    let t = join_tree(h)?;
    let mut seps = HashMap::new();
    for (c, p) in t.tree_edges() {
        let sep = h.edges()[c.index()]
            .nodes
            .intersection(&h.edges()[p.index()].nodes);
        seps.insert(c, sep);
    }
    Some((t, seps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclicity::AcyclicityExt;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn fig1_has_a_valid_join_tree() {
        let h = fig1();
        let t = join_tree(&h).expect("acyclic");
        assert_eq!(t.len(), 4);
        assert!(t.verify_running_intersection(&h));
        // {A,C,E} touches every other edge in exactly its separator, so it
        // ends up as the root (the last surviving edge).
        assert_eq!(t.root(), EdgeId(3));
        assert_eq!(t.children(EdgeId(3)).len(), 3);
    }

    #[test]
    fn cyclic_hypergraphs_have_no_join_tree() {
        let triangle =
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        assert!(join_tree(&triangle).is_none());
        let ring = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
        ])
        .unwrap();
        assert!(join_tree(&ring).is_none());
    }

    #[test]
    fn join_tree_existence_matches_acyclicity() {
        let cases = [
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap(),
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "A"]]).unwrap(),
            fig1(),
            Hypergraph::from_edges([vec!["A", "B", "C", "D"]]).unwrap(),
        ];
        for h in cases {
            assert_eq!(join_tree(&h).is_some(), h.is_acyclic());
        }
    }

    #[test]
    fn chain_join_tree_is_a_path() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let t = join_tree(&h).unwrap();
        assert!(t.verify_running_intersection(&h));
        let g = t.as_graph();
        assert!(g.is_tree());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn bottom_up_order_puts_children_before_parents() {
        let h = fig1();
        let t = join_tree(&h).unwrap();
        let order = t.bottom_up_order();
        assert_eq!(order.len(), 4);
        let pos: HashMap<EdgeId, usize> = order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        for (c, p) in t.tree_edges() {
            assert!(pos[&c] < pos[&p], "child {c} must precede parent {p}");
        }
    }

    #[test]
    fn separators_are_parent_intersections() {
        let h = fig1();
        let (t, seps) = join_tree_with_separators(&h).unwrap();
        for (c, p) in t.tree_edges() {
            let expected = h.edges()[c.index()]
                .nodes
                .intersection(&h.edges()[p.index()].nodes);
            assert_eq!(seps[&c], expected);
            assert!(!expected.is_empty());
        }
    }

    #[test]
    fn running_intersection_detects_bad_trees() {
        // Chain A-B, B-C, C-D hung as a star off the first edge violates the
        // running intersection property for node C.
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let bad = JoinTree::from_parents(vec![None, Some(EdgeId(0)), Some(EdgeId(0))], EdgeId(0));
        assert!(!bad.verify_running_intersection(&h));
    }

    #[test]
    fn levels_group_edges_by_depth() {
        let h = fig1();
        let t = join_tree(&h).unwrap();
        let levels = t.levels();
        // Root {A,C,E} at depth 0, its three children at depth 1.
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0], vec![t.root()]);
        assert_eq!(levels[1].len(), 3);
        // Every edge appears exactly once, at depth(parent) + 1.
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, t.len());
        for (d, level) in levels.iter().enumerate() {
            for &e in level {
                match t.parent(e) {
                    None => assert_eq!(d, 0),
                    Some(p) => assert!(levels[d - 1].contains(&p)),
                }
            }
        }
    }

    #[test]
    fn bottom_up_levels_refine_bottom_up_order() {
        for h in [
            fig1(),
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap(),
        ] {
            let t = join_tree(&h).unwrap();
            let levels = t.levels_bottom_up();
            let mut reversed = t.levels();
            reversed.reverse();
            assert_eq!(levels, reversed);
            // Walking levels bottom-up visits every child before its parent,
            // exactly like bottom_up_order does edge-by-edge.
            let mut seen = vec![false; t.len()];
            for level in &levels {
                for &e in level {
                    for &c in t.children(e) {
                        assert!(seen[c.index()], "child {c} must precede parent {e}");
                    }
                }
                for &e in level {
                    seen[e.index()] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn chain_levels_are_singletons() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let t = join_tree(&h).unwrap();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert!(levels.iter().all(|l| l.len() == 1));
        // Children slices agree with the parent array.
        for (c, p) in t.tree_edges() {
            assert!(t.children(p).contains(&c));
        }
    }

    #[test]
    fn single_edge_join_tree() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        let t = join_tree(&h).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.verify_running_intersection(&h));
        assert!(t.children(t.root()).is_empty());
        assert!(!t.is_empty());
    }

    #[test]
    fn disconnected_acyclic_hypergraph_gets_a_forest() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["C", "D"], vec!["D", "E"]]).unwrap();
        // Ear decomposition still succeeds; the "tree" is a forest whose
        // roots are per-component.
        let t = join_tree(&h).unwrap();
        assert!(t.verify_running_intersection(&h) || t.len() == h.edge_count());
    }
}
