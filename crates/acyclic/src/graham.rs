//! Graham (GYO) reduction with sacred nodes — `GR(H, X)` (paper §2).
//!
//! Two operations are applied until neither applies:
//!
//! 1. **Node removal** — a node appearing in exactly one edge and not in the
//!    sacred set `X` is deleted from that edge.
//! 2. **Edge removal** — an edge whose node set is a subset of another
//!    edge's node set is deleted.
//!
//! Lemma 2.1 shows the rules form a finite Church–Rosser system, so the
//! result is independent of the order of application; the `confluence`
//! module exercises this empirically with randomized orders.
//!
//! **Convention.**  An edge whose last node is removed is deleted as well
//! (it carries no information and is a subset of every other edge).  With
//! this convention `GR(H, ∅)` of an acyclic hypergraph is the *empty*
//! hypergraph, matching the tableau-reduction convention used by the
//! `tableau` crate and keeping Theorem 3.5 exact in code.

use hypergraph::{Edge, Hypergraph, NodeId, NodeSet};

/// One application of a Graham-reduction rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrahamStep {
    /// A non-sacred node occurring in a single edge was removed from it.
    RemoveNode {
        /// The removed node.
        node: NodeId,
        /// Label of the edge it was removed from.
        from_edge: String,
    },
    /// An edge that became a subset of another edge was removed.
    RemoveEdge {
        /// Label of the removed edge.
        edge: String,
        /// Label of the edge that subsumes it.
        subsumed_by: String,
    },
}

/// The outcome of a Graham reduction: the fixed point reached and the trace
/// of rule applications that led there.
#[derive(Debug, Clone)]
pub struct GrahamReduction {
    /// The reduced hypergraph `GR(H, X)`.
    pub result: Hypergraph,
    /// The rule applications, in the order they were performed.
    pub steps: Vec<GrahamStep>,
}

impl GrahamReduction {
    /// Number of node-removal steps in the trace.
    pub fn node_removals(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, GrahamStep::RemoveNode { .. }))
            .count()
    }

    /// Number of edge-removal steps in the trace.
    pub fn edge_removals(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, GrahamStep::RemoveEdge { .. }))
            .count()
    }
}

/// How the next applicable rule is chosen.  All strategies reach the same
/// fixed point (Lemma 2.1); they differ only in the recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaust node removals before edge removals, scanning in id order.
    /// This is the deterministic default.
    NodesFirst,
    /// Exhaust edge removals before node removals.
    EdgesFirst,
    /// Pick a pseudo-random applicable rule each step, seeded for
    /// reproducibility.  Used by the confluence checker.
    Seeded(u64),
}

/// Computes `GR(H, X)` with the default ([`Strategy::NodesFirst`]) rule
/// order, returning only the reduced hypergraph.
///
/// ```
/// use hypergraph::Hypergraph;
/// use acyclic::graham_reduction;
///
/// // Example 2.2: Fig. 1 with X = {A, D} reduces to {A,C,E} and {C,D,E}.
/// let h = Hypergraph::from_edges([
///     vec!["A", "B", "C"],
///     vec!["C", "D", "E"],
///     vec!["A", "E", "F"],
///     vec!["A", "C", "E"],
/// ]).unwrap();
/// let x = h.node_set(["A", "D"]).unwrap();
/// let gr = graham_reduction(&h, &x);
/// assert_eq!(gr.edge_count(), 2);
/// assert!(gr.contains_edge_set(&h.node_set(["A", "C", "E"]).unwrap()));
/// assert!(gr.contains_edge_set(&h.node_set(["C", "D", "E"]).unwrap()));
/// ```
pub fn graham_reduction(h: &Hypergraph, sacred: &NodeSet) -> Hypergraph {
    graham_reduce(h, sacred, Strategy::NodesFirst).result
}

/// Computes `GR(H, ∅)`: the unrestricted GYO reduction.
pub fn gyo_reduction(h: &Hypergraph) -> Hypergraph {
    graham_reduction(h, &NodeSet::new())
}

/// Minimal xorshift PRNG so the seeded strategy needs no external crates.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A rule application that is currently possible.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Candidate {
    Node { edge_idx: usize, node: NodeId },
    Edge { edge_idx: usize, by_idx: usize },
}

/// Computes `GR(H, X)` with an explicit rule-selection strategy, recording
/// the full trace.
pub fn graham_reduce(h: &Hypergraph, sacred: &NodeSet, strategy: Strategy) -> GrahamReduction {
    let mut edges: Vec<Edge> = h.edges().to_vec();
    let mut steps = Vec::new();
    let mut rng = match strategy {
        Strategy::Seeded(seed) => Some(XorShift::new(seed)),
        _ => None,
    };

    loop {
        let candidates = collect_candidates(&edges, sacred, strategy);
        if candidates.is_empty() {
            break;
        }
        let choice = match rng.as_mut() {
            Some(r) => candidates[r.pick(candidates.len())].clone(),
            None => candidates[0].clone(),
        };
        match choice {
            Candidate::Node { edge_idx, node } => {
                steps.push(GrahamStep::RemoveNode {
                    node,
                    from_edge: edges[edge_idx].label.clone(),
                });
                edges[edge_idx].nodes.remove(node);
                if edges[edge_idx].nodes.is_empty() {
                    edges.remove(edge_idx);
                }
            }
            Candidate::Edge { edge_idx, by_idx } => {
                steps.push(GrahamStep::RemoveEdge {
                    edge: edges[edge_idx].label.clone(),
                    subsumed_by: edges[by_idx].label.clone(),
                });
                edges.remove(edge_idx);
            }
        }
    }

    GrahamReduction {
        result: h.with_edges(edges),
        steps,
    }
}

/// Lists the rule applications currently possible, ordered according to the
/// strategy's deterministic preference (the seeded strategy receives the
/// full list and picks randomly).
fn collect_candidates(edges: &[Edge], sacred: &NodeSet, strategy: Strategy) -> Vec<Candidate> {
    let mut node_cands = Vec::new();
    let mut edge_cands = Vec::new();

    // Node removals: non-sacred nodes of degree 1.
    let mut degree: std::collections::HashMap<NodeId, (usize, usize)> =
        std::collections::HashMap::new();
    for (i, e) in edges.iter().enumerate() {
        for n in e.nodes.iter() {
            let entry = degree.entry(n).or_insert((0, i));
            entry.0 += 1;
            entry.1 = i;
        }
    }
    let mut deg1: Vec<(NodeId, usize)> = degree
        .iter()
        .filter(|(n, (count, _))| *count == 1 && !sacred.contains(**n))
        .map(|(&n, &(_, idx))| (n, idx))
        .collect();
    deg1.sort();
    for (node, edge_idx) in deg1 {
        node_cands.push(Candidate::Node { edge_idx, node });
    }

    // Edge removals: edges subsumed by another edge (duplicates count,
    // keeping the earliest as the survivor).
    for i in 0..edges.len() {
        for j in 0..edges.len() {
            if i == j {
                continue;
            }
            let (a, b) = (&edges[i].nodes, &edges[j].nodes);
            if a.is_proper_subset(b) || (a == b && i > j) {
                edge_cands.push(Candidate::Edge {
                    edge_idx: i,
                    by_idx: j,
                });
                break;
            }
        }
    }

    match strategy {
        Strategy::NodesFirst | Strategy::Seeded(_) => {
            node_cands.extend(edge_cands);
            node_cands
        }
        Strategy::EdgesFirst => {
            edge_cands.extend(node_cands);
            edge_cands
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn example_2_2_reduction() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let gr = graham_reduction(&h, &x);
        assert_eq!(gr.edge_count(), 2);
        assert!(gr.contains_edge_set(&h.node_set(["A", "C", "E"]).unwrap()));
        assert!(gr.contains_edge_set(&h.node_set(["C", "D", "E"]).unwrap()));
        assert!(gr.is_reduced());
    }

    #[test]
    fn example_2_2_trace_mentions_f_and_b() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let red = graham_reduce(&h, &x, Strategy::NodesFirst);
        let removed_nodes: Vec<NodeId> = red
            .steps
            .iter()
            .filter_map(|s| match s {
                GrahamStep::RemoveNode { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert!(removed_nodes.contains(&h.node("B").unwrap()));
        assert!(removed_nodes.contains(&h.node("F").unwrap()));
        // D is sacred and must never be removed even though it has degree 1.
        assert!(!removed_nodes.contains(&h.node("D").unwrap()));
        assert_eq!(red.node_removals(), 2);
        assert_eq!(red.edge_removals(), 2);
    }

    #[test]
    fn full_gyo_of_acyclic_hypergraph_is_empty() {
        let h = fig1();
        assert!(gyo_reduction(&h).is_empty());
    }

    #[test]
    fn gyo_of_triangle_is_stuck() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        let r = gyo_reduction(&h);
        assert_eq!(r.edge_count(), 3);
        assert!(r.same_edge_sets(&h));
    }

    #[test]
    fn strategies_reach_the_same_fixed_point() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let a = graham_reduce(&h, &x, Strategy::NodesFirst).result;
        let b = graham_reduce(&h, &x, Strategy::EdgesFirst).result;
        let c = graham_reduce(&h, &x, Strategy::Seeded(42)).result;
        let d = graham_reduce(&h, &x, Strategy::Seeded(7)).result;
        assert!(a.same_edge_sets(&b));
        assert!(a.same_edge_sets(&c));
        assert!(a.same_edge_sets(&d));
    }

    #[test]
    fn sacred_nodes_survive() {
        let h = fig1();
        let x = h.node_set(["B", "F"]).unwrap();
        let gr = graham_reduction(&h, &x);
        assert!(gr.nodes().is_superset(&x));
    }

    #[test]
    fn all_nodes_sacred_leaves_hypergraph_unchanged_if_reduced() {
        let h = fig1();
        let gr = graham_reduction(&h, &h.nodes());
        assert!(gr.same_edge_sets(&h));
    }

    #[test]
    fn single_edge_reduces_to_sacred_subset() {
        let h = Hypergraph::from_edges([vec!["A", "B", "C"]]).unwrap();
        let x = h.node_set(["B"]).unwrap();
        let gr = graham_reduction(&h, &x);
        assert_eq!(gr.edge_count(), 1);
        assert_eq!(gr.nodes(), x);
        // With nothing sacred the single edge evaporates entirely.
        assert!(gyo_reduction(&h).is_empty());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let h =
            Hypergraph::from_edges([vec!["A", "B"], vec!["A", "B"], vec!["A", "B", "C"]]).unwrap();
        let x = h.node_set(["A", "B", "C"]).unwrap();
        let gr = graham_reduction(&h, &x);
        assert_eq!(gr.edge_count(), 1);
    }

    #[test]
    fn reduction_of_empty_hypergraph_is_empty() {
        let h = Hypergraph::builder().build().unwrap();
        let red = graham_reduce(&h, &NodeSet::new(), Strategy::NodesFirst);
        assert!(red.result.is_empty());
        assert!(red.steps.is_empty());
    }

    #[test]
    fn cyclic_hypergraph_with_pendant_reduces_partially() {
        // Triangle plus a pendant edge {A, D}: GYO removes D and then the
        // pendant edge, but the triangle remains.
        let h = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["B", "C"],
            vec!["A", "C"],
            vec!["A", "D"],
        ])
        .unwrap();
        let r = gyo_reduction(&h);
        assert_eq!(r.edge_count(), 3);
        // With D sacred the pendant edge survives as {A, D}… reduced to the
        // part reachable: node A is in three edges so it stays.
        let r2 = graham_reduction(&h, &h.node_set(["D"]).unwrap());
        assert_eq!(r2.edge_count(), 4);
    }
}
