//! The acyclicity-degree hierarchy (extension beyond the paper).
//!
//! The paper (§1) notes that its notion of acyclicity — α-acyclicity — is
//! *less restrictive* than Berge's classical definition and the ones used in
//! earlier database work.  This module implements the stricter notions so
//! the relationship can be demonstrated and tested:
//!
//! * **Berge-acyclic** — the bipartite incidence graph contains no cycle;
//!   equivalently no two edges share two nodes and the intersection
//!   structure is a forest.
//! * **γ-acyclic** and **β-acyclic** — intermediate classes; β-acyclicity is
//!   implemented by its characterization "every subset of the edge set is
//!   α-acyclic" (exponential, so guarded by an edge-count cap), which is the
//!   form most useful for cross-checking the strictness chain
//!   Berge ⊂ γ ⊂ β ⊂ α on generated instances.
//!
//! The strictness chain `berge ⇒ beta ⇒ alpha` is asserted by property
//! tests in the workspace test-suite.

use crate::acyclicity::AcyclicityExt;
use hypergraph::{Graph, Hypergraph, NodeId};

/// Maximum number of edges for which [`is_beta_acyclic`] will enumerate
/// edge subsets.
pub const BETA_EDGE_LIMIT: usize = 20;

/// True if the hypergraph is Berge-acyclic: its bipartite incidence graph
/// (nodes on one side, edges on the other) has no cycle.
///
/// Multi-occurrence counts: two distinct edges sharing two or more nodes
/// already create a cycle of length four in the incidence graph.
pub fn is_berge_acyclic(h: &Hypergraph) -> bool {
    // Build the incidence graph: node ids keep their value, edges get ids
    // shifted past the node universe.
    let offset = h.universe().len() as u32;
    let mut g = Graph::new();
    for n in h.nodes().iter() {
        g.add_node(n);
    }
    for (i, e) in h.edges().iter().enumerate() {
        let enode = NodeId(offset + i as u32);
        g.add_node(enode);
        for n in e.nodes.iter() {
            g.add_edge(enode, n);
        }
    }
    g.is_forest()
}

/// True if the hypergraph is β-acyclic: every nonempty subset of its edges
/// forms an α-acyclic hypergraph.
///
/// # Panics
/// Panics if the hypergraph has more than [`BETA_EDGE_LIMIT`] edges, since
/// the check enumerates all `2^m` edge subsets.
pub fn is_beta_acyclic(h: &Hypergraph) -> bool {
    let m = h.edge_count();
    assert!(
        m <= BETA_EDGE_LIMIT,
        "is_beta_acyclic enumerates 2^m edge subsets; refusing m = {m} > {BETA_EDGE_LIMIT}"
    );
    for mask in 1u64..(1u64 << m) {
        let edges: Vec<_> = h
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, e)| e.clone())
            .collect();
        let sub = h.with_edges(edges);
        if !sub.is_acyclic() {
            return false;
        }
    }
    true
}

/// True if the hypergraph is α-acyclic — the paper's notion; re-exported
/// here so the whole hierarchy can be queried through one module.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    h.is_acyclic()
}

/// Where a hypergraph sits in the acyclicity hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degree {
    /// Berge-acyclic (hence β- and α-acyclic).
    Berge,
    /// β-acyclic but not Berge-acyclic.
    Beta,
    /// α-acyclic but not β-acyclic.
    Alpha,
    /// Cyclic (not even α-acyclic).
    Cyclic,
}

/// Classifies `h` in the acyclicity hierarchy (β requires at most
/// [`BETA_EDGE_LIMIT`] edges).
pub fn degree(h: &Hypergraph) -> Degree {
    if !h.is_acyclic() {
        Degree::Cyclic
    } else if h.edge_count() <= BETA_EDGE_LIMIT && is_beta_acyclic(h) {
        if is_berge_acyclic(h) {
            Degree::Berge
        } else {
            Degree::Beta
        }
    } else {
        Degree::Alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_berge_acyclic() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        assert!(is_berge_acyclic(&h));
        assert!(is_beta_acyclic(&h));
        assert!(is_alpha_acyclic(&h));
        assert_eq!(degree(&h), Degree::Berge);
    }

    #[test]
    fn two_edges_sharing_two_nodes_are_not_berge() {
        let h = Hypergraph::from_edges([vec!["A", "B", "C"], vec!["A", "B", "D"]]).unwrap();
        assert!(!is_berge_acyclic(&h));
        assert!(is_beta_acyclic(&h));
        assert_eq!(degree(&h), Degree::Beta);
    }

    #[test]
    fn fig1_is_alpha_but_not_beta() {
        // Removing the edge {A,C,E} from Fig. 1 leaves the cyclic 3-ring, so
        // Fig. 1 is α-acyclic but not β-acyclic.
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap();
        assert!(is_alpha_acyclic(&h));
        assert!(!is_beta_acyclic(&h));
        assert_eq!(degree(&h), Degree::Alpha);
    }

    #[test]
    fn triangle_is_cyclic_at_every_level() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        assert!(!is_berge_acyclic(&h));
        assert!(!is_beta_acyclic(&h));
        assert!(!is_alpha_acyclic(&h));
        assert_eq!(degree(&h), Degree::Cyclic);
    }

    #[test]
    fn hierarchy_is_monotone_on_examples() {
        let cases = [
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap(),
            Hypergraph::from_edges([vec!["A", "B", "C"], vec!["A", "B", "D"]]).unwrap(),
            Hypergraph::from_edges([vec!["A", "B", "C", "D"]]).unwrap(),
            Hypergraph::from_edges([
                vec!["A", "B", "C"],
                vec!["C", "D", "E"],
                vec!["A", "E", "F"],
                vec!["A", "C", "E"],
            ])
            .unwrap(),
        ];
        for h in cases {
            if is_berge_acyclic(&h) {
                assert!(
                    is_beta_acyclic(&h),
                    "Berge must imply beta: {}",
                    h.display()
                );
            }
            if is_beta_acyclic(&h) {
                assert!(
                    is_alpha_acyclic(&h),
                    "beta must imply alpha: {}",
                    h.display()
                );
            }
        }
    }
}
