//! Canonical connections (paper §5).
//!
//! The *canonical connection* of a node set `X` in a hypergraph `H` is
//! `CC_H(X) = TR(H, X)`: the natural set of partial edges linking the nodes
//! of `X`.  By Theorem 3.5 it can equivalently be computed by Graham
//! reduction when `H` is acyclic, which is how a database system would do it
//! in practice; both methods are exposed so the equivalence can be tested
//! and benchmarked (experiment B1).

use crate::graham::graham_reduction;
use hypergraph::{Hypergraph, NodeSet};
use tableau::tableau_reduction;

/// Which algorithm computes the canonical connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnectionMethod {
    /// Tableau reduction `TR(H, X)` — the definition; works for every
    /// hypergraph.
    #[default]
    Tableau,
    /// Graham reduction `GR(H, X)` — equal to `TR(H, X)` on acyclic
    /// hypergraphs (Theorem 3.5) and much cheaper; on cyclic hypergraphs it
    /// may strictly contain the canonical connection.
    Graham,
}

/// The canonical connection `CC_H(X)`, computed by tableau reduction.
///
/// ```
/// use hypergraph::Hypergraph;
/// use acyclic::canonical_connection;
///
/// // Example 5.1: in the ring ABC, CDE, AEF the canonical connection of
/// // {A, C} is the single partial edge {A, C}.
/// let h = Hypergraph::from_edges([
///     vec!["A", "B", "C"],
///     vec!["C", "D", "E"],
///     vec!["A", "E", "F"],
/// ]).unwrap();
/// let x = h.node_set(["A", "C"]).unwrap();
/// let cc = canonical_connection(&h, &x);
/// assert_eq!(cc.edge_count(), 1);
/// assert_eq!(cc.nodes(), x);
/// ```
pub fn canonical_connection(h: &Hypergraph, x: &NodeSet) -> Hypergraph {
    tableau_reduction(h, x)
}

/// The canonical connection computed by the requested method.
pub fn canonical_connection_with(
    h: &Hypergraph,
    x: &NodeSet,
    method: ConnectionMethod,
) -> Hypergraph {
    match method {
        ConnectionMethod::Tableau => tableau_reduction(h, x),
        ConnectionMethod::Graham => graham_reduction(h, x),
    }
}

/// True if `GR(H, X) = TR(H, X)` for this particular input — the statement
/// of Theorem 3.5 for acyclic `H`, and the property the ablation benchmark
/// double-checks on every generated instance.
pub fn graham_equals_tableau(h: &Hypergraph, x: &NodeSet) -> bool {
    graham_reduction(h, x).same_edge_sets(&tableau_reduction(h, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclicity::AcyclicityExt;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn ring() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
        ])
        .unwrap()
    }

    #[test]
    fn theorem_3_5_on_fig1() {
        let h = fig1();
        assert!(h.is_acyclic());
        for names in [
            vec!["A", "D"],
            vec!["A"],
            vec!["B", "F"],
            vec!["C", "E"],
            vec!["A", "B", "C", "D", "E", "F"],
            vec![],
        ] {
            let x = h.node_set(names.iter().copied()).unwrap();
            assert!(
                graham_equals_tableau(&h, &x),
                "GR != TR for X = {:?}",
                names
            );
        }
    }

    #[test]
    fn theorem_3_5_fails_on_the_cyclic_counterexample() {
        let h = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["A", "C"],
            vec!["B", "C"],
            vec!["A", "D"],
        ])
        .unwrap();
        let x = h.node_set(["D"]).unwrap();
        assert!(!h.is_acyclic());
        assert!(!graham_equals_tableau(&h, &x));
        // Graham reduction keeps all four edges; tableau reduction keeps
        // only node D.
        assert_eq!(
            canonical_connection_with(&h, &x, ConnectionMethod::Graham).edge_count(),
            4
        );
        assert_eq!(canonical_connection(&h, &x).nodes(), x);
    }

    #[test]
    fn example_5_1_connection_is_a_single_partial_edge() {
        let h = ring();
        let x = h.node_set(["A", "C"]).unwrap();
        let cc = canonical_connection(&h, &x);
        assert_eq!(cc.edge_count(), 1);
        assert_eq!(cc.nodes(), x);
    }

    #[test]
    fn connection_in_fig1_of_a_and_c_is_ace_wide() {
        // With the edge {A, C, E} present (Fig. 1), A and C are connected
        // directly inside an edge; the canonical connection is {A, C}.
        let h = fig1();
        let x = h.node_set(["A", "C"]).unwrap();
        let cc = canonical_connection(&h, &x);
        assert_eq!(cc.edge_count(), 1);
        assert!(cc.nodes().is_subset(&h.node_set(["A", "C", "E"]).unwrap()));
    }

    #[test]
    fn connection_of_a_and_d_spans_the_join_path() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let cc = canonical_connection(&h, &x);
        // Example 3.3: the objects {A,C,E} and {C,D,E}.
        assert_eq!(cc.edge_count(), 2);
        assert_eq!(cc.nodes(), h.node_set(["A", "C", "D", "E"]).unwrap());
    }

    #[test]
    fn connection_contains_its_query_nodes() {
        let h = fig1();
        for names in [
            vec!["A"],
            vec!["B", "D"],
            vec!["F", "D"],
            vec!["B", "C", "F"],
        ] {
            let x = h.node_set(names.iter().copied()).unwrap();
            let cc = canonical_connection(&h, &x);
            assert!(cc.nodes().is_superset(&x), "CC must cover the sacred set");
        }
    }

    #[test]
    fn default_method_is_tableau() {
        assert_eq!(ConnectionMethod::default(), ConnectionMethod::Tableau);
        let h = ring();
        let x = h.node_set(["A", "C"]).unwrap();
        assert!(canonical_connection_with(&h, &x, ConnectionMethod::Tableau)
            .same_edge_sets(&canonical_connection(&h, &x)));
    }
}
