//! Maximum-cardinality-search acyclicity test.
//!
//! An alternative to GYO reduction, in the spirit of Tarjan & Yannakakis:
//! a hypergraph is α-acyclic iff its primal (Gaifman) graph is *chordal* and
//! the hypergraph is *conformal* (every maximal clique of the primal graph
//! is covered by a hyperedge).  Chordality is tested with maximum
//! cardinality search and a perfect-elimination-ordering check; the maximal
//! cliques of a chordal graph are read off the same ordering.
//!
//! This module exists both as an independently-implemented cross-check of
//! the GYO test and as the comparison point for the acyclicity benchmark.

use hypergraph::{Graph, Hypergraph, NodeId, NodeSet};

/// A maximum-cardinality-search ordering of the graph's nodes: repeatedly
/// pick an unvisited node with the most visited neighbours.
///
/// The returned order lists nodes in *visit* order; reversing it gives a
/// perfect elimination ordering when the graph is chordal.
///
/// Runs in O(n + m): candidates live in a bucket queue indexed by weight
/// (with lazy invalidation of stale entries), and the weight/visited state
/// is kept in `Vec`s indexed by [`NodeId`] rather than hash maps.  Each
/// node enters a bucket once per weight increment, and total weight across
/// all nodes is bounded by the edge count.
pub fn maximum_cardinality_search(g: &Graph) -> Vec<NodeId> {
    let nodes = g.nodes();
    let n = id_capacity(nodes.iter());
    let mut weight = vec![0usize; n];
    let mut visited = vec![false; n];
    // buckets[w] holds candidates of weight w; entries go stale when a
    // node's weight moves on or it is visited, and are skipped on pop.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new()];
    // Seed in descending id order so ties pop lowest-id first (LIFO).
    let mut seed: Vec<NodeId> = nodes.iter().collect();
    seed.reverse();
    buckets[0] = seed;
    let mut maxw = 0usize;
    let mut order = Vec::with_capacity(g.node_count());
    for _ in 0..g.node_count() {
        let next = loop {
            match buckets[maxw].pop() {
                Some(c) if !visited[c.index()] && weight[c.index()] == maxw => break c,
                Some(_) => continue, // stale entry
                None => maxw -= 1,   // bucket drained; next weight down
            }
        };
        visited[next.index()] = true;
        order.push(next);
        if let Some(nbrs) = g.neighbors_ref(next) {
            for m in nbrs.iter() {
                if !visited[m.index()] {
                    let w = weight[m.index()] + 1;
                    weight[m.index()] = w;
                    if buckets.len() <= w {
                        buckets.resize_with(w + 1, Vec::new);
                    }
                    buckets[w].push(m);
                    maxw = maxw.max(w);
                }
            }
        }
    }
    order
}

/// One past the largest node index yielded, or 0 for an empty iterator —
/// the `Vec` capacity needed to index by [`NodeId`].
fn id_capacity<I: IntoIterator<Item = NodeId>>(ids: I) -> usize {
    ids.into_iter().map(|n| n.index() + 1).max().unwrap_or(0)
}

/// Positions of `order`'s nodes as a `Vec` indexed by node id
/// (`usize::MAX` for nodes not in the order).
fn position_vec(order: &[NodeId]) -> Vec<usize> {
    let n = id_capacity(order.iter().copied());
    let mut position = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    position
}

/// True if `order` (in visit order, i.e. reverse elimination order) is a
/// perfect elimination ordering witness: for every node, its earlier
/// neighbours form a clique's required pattern — the standard chordality
/// check that each vertex's earlier neighbourhood is simplicial via its
/// latest earlier neighbour.
fn is_perfect_elimination(g: &Graph, order: &[NodeId]) -> bool {
    let position = position_vec(order);
    for (i, &v) in order.iter().enumerate() {
        // Earlier neighbours of v (visited before v).
        let earlier: Vec<NodeId> = g
            .neighbors(v)
            .iter()
            .filter(|n| position[n.index()] < i)
            .collect();
        let Some(&parent) = earlier.iter().max_by_key(|n| position[n.index()]) else {
            continue;
        };
        // Every other earlier neighbour of v must also neighbour `parent`.
        for &u in &earlier {
            if u != parent && !g.has_edge(u, parent) {
                return false;
            }
        }
    }
    true
}

/// True if the graph is chordal (every cycle of length ≥ 4 has a chord).
pub fn is_chordal(g: &Graph) -> bool {
    let order = maximum_cardinality_search(g);
    is_perfect_elimination(g, &order)
}

/// The maximal cliques of a chordal graph, read off an MCS ordering.
///
/// Returns an empty vector if the graph is not chordal.
pub fn maximal_cliques_chordal(g: &Graph) -> Vec<NodeSet> {
    let order = maximum_cardinality_search(g);
    if !is_perfect_elimination(g, &order) {
        return Vec::new();
    }
    let position = position_vec(&order);
    // Candidate cliques: v together with its earlier neighbours.
    let mut cliques: Vec<NodeSet> = order
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut c: NodeSet = g
                .neighbors(v)
                .iter()
                .filter(|n| position[n.index()] < i)
                .collect();
            c.insert(v);
            c
        })
        .collect();
    // Keep only maximal ones.
    cliques.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut maximal: Vec<NodeSet> = Vec::new();
    for c in cliques {
        if !maximal.iter().any(|m| c.is_subset(m)) {
            maximal.push(c);
        }
    }
    maximal.sort();
    maximal
}

/// True if every maximal clique of the (chordal) primal graph is contained
/// in some hyperedge — the conformality half of the MCS acyclicity test.
pub fn is_conformal_chordal(h: &Hypergraph) -> bool {
    if h.is_empty() {
        return true;
    }
    let g = h.primal_graph();
    if !is_chordal(&g) {
        return false;
    }
    maximal_cliques_chordal(&g)
        .into_iter()
        .all(|c| h.covers(&c))
}

/// MCS-based α-acyclicity test: chordal primal graph + conformality.
pub fn is_acyclic_mcs(h: &Hypergraph) -> bool {
    if h.is_empty() {
        return true;
    }
    let g = h.primal_graph();
    is_chordal(&g)
        && maximal_cliques_chordal(&g)
            .into_iter()
            .all(|c| h.covers(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclicity::AcyclicityExt;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn mcs_orders_every_node_once() {
        let g = fig1().primal_graph();
        let order = maximum_cardinality_search(&g);
        assert_eq!(order.len(), 6);
        let set: NodeSet = order.iter().copied().collect();
        assert_eq!(set, g.nodes());
    }

    #[test]
    fn cycle_graph_is_not_chordal() {
        let mut g = Graph::new();
        for i in 0..5u32 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 5));
        }
        assert!(!is_chordal(&g));
        assert!(maximal_cliques_chordal(&g).is_empty());
    }

    #[test]
    fn tree_and_complete_graphs_are_chordal() {
        let mut tree = Graph::new();
        for i in 1..6u32 {
            tree.add_edge(NodeId(0), NodeId(i));
        }
        assert!(is_chordal(&tree));
        assert_eq!(maximal_cliques_chordal(&tree).len(), 5);

        let mut k4 = Graph::new();
        for i in 0..4u32 {
            for j in i + 1..4 {
                k4.add_edge(NodeId(i), NodeId(j));
            }
        }
        assert!(is_chordal(&k4));
        let cliques = maximal_cliques_chordal(&k4);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 4);
    }

    #[test]
    fn mcs_test_agrees_with_gyo_on_paper_examples() {
        let acyclic = fig1();
        assert!(is_acyclic_mcs(&acyclic));

        let ring = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
        ])
        .unwrap();
        assert!(!is_acyclic_mcs(&ring));
        assert_eq!(is_acyclic_mcs(&ring), ring.is_acyclic());

        let triangle_edges =
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        // Chordal primal graph (a triangle) but NOT conformal: the clique
        // {A,B,C} is not inside any hyperedge.  This is the case that
        // separates chordality from acyclicity.
        assert!(is_chordal(&triangle_edges.primal_graph()));
        assert!(!is_acyclic_mcs(&triangle_edges));

        let covered_triangle = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["B", "C"],
            vec!["A", "C"],
            vec!["A", "B", "C"],
        ])
        .unwrap();
        assert!(is_acyclic_mcs(&covered_triangle));
        assert!(covered_triangle.is_acyclic());
    }

    #[test]
    fn empty_and_single_edge_are_acyclic_under_mcs() {
        assert!(is_acyclic_mcs(&Hypergraph::builder().build().unwrap()));
        assert!(is_acyclic_mcs(
            &Hypergraph::from_edges([vec!["A", "B", "C"]]).unwrap()
        ));
    }

    #[test]
    fn conformality_helper_matches_full_test() {
        let h = fig1();
        assert_eq!(is_conformal_chordal(&h), is_acyclic_mcs(&h));
    }
}
