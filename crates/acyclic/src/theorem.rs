//! The main theorem (paper §6) as executable checks with certificates.
//!
//! **Theorem 6.1.** A hypergraph `H` is acyclic iff for no pair of node sets
//! of `H` there is an independent path.
//!
//! **Corollary 6.2.** A hypergraph is acyclic iff it has no independent
//! trees.
//!
//! [`classify`] decides which side of the dichotomy a hypergraph falls on
//! and returns a *certificate* either way: a join tree for the acyclic case
//! (the structure every acyclic algorithm downstream consumes), or a
//! verified independent path for the cyclic case.  [`check_theorem_6_1`]
//! cross-validates the two directions on a concrete hypergraph and is the
//! workhorse of the property-based test-suite.

use crate::acyclicity::AcyclicityExt;
use crate::independent::{find_independent_path, ConnectingPath};
use crate::jointree::{join_tree, JoinTree};
use hypergraph::Hypergraph;

/// The outcome of classifying a hypergraph under Theorem 6.1.
#[derive(Debug, Clone)]
pub enum Classification {
    /// The hypergraph is acyclic; the join tree witnesses it (and, by the
    /// theorem, no independent path exists).
    Acyclic {
        /// A join tree of the hypergraph (`None` only for the edgeless
        /// hypergraph, which is trivially acyclic).
        join_tree: Option<JoinTree>,
    },
    /// The hypergraph is cyclic; the independent path witnesses it.
    Cyclic {
        /// A verified independent path (Theorem 6.1's certificate).
        independent_path: ConnectingPath,
    },
}

impl Classification {
    /// True if the hypergraph was classified as acyclic.
    pub fn is_acyclic(&self) -> bool {
        matches!(self, Classification::Acyclic { .. })
    }
}

/// Classifies `h` as acyclic or cyclic, returning a certificate either way.
///
/// # Panics
/// Panics if the certificate extraction fails — which would contradict
/// Theorem 6.1 (or reveal an implementation bug); the property-based tests
/// rely on this to cross-validate the implementation.
pub fn classify(h: &Hypergraph) -> Classification {
    if h.is_acyclic() {
        Classification::Acyclic {
            join_tree: if h.is_empty() {
                None
            } else {
                Some(join_tree(h).expect("acyclic hypergraphs have join trees"))
            },
        }
    } else {
        let path = find_independent_path(h)
            .expect("Theorem 6.1: every cyclic hypergraph has an independent path");
        Classification::Cyclic {
            independent_path: path,
        }
    }
}

/// A detailed cross-check of Theorem 6.1 on one hypergraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremReport {
    /// GYO verdict.
    pub acyclic_gyo: bool,
    /// MCS (chordality + conformality) verdict.
    pub acyclic_mcs: bool,
    /// Whether an independent path was found.
    pub has_independent_path: bool,
    /// Whether a join tree was found.
    pub has_join_tree: bool,
}

impl TheoremReport {
    /// True if every column of the report is consistent with Theorem 6.1 and
    /// the join-tree characterization: the three acyclicity views agree, and
    /// an independent path exists exactly in the cyclic case.
    pub fn consistent(&self) -> bool {
        self.acyclic_gyo == self.acyclic_mcs
            && self.acyclic_gyo == self.has_join_tree
            && self.acyclic_gyo != self.has_independent_path
    }
}

/// Runs every characterization on `h` and reports whether they agree.
///
/// The edgeless hypergraph is special-cased as having a (trivial) join tree.
pub fn check_theorem_6_1(h: &Hypergraph) -> TheoremReport {
    let acyclic_gyo = h.is_acyclic();
    let acyclic_mcs = crate::mcs::is_acyclic_mcs(h);
    let has_independent_path = find_independent_path(h).is_some();
    let has_join_tree = h.is_empty() || join_tree(h).is_some();
    TheoremReport {
        acyclic_gyo,
        acyclic_mcs,
        has_independent_path,
        has_join_tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn ring() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
        ])
        .unwrap()
    }

    #[test]
    fn classify_fig1_as_acyclic_with_join_tree() {
        match classify(&fig1()) {
            Classification::Acyclic { join_tree } => {
                let t = join_tree.expect("nonempty");
                assert!(t.verify_running_intersection(&fig1()));
            }
            Classification::Cyclic { .. } => panic!("Fig. 1 is acyclic"),
        }
        assert!(classify(&fig1()).is_acyclic());
    }

    #[test]
    fn classify_ring_as_cyclic_with_independent_path() {
        match classify(&ring()) {
            Classification::Cyclic { independent_path } => {
                assert!(independent_path.is_independent(&ring()));
                assert!(independent_path.len() >= 3);
            }
            Classification::Acyclic { .. } => panic!("the 3-ring is cyclic"),
        }
        assert!(!classify(&ring()).is_acyclic());
    }

    #[test]
    fn theorem_report_consistent_on_paper_examples() {
        for h in [
            fig1(),
            ring(),
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap(),
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap(),
            Hypergraph::from_edges([
                vec!["A", "B"],
                vec!["A", "C"],
                vec!["B", "C"],
                vec!["A", "D"],
            ])
            .unwrap(),
            Hypergraph::from_edges([vec!["A", "B", "C", "D"]]).unwrap(),
            Hypergraph::builder().build().unwrap(),
        ] {
            let report = check_theorem_6_1(&h);
            assert!(
                report.consistent(),
                "inconsistent report {report:?} for {}",
                h.display()
            );
        }
    }

    #[test]
    fn report_fields_match_direct_queries() {
        let r = check_theorem_6_1(&fig1());
        assert!(r.acyclic_gyo && r.acyclic_mcs && r.has_join_tree && !r.has_independent_path);
        let r = check_theorem_6_1(&ring());
        assert!(!r.acyclic_gyo && !r.acyclic_mcs && !r.has_join_tree && r.has_independent_path);
    }
}
