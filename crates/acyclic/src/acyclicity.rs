//! Acyclicity tests.
//!
//! The paper's definition (§1): a hypergraph is *acyclic* if every
//! node-generated set of edges is a single edge or has an articulation set.
//! This is α-acyclicity in the later literature.  Three tests are provided:
//!
//! * [`is_acyclic`] — GYO/Graham reduction (the practical test; the paper's
//!   reference [4] proves it equivalent to the definition),
//! * [`is_acyclic_by_definition`] — the definition verbatim, enumerating all
//!   node-generated sets (exponential; the baseline for small inputs),
//! * `mcs::is_acyclic_mcs` — chordality of the primal graph plus
//!   conformality (Tarjan–Yannakakis style), in the sibling module.

use hypergraph::{Edge, Hypergraph, NodeId, NodeSet};
use std::collections::HashMap;

/// Pass-based Graham reduction without trace recording.
///
/// Produces the same fixed point as [`crate::graham_reduce`] (Lemma 2.1) but
/// removes all currently-removable nodes per pass and prunes subsumed edges
/// with a size-sorted sweep, which keeps large benchmark instances fast.
pub fn graham_reduction_fast(h: &Hypergraph, sacred: &NodeSet) -> Hypergraph {
    let mut edges: Vec<Edge> = h.edges().to_vec();
    loop {
        let mut changed = false;

        // Node-removal pass: delete every non-sacred node of degree one.
        let mut degree: HashMap<NodeId, usize> = HashMap::new();
        for e in &edges {
            for n in e.nodes.iter() {
                *degree.entry(n).or_insert(0) += 1;
            }
        }
        let removable: NodeSet = degree
            .iter()
            .filter(|(n, &c)| c == 1 && !sacred.contains(**n))
            .map(|(&n, _)| n)
            .collect();
        if !removable.is_empty() {
            for e in &mut edges {
                let before = e.nodes.len();
                e.nodes.subtract(&removable);
                if e.nodes.len() != before {
                    changed = true;
                }
            }
            edges.retain(|e| !e.nodes.is_empty());
        }

        // Edge-removal pass: drop edges subsumed by a larger (or equal,
        // earlier) edge.  Sorting by descending size lets each edge only be
        // checked against candidates that could subsume it.
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(edges[i].nodes.len()));
        let mut keep = vec![true; edges.len()];
        for (pos, &i) in order.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for &j in &order[..pos] {
                if !keep[j] || i == j {
                    continue;
                }
                if edges[i].nodes.is_subset(&edges[j].nodes) {
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
            if keep[i] {
                // Equal-sized duplicates: keep the earliest index.
                for &j in &order[pos + 1..] {
                    if keep[j] && j < i && edges[j].nodes == edges[i].nodes {
                        keep[i] = false;
                        changed = true;
                        break;
                    }
                }
            }
        }
        if keep.iter().any(|k| !k) {
            let mut it = keep.iter();
            edges.retain(|_| *it.next().expect("keep mask aligned"));
        }

        if !changed {
            break;
        }
    }
    h.with_edges(edges)
}

impl private::Sealed for Hypergraph {}

mod private {
    pub trait Sealed {}
}

/// Acyclicity-related extension methods on [`Hypergraph`].
pub trait AcyclicityExt: private::Sealed {
    /// True if the hypergraph is acyclic (α-acyclic), tested by GYO
    /// reduction: Graham reduction with no sacred nodes empties the
    /// hypergraph exactly when it is acyclic.
    fn is_acyclic(&self) -> bool;

    /// The paper's definition verbatim: every node-generated set of edges is
    /// a single edge or has an articulation set.
    ///
    /// Enumerates all `2^n - 1` node subsets; intended as the ground-truth
    /// baseline for small hypergraphs (≤ ~20 nodes).
    fn is_acyclic_by_definition(&self) -> bool;
}

impl AcyclicityExt for Hypergraph {
    fn is_acyclic(&self) -> bool {
        graham_reduction_fast(self, &NodeSet::new()).is_empty()
    }

    fn is_acyclic_by_definition(&self) -> bool {
        // The paper assumes connected hypergraphs throughout; a disconnected
        // node-generated set is judged by its components, and each component
        // is itself enumerated as the node-generated set of its own node
        // set, so disconnected subsets can be skipped without losing any
        // witnesses.
        self.all_node_generated()
            .all(|(_, g)| g.edge_count() <= 1 || !g.is_connected() || g.has_articulation_set())
    }
}

/// Free-function form of [`AcyclicityExt::is_acyclic`].
pub fn is_acyclic(h: &Hypergraph) -> bool {
    h.is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graham::{graham_reduction, gyo_reduction};

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap()
    }

    #[test]
    fn fig1_is_acyclic_by_all_tests() {
        let h = fig1();
        assert!(h.is_acyclic());
        assert!(h.is_acyclic_by_definition());
    }

    #[test]
    fn triangle_is_cyclic_by_all_tests() {
        let h = triangle();
        assert!(!h.is_acyclic());
        assert!(!h.is_acyclic_by_definition());
    }

    #[test]
    fn fig1_without_ace_is_cyclic() {
        // The paper's Example 5.1 hypergraph: Fig. 1 with edge {A,C,E}
        // removed is a ring of three edges and is cyclic.
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
        ])
        .unwrap();
        assert!(!h.is_acyclic());
        assert!(!h.is_acyclic_by_definition());
    }

    #[test]
    fn single_edge_and_empty_hypergraphs_are_acyclic() {
        let single = Hypergraph::from_edges([vec!["A", "B", "C"]]).unwrap();
        assert!(single.is_acyclic());
        assert!(single.is_acyclic_by_definition());
        let empty = Hypergraph::builder().build().unwrap();
        assert!(empty.is_acyclic());
    }

    #[test]
    fn chain_and_star_are_acyclic() {
        let chain =
            Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let star = Hypergraph::from_edges([
            vec!["H", "A"],
            vec!["H", "B"],
            vec!["H", "C"],
            vec!["H", "D"],
        ])
        .unwrap();
        assert!(chain.is_acyclic() && chain.is_acyclic_by_definition());
        assert!(star.is_acyclic() && star.is_acyclic_by_definition());
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let ring = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["B", "C"],
            vec!["C", "D"],
            vec!["D", "A"],
        ])
        .unwrap();
        assert!(!ring.is_acyclic());
        assert!(!ring.is_acyclic_by_definition());
    }

    #[test]
    fn big_edge_covering_a_ring_makes_it_acyclic() {
        // Fig. 1's point: the ring ABC, CDE, AEF is "broken" by {A, C, E}.
        let h = fig1();
        assert!(h.is_acyclic());
        // A disconnected acyclic hypergraph is still acyclic.
        let disconnected =
            Hypergraph::from_edges([vec!["A", "B"], vec!["C", "D"], vec!["D", "E"]]).unwrap();
        assert!(disconnected.is_acyclic());
        assert!(disconnected.is_acyclic_by_definition());
    }

    #[test]
    fn fast_reduction_matches_traced_reduction() {
        for (h, sacred_names) in [
            (fig1(), vec!["A", "D"]),
            (fig1(), vec![]),
            (triangle(), vec!["A"]),
            (
                Hypergraph::from_edges([
                    vec!["A", "B"],
                    vec!["B", "C"],
                    vec!["C", "D"],
                    vec!["D", "A"],
                    vec!["A", "E"],
                ])
                .unwrap(),
                vec!["E"],
            ),
        ] {
            let sacred = h.node_set(sacred_names.iter().copied()).unwrap();
            let fast = graham_reduction_fast(&h, &sacred);
            let slow = graham_reduction(&h, &sacred);
            assert!(
                fast.same_edge_sets(&slow),
                "fast {} != slow {}",
                fast.display(),
                slow.display()
            );
        }
    }

    #[test]
    fn gyo_and_fast_gyo_agree_on_emptiness() {
        for h in [fig1(), triangle()] {
            assert_eq!(
                gyo_reduction(&h).is_empty(),
                graham_reduction_fast(&h, &NodeSet::new()).is_empty()
            );
        }
    }
}
