//! Elimination orders over the primal graph.
//!
//! Triangulating a graph means eliminating its nodes one at a time, turning
//! each node's current neighbourhood into a clique (the added edges are
//! *fill edges*) before removing it.  The graph plus all fill edges is
//! chordal, and the quality of the resulting decomposition — the size of
//! its largest bag — depends entirely on the order.  Finding the optimal
//! order is NP-hard, so two classic greedy heuristics are provided:
//!
//! * **min-fill** — eliminate the node whose neighbourhood needs the fewest
//!   fill edges to become a clique (usually the better widths);
//! * **min-degree** — eliminate the node with the fewest neighbours
//!   (cheaper to evaluate, often good enough).
//!
//! Ties break towards the smallest node id, so orders are deterministic.

use hypergraph::{Graph, NodeId};

/// Which greedy criterion picks the next node to eliminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Heuristic {
    /// Fewest fill edges added ([`Graph::fill_in_count`]); the default.
    #[default]
    MinFill,
    /// Fewest current neighbours.
    MinDegree,
}

impl Heuristic {
    /// Parses a CLI spelling (`min-fill`/`minfill`, `min-degree`/`mindegree`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "min-fill" | "minfill" => Ok(Self::MinFill),
            "min-degree" | "mindegree" => Ok(Self::MinDegree),
            other => Err(format!(
                "unknown heuristic {other:?} (expected min-fill or min-degree)"
            )),
        }
    }
}

/// The result of running an elimination order to completion.
#[derive(Debug, Clone)]
pub struct EliminationOrder {
    /// The nodes in elimination order.
    pub order: Vec<NodeId>,
    /// The neighbourhood of each node at the moment it was eliminated —
    /// `order[i]` together with `bags[i]` is the bag recorded for step `i`.
    pub bags: Vec<hypergraph::NodeSet>,
    /// Total number of fill edges the order added.
    pub fill_edges: usize,
    /// The heuristic that produced the order.
    pub heuristic: Heuristic,
}

/// Runs `heuristic` greedily over (a working copy of) `g` until every node
/// is eliminated, recording the per-step neighbourhoods and the total fill.
pub fn elimination_order(g: &Graph, heuristic: Heuristic) -> EliminationOrder {
    let mut work = g.clone();
    let n = work.node_count();
    let mut order = Vec::with_capacity(n);
    let mut bags = Vec::with_capacity(n);
    let mut fill_edges = 0usize;
    while work.node_count() > 0 {
        let next = work
            .nodes()
            .iter()
            .min_by_key(|&v| {
                let cost = match heuristic {
                    Heuristic::MinFill => work.fill_in_count(v),
                    Heuristic::MinDegree => work.neighbors_ref(v).map_or(0, |s| s.len()),
                };
                (cost, v)
            })
            .expect("nonempty graph has a node");
        fill_edges += work.fill_in_count(next);
        let nbrs = work.eliminate(next);
        order.push(next);
        bags.push(nbrs);
    }
    EliminationOrder {
        order,
        bags,
        fill_edges,
        heuristic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn cycle(len: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..len {
            g.add_edge(n(i), n((i + 1) % len));
        }
        g
    }

    #[test]
    fn heuristic_parses_cli_spellings() {
        assert_eq!(Heuristic::parse("min-fill"), Ok(Heuristic::MinFill));
        assert_eq!(Heuristic::parse("minfill"), Ok(Heuristic::MinFill));
        assert_eq!(Heuristic::parse("min-degree"), Ok(Heuristic::MinDegree));
        assert_eq!(Heuristic::parse("mindegree"), Ok(Heuristic::MinDegree));
        assert!(Heuristic::parse("optimal").is_err());
        assert_eq!(Heuristic::default(), Heuristic::MinFill);
    }

    #[test]
    fn cycle_elimination_fills_one_edge_per_step_until_triangle() {
        for heuristic in [Heuristic::MinFill, Heuristic::MinDegree] {
            let e = elimination_order(&cycle(6), heuristic);
            assert_eq!(e.order.len(), 6);
            assert_eq!(e.bags.len(), 6);
            // A k-cycle needs exactly k - 3 fill edges.
            assert_eq!(e.fill_edges, 3, "{heuristic:?}");
            // Every recorded bag has at most two neighbours (width 2).
            assert!(e.bags.iter().all(|b| b.len() <= 2));
        }
    }

    #[test]
    fn tree_elimination_adds_no_fill() {
        // A star is already chordal: eliminating leaves first needs no fill.
        let mut g = Graph::new();
        for i in 1..6 {
            g.add_edge(n(0), n(i));
        }
        let e = elimination_order(&g, Heuristic::MinFill);
        assert_eq!(e.fill_edges, 0);
        assert_eq!(e.order.len(), 6);
        // The hub is eliminated last (leaves are simplicial and smaller).
        assert!(e.order[..4].iter().all(|&v| v != n(0)));
    }

    #[test]
    fn orders_are_deterministic() {
        let a = elimination_order(&cycle(7), Heuristic::MinFill);
        let b = elimination_order(&cycle(7), Heuristic::MinFill);
        assert_eq!(a.order, b.order);
        assert_eq!(a.fill_edges, b.fill_edges);
    }

    #[test]
    fn empty_graph_has_an_empty_order() {
        let e = elimination_order(&Graph::new(), Heuristic::MinDegree);
        assert!(e.order.is_empty());
        assert_eq!(e.fill_edges, 0);
    }
}
