//! Bags, bag trees and verification: the [`Decomposition`] type.
//!
//! A decomposition of a hypergraph `H` is a hypergraph of *bags* (node sets)
//! plus a join tree over the bags such that
//!
//! 1. every edge of `H` is contained in some bag (*edge coverage*),
//! 2. for every node, the bags containing it form a connected subtree
//!    (*running intersection* — verified by reusing
//!    [`JoinTree::verify_running_intersection`]).
//!
//! Bags come from triangulation: each step of an
//! [elimination order](crate::elimination) records `{v} ∪ neighbours(v)`,
//! non-maximal bags are dropped, and the surviving bags — the maximal
//! cliques of the chordal completion — always form an acyclic hypergraph,
//! so the tree is assembled by the ordinary ear decomposition
//! ([`acyclic::join_tree`]).
//!
//! Each bag also carries an *edge cover*, the recipe `reldb::hypertree`
//! materializes it from: the original edges assigned to the bag (each edge
//! is assigned to exactly one bag that contains it) plus, for bag nodes no
//! assigned edge covers, extra overlapping edges that are joined and then
//! projected down to the bag.

use crate::elimination::{elimination_order, EliminationOrder, Heuristic};
use acyclic::{join_tree, JoinTree};
use hypergraph::{Edge, EdgeId, Hypergraph, NodeSet};
use std::fmt;

/// Why a hypergraph could not be decomposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The hypergraph has no edges, so there is nothing to decompose.
    NoEdges,
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoEdges => write!(f, "hypergraph has no edges to decompose"),
        }
    }
}

impl std::error::Error for DecompError {}

/// A hypertree decomposition: bags, a join tree over them, and per-bag edge
/// covers.  Produced by [`decompose`]; consumed by `reldb::hypertree`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The bag hypergraph: one edge (`B0`, `B1`, …) per maximal bag, over
    /// the *same universe* as the decomposed hypergraph.
    bags: Hypergraph,
    /// The running-intersection tree over the bags.
    tree: JoinTree,
    /// Original edges assigned to each bag (every original edge appears in
    /// exactly one bag's assignment, and is a subset of that bag).
    assigned: Vec<Vec<EdgeId>>,
    /// Extra covering edges per bag: original edges that merely *overlap*
    /// the bag, added so the union of covers spans every bag node.  Their
    /// out-of-bag attributes are projected away during materialization.
    extra: Vec<Vec<EdgeId>>,
    /// The elimination order that produced the bags.
    order: EliminationOrder,
}

impl Decomposition {
    /// The bag hypergraph (shares the original's universe).
    pub fn bags(&self) -> &Hypergraph {
        &self.bags
    }

    /// The running-intersection tree over the bags.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.edge_count()
    }

    /// The decomposition width: largest bag size minus one, matching the
    /// treewidth convention (a ring decomposes at width 2, a `k`-clique at
    /// width `k - 1`; any acyclic hypergraph decomposes at its largest edge
    /// size minus one).
    pub fn width(&self) -> usize {
        self.bags
            .edges()
            .iter()
            .map(|e| e.nodes.len())
            .max()
            .unwrap_or(1)
            - 1
    }

    /// The elimination order behind the bags (heuristic, order, fill count).
    pub fn order(&self) -> &EliminationOrder {
        &self.order
    }

    /// Number of fill edges the triangulation added.
    pub fn fill_edges(&self) -> usize {
        self.order.fill_edges
    }

    /// The original edges assigned to bag `bag` (each is a subset of the
    /// bag).
    pub fn assigned(&self, bag: usize) -> &[EdgeId] {
        &self.assigned[bag]
    }

    /// The extra covering edges of bag `bag` (overlapping, projected during
    /// materialization).
    pub fn extra_cover(&self, bag: usize) -> &[EdgeId] {
        &self.extra[bag]
    }

    /// The full cover of bag `bag`: assigned edges first, then the extra
    /// covering edges — the join order `reldb::hypertree` materializes in.
    pub fn cover(&self, bag: usize) -> impl Iterator<Item = EdgeId> + '_ {
        self.assigned[bag].iter().chain(&self.extra[bag]).copied()
    }

    /// Verifies the decomposition against the hypergraph it was built from:
    ///
    /// * every original edge is a subset of some bag, and of the bag it is
    ///   assigned to;
    /// * the bag tree satisfies the running-intersection property (via
    ///   [`JoinTree::verify_running_intersection`] on the bag hypergraph);
    /// * every bag is exactly covered by its cover edges' in-bag nodes;
    /// * the bags span exactly the original nodes.
    pub fn verify(&self, h: &Hypergraph) -> bool {
        if !self.tree.verify_running_intersection(&self.bags) {
            return false;
        }
        if self.bags.nodes() != h.nodes() {
            return false;
        }
        let mut seen = vec![false; h.edge_count()];
        for (b, bag) in self.bags.edges().iter().enumerate() {
            for &e in &self.assigned[b] {
                if !h.edges()[e.index()].nodes.is_subset(&bag.nodes) {
                    return false;
                }
                if std::mem::replace(&mut seen[e.index()], true) {
                    return false; // assigned twice
                }
            }
            let mut covered = NodeSet::new();
            for e in self.cover(b) {
                covered.union_with(&h.edges()[e.index()].nodes.intersection(&bag.nodes));
            }
            if covered != bag.nodes {
                return false;
            }
        }
        seen.iter().all(|&s| s)
    }

    /// Renders the bag tree as Graphviz DOT: one box per bag listing its
    /// nodes and covered edges, tree edges labelled with their separators.
    pub fn to_dot(&self, name: &str, h: &Hypergraph) -> String {
        let u = h.universe();
        let mut out = String::new();
        out.push_str(&format!("graph {name} {{\n"));
        out.push_str("  node [shape=box];\n");
        for (b, bag) in self.bags.edges().iter().enumerate() {
            let nodes = bag.nodes.names(u).join(", ");
            let cover: Vec<&str> = self
                .cover(b)
                .map(|e| h.edges()[e.index()].label.as_str())
                .collect();
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n{{{}}}\\ncovers: {}\"];\n",
                bag.label,
                bag.label,
                nodes,
                cover.join(", "),
            ));
        }
        for (c, p) in self.tree.tree_edges() {
            let sep = self.bags.edges()[c.index()]
                .nodes
                .intersection(&self.bags.edges()[p.index()].nodes);
            out.push_str(&format!(
                "  \"{}\" -- \"{}\" [label=\"{}\"];\n",
                self.bags.edges()[c.index()].label,
                self.bags.edges()[p.index()].label,
                sep.names(u).join(", "),
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Decomposes `h` using the given [`Heuristic`] for the elimination order.
///
/// Works on *any* hypergraph: an already-acyclic input decomposes at its
/// own width (largest edge minus one).  Fails only when `h` has no edges.
pub fn decompose(h: &Hypergraph, heuristic: Heuristic) -> Result<Decomposition, DecompError> {
    let order = elimination_order(&h.primal_graph(), heuristic);
    decompose_with_order(h, order)
}

/// Decomposes `h` from an already-computed elimination order — the entry
/// point for callers that want to compare heuristics or supply a custom
/// order.
pub fn decompose_with_order(
    h: &Hypergraph,
    order: EliminationOrder,
) -> Result<Decomposition, DecompError> {
    if h.is_empty() {
        return Err(DecompError::NoEdges);
    }
    // One candidate bag per elimination step: the node plus its
    // neighbourhood at elimination time.
    let mut candidates: Vec<NodeSet> = Vec::with_capacity(order.order.len());
    for (v, nbrs) in order.order.iter().zip(&order.bags) {
        let mut bag = nbrs.clone();
        bag.insert(*v);
        candidates.push(bag);
    }
    // Keep only maximal bags — the maximal cliques of the chordal
    // completion.  Earlier (larger, eliminated-first) bags win ties, so the
    // result is deterministic.
    let mut keep: Vec<bool> = vec![true; candidates.len()];
    for i in 0..candidates.len() {
        if !keep[i] {
            continue;
        }
        for (j, keep_j) in keep.iter_mut().enumerate() {
            if i != j
                && *keep_j
                && candidates[j].is_subset(&candidates[i])
                && (candidates[j] != candidates[i] || j > i)
            {
                *keep_j = false;
            }
        }
    }
    let bag_sets: Vec<NodeSet> = candidates
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(b, _)| b)
        .collect();
    let edges: Vec<Edge> = bag_sets
        .iter()
        .enumerate()
        .map(|(i, b)| Edge::new(format!("B{i}"), b.clone()))
        .collect();
    let bags = Hypergraph::with_universe(h.universe().clone(), edges)
        .expect("bags use nodes of the original universe");
    let tree = join_tree(&bags)
        .expect("maximal cliques of a chordal completion form an acyclic hypergraph");

    // Assign every original edge to the first bag containing it (each edge
    // is a clique of the primal graph, hence of the chordal completion,
    // hence inside some maximal clique).
    let mut assigned: Vec<Vec<EdgeId>> = vec![Vec::new(); bag_sets.len()];
    for (ei, e) in h.edges().iter().enumerate() {
        let b = bag_sets
            .iter()
            .position(|bag| e.nodes.is_subset(bag))
            .expect("every edge is a clique of the triangulated primal graph");
        assigned[b].push(EdgeId(ei as u32));
    }
    // Complete each bag's cover: nodes of the bag that no assigned edge
    // touches are covered greedily by overlapping original edges (their
    // out-of-bag attributes are projected away at materialization time).
    let mut extra: Vec<Vec<EdgeId>> = vec![Vec::new(); bag_sets.len()];
    for (b, bag) in bag_sets.iter().enumerate() {
        let mut covered = NodeSet::new();
        for &e in &assigned[b] {
            covered.union_with(&h.edges()[e.index()].nodes);
        }
        covered.intersect_with(bag);
        while covered != *bag {
            let missing = bag.difference(&covered);
            let best = h
                .edge_entries()
                .map(|(id, e)| (e.nodes.intersection(&missing).len(), id))
                .max_by_key(|&(gain, id)| (gain, std::cmp::Reverse(id)))
                .expect("nonempty hypergraph");
            debug_assert!(best.0 > 0, "every bag node appears in some edge");
            extra[b].push(best.1);
            covered.union_with(&h.edges()[best.1.index()].nodes.intersection(bag));
        }
    }
    Ok(Decomposition {
        bags,
        tree,
        assigned,
        extra,
        order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(k: usize) -> Hypergraph {
        let names: Vec<String> = (0..k).map(|i| format!("N{i}")).collect();
        Hypergraph::from_edges((0..k).map(|i| vec![names[i].clone(), names[(i + 1) % k].clone()]))
            .unwrap()
    }

    fn clique(n: usize) -> Hypergraph {
        let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push(vec![names[i].clone(), names[j].clone()]);
            }
        }
        Hypergraph::from_edges(edges).unwrap()
    }

    #[test]
    fn ring_k_has_width_two() {
        for k in 3..9 {
            for heuristic in [Heuristic::MinFill, Heuristic::MinDegree] {
                let h = ring(k);
                let d = decompose(&h, heuristic).unwrap();
                assert_eq!(d.width(), 2, "ring({k}) under {heuristic:?}");
                assert_eq!(d.bag_count(), k - 2, "ring({k}) bags");
                assert!(d.verify(&h), "ring({k}) verification");
            }
        }
    }

    #[test]
    fn clique_k_has_width_k_minus_one() {
        for k in 3..7 {
            let h = clique(k);
            let d = decompose(&h, Heuristic::MinFill).unwrap();
            assert_eq!(d.width(), k - 1, "clique({k})");
            assert_eq!(d.bag_count(), 1, "a clique is a single bag");
            assert!(d.verify(&h));
        }
    }

    #[test]
    fn acyclic_input_decomposes_at_its_own_width() {
        // Fig. 1 of the paper: acyclic, largest edge 3 — width 2, and the
        // bags are exactly the maximal cliques of its (chordal) primal
        // graph, i.e. the edges themselves.
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap();
        let d = decompose(&h, Heuristic::MinFill).unwrap();
        assert_eq!(d.width(), 2);
        assert_eq!(d.fill_edges(), 0, "chordal primal graph needs no fill");
        assert_eq!(d.bag_count(), 4);
        assert!(d.verify(&h));
        assert!(d.bags().same_edge_sets(&h));
    }

    #[test]
    fn every_edge_is_assigned_exactly_once() {
        let h = ring(6);
        let d = decompose(&h, Heuristic::MinFill).unwrap();
        let mut count = vec![0usize; h.edge_count()];
        for b in 0..d.bag_count() {
            for &e in d.assigned(b) {
                count[e.index()] += 1;
            }
        }
        assert!(
            count.iter().all(|&c| c == 1),
            "assignment counts: {count:?}"
        );
    }

    #[test]
    fn extra_covers_complete_sparse_bags() {
        // In a 5-ring, the middle bag {N1, N2, N4}-shaped clique has only
        // one contained edge; its remaining node must be covered by an
        // overlapping edge.
        let h = ring(5);
        let d = decompose(&h, Heuristic::MinFill).unwrap();
        assert!(d.verify(&h));
        let extras: usize = (0..d.bag_count()).map(|b| d.extra_cover(b).len()).sum();
        assert!(extras > 0, "a 5-ring needs at least one projected cover");
    }

    #[test]
    fn hyper_ring_decomposes_and_verifies() {
        // 4 edges of width 3, consecutive edges overlapping in one node.
        let h = Hypergraph::from_edges([
            vec!["B0", "I0", "B1"],
            vec!["B1", "I1", "B2"],
            vec!["B2", "I2", "B3"],
            vec!["B3", "I3", "B0"],
        ])
        .unwrap();
        assert!(acyclic::join_tree(&h).is_none(), "hyper-ring is cyclic");
        let d = decompose(&h, Heuristic::MinFill).unwrap();
        assert!(d.verify(&h));
        // Interior nodes are simplicial (each edge is a primal triangle), so
        // after peeling them only the boundary 4-cycle remains: width 2,
        // with the boundary bags covered by projected overlapping edges.
        assert_eq!(d.width(), 2);
        assert!(d.tree().verify_running_intersection(d.bags()));
    }

    #[test]
    fn dot_output_renders_bags_and_separators() {
        let h = ring(4);
        let d = decompose(&h, Heuristic::MinFill).unwrap();
        let dot = d.to_dot("ring4", &h);
        assert!(dot.starts_with("graph ring4 {"));
        assert!(dot.contains("\"B0\""));
        assert!(dot.contains("covers:"));
        assert!(dot.contains(" -- "));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_hypergraph_is_rejected() {
        let h = Hypergraph::builder().node("A").build().unwrap();
        assert_eq!(
            decompose(&h, Heuristic::MinFill).unwrap_err(),
            DecompError::NoEdges
        );
        assert!(DecompError::NoEdges.to_string().contains("no edges"));
    }

    #[test]
    fn grid_decomposition_verifies() {
        // 3x3 grid of binary edges: treewidth 3 is not required of the
        // heuristics, but coverage + running intersection must hold.
        let name = |r: usize, c: usize| format!("G{r}_{c}");
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push(vec![name(r, c), name(r, c + 1)]);
                }
                if r + 1 < 3 {
                    edges.push(vec![name(r, c), name(r + 1, c)]);
                }
            }
        }
        let h = Hypergraph::from_edges(edges).unwrap();
        for heuristic in [Heuristic::MinFill, Heuristic::MinDegree] {
            let d = decompose(&h, heuristic).unwrap();
            assert!(d.verify(&h), "{heuristic:?}");
            assert!(d.width() >= 2);
        }
    }
}
