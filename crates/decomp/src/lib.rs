//! Hypertree decomposition: executing *cyclic* hypergraph queries by
//! reduction to the acyclic machinery of Maier & Ullman.
//!
//! The paper characterizes what makes acyclic hypergraphs tractable —
//! GYO/Graham reduction, join trees, the running-intersection property — and
//! the `acyclic`/`reldb` crates exploit exactly that.  A cyclic hypergraph
//! has no join tree, but it can be *made* acyclic: triangulate its primal
//! graph with an elimination order, collect the maximal cliques of the
//! chordal completion as *bags*, and assemble the bags into a tree.  The
//! bag hypergraph is acyclic by construction (maximal cliques of a chordal
//! graph always admit a join tree), so the existing ear-decomposition and
//! Yannakakis machinery runs on it unchanged.  The price of cyclicity is
//! the *width* of the decomposition: the largest bag joins that many
//! attributes at once.
//!
//! # Module map
//!
//! | Module | Concept / engine role |
//! |---|---|
//! | [`mod@elimination`] | elimination orders over the primal graph: min-fill and min-degree heuristics, fill-edge accounting |
//! | [`mod@decompose`] | bag collection (one bag per elimination step, subsumed bags dropped), running-intersection tree assembly via [`acyclic::join_tree`], [`Decomposition::width`], [`Decomposition::verify`], DOT rendering of the bag tree |
//!
//! The relational half of the pipeline — materializing each bag as the join
//! of the relations it covers and running the Yannakakis reducer/join over
//! the bag tree — lives in `reldb::hypertree`, which consumes the
//! [`Decomposition`] produced here.
//!
//! # Example
//!
//! ```
//! use hypergraph::Hypergraph;
//! use decomp::{decompose, Heuristic};
//!
//! // A 4-ring: the smallest cyclic family.  Triangulation yields two
//! // 3-node bags, so the decomposition has width 2.
//! let ring = Hypergraph::from_edges([
//!     vec!["A", "B"],
//!     vec!["B", "C"],
//!     vec!["C", "D"],
//!     vec!["D", "A"],
//! ]).unwrap();
//!
//! let d = decompose(&ring, Heuristic::MinFill).unwrap();
//! assert_eq!(d.width(), 2);
//! assert_eq!(d.bag_count(), 2);
//! assert!(d.verify(&ring));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod elimination;

pub use decompose::{decompose, decompose_with_order, DecompError, Decomposition};
pub use elimination::{elimination_order, EliminationOrder, Heuristic};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::{decompose, elimination_order, Decomposition, EliminationOrder, Heuristic};
}
