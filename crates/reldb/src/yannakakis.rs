//! The Yannakakis algorithm: full reduction and join over a join tree.
//!
//! For an acyclic schema, a *full reducer* is a sequence of semijoins that
//! removes every dangling tuple (a tuple that does not participate in the
//! full join).  Running the reducer and then joining bottom-up along the
//! join tree computes the full join — and any projection of it — in time
//! polynomial in input + output, whereas the naive join can build huge
//! intermediate results.  This is the practical payoff of acyclicity that
//! the paper's §7 interpretation points at, and the subject of benchmark B4.

use crate::database::Database;
use crate::relation::Relation;
use acyclic::JoinTree;
use hypergraph::{EdgeId, NodeSet};

/// The result of running a full reducer: the reduced relations (in schema
/// order) and the number of tuples removed from each.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// Reduced relations, in schema-edge order.
    pub relations: Vec<Relation>,
    /// Tuples removed from each relation by the semijoin passes.
    pub removed: Vec<usize>,
}

impl Reduced {
    /// Total number of dangling tuples removed.
    pub fn total_removed(&self) -> usize {
        self.removed.iter().sum()
    }
}

/// Mutable access to `rels[i]` alongside shared access to `rels[j]`.
fn pair_mut(rels: &mut [Relation], i: usize, j: usize) -> (&mut Relation, &Relation) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = rels.split_at_mut(j);
        (&mut a[i], &b[0])
    } else {
        let (a, b) = rels.split_at_mut(i);
        (&mut b[0], &a[j])
    }
}

/// Runs the two semijoin passes of the Yannakakis full reducer over `tree`.
///
/// The upward pass semijoins every parent with each of its children
/// (children processed bottom-up); the downward pass semijoins every child
/// with its parent (top-down).  Afterwards every remaining tuple
/// participates in the full join.  Each semijoin reduces the relation *in
/// place* ([`Relation::retain_semijoin`]): the row buffer is compacted by a
/// keep-mask rather than rebuilding the relation every pass.
pub fn full_reduce(db: &Database, tree: &JoinTree) -> Reduced {
    let mut relations: Vec<Relation> = db.relations().to_vec();
    let mut removed: Vec<usize> = vec![0; relations.len()];

    let order = tree.bottom_up_order();
    // Upward pass: parent ⋉ child, children first.
    for &child in &order {
        if let Some(parent) = tree.parent(child) {
            let (p, c) = pair_mut(&mut relations, parent.index(), child.index());
            removed[parent.index()] += p.retain_semijoin(c);
        }
    }
    // Downward pass: child ⋉ parent, top-down.
    for &child in order.iter().rev() {
        if let Some(parent) = tree.parent(child) {
            let (c, p) = pair_mut(&mut relations, child.index(), parent.index());
            removed[child.index()] += c.retain_semijoin(p);
        }
    }

    Reduced { relations, removed }
}

/// Computes the projection of the full join onto `output` by the Yannakakis
/// algorithm: full-reduce, then join bottom-up along the tree, projecting
/// intermediate results onto (needed separator ∪ output) attributes to keep
/// them small.
pub fn yannakakis_join(db: &Database, tree: &JoinTree, output: &NodeSet) -> Relation {
    let reduced = full_reduce(db, tree);
    let relations = reduced.relations;

    // Attributes that must be kept while processing each subtree: the output
    // attributes plus anything shared with the edge's parent.
    let keep_for = |e: EdgeId| -> NodeSet {
        let own = db.schema().edges()[e.index()].nodes.clone();
        let mut keep = own.intersection(output);
        if let Some(p) = tree.parent(e) {
            keep.union_with(&own.intersection(&db.schema().edges()[p.index()].nodes));
        }
        keep
    };

    // Bottom-up join: each edge accumulates the join of its subtree,
    // projected onto the attributes still needed above it.
    let mut partial: Vec<Option<Relation>> = vec![None; relations.len()];
    for e in tree.bottom_up_order() {
        let mut acc = relations[e.index()].clone();
        for c in tree.children(e) {
            let child_rel = partial[c.index()].take().expect("children processed first");
            acc = acc.join(&child_rel);
        }
        // Keep this subtree's contribution small: only output attributes
        // (including those surfaced by children) and the separator towards
        // the parent are needed further up.
        let mut keep = keep_for(e);
        keep.union_with(&acc.attributes().intersection(output));
        acc = acc.project(&keep);
        partial[e.index()] = Some(acc);
    }
    let root_result = partial[tree.root().index()]
        .take()
        .expect("root processed last");
    root_result.project(output)
}

/// The same projection computed naively: join every relation, then project.
/// Used as the baseline in tests and benchmark B4.
pub fn naive_join_project(db: &Database, output: &NodeSet) -> Relation {
    db.full_join().project(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use acyclic::join_tree;
    use hypergraph::Hypergraph;

    /// A chain schema R(A,B), S(B,C), T(C,D) with data containing dangling
    /// tuples.
    fn chain_db() -> Database {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let (a, b, c, d) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
            h.node("D").unwrap(),
        );
        let mut db = Database::empty(h);
        for i in 0..5i64 {
            db.insert(EdgeId(0), Tuple::from_pairs([(a, i), (b, i)]));
        }
        // Dangling: B values 3, 4 have no continuation.
        for i in 0..3i64 {
            db.insert(EdgeId(1), Tuple::from_pairs([(b, i), (c, i * 10)]));
        }
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 99), (c, 990)])); // dangling
        for i in 0..2i64 {
            db.insert(EdgeId(2), Tuple::from_pairs([(c, i * 10), (d, i + 100)]));
        }
        db
    }

    #[test]
    fn full_reducer_removes_dangling_tuples() {
        let db = chain_db();
        let tree = join_tree(db.schema()).unwrap();
        let reduced = full_reduce(&db, &tree);
        assert!(reduced.total_removed() > 0);
        // After reduction, every relation's tuples participate in the full
        // join: re-reducing removes nothing more.
        let db2 = Database::new(db.schema().clone(), reduced.relations.clone()).unwrap();
        let again = full_reduce(&db2, &tree);
        assert_eq!(again.total_removed(), 0);
    }

    #[test]
    fn yannakakis_matches_naive_join_on_full_output() {
        let db = chain_db();
        let tree = join_tree(db.schema()).unwrap();
        let all = db.schema().nodes();
        let fast = yannakakis_join(&db, &tree, &all);
        let naive = naive_join_project(&db, &all);
        assert!(fast.same_contents(&naive), "fast != naive");
    }

    #[test]
    fn yannakakis_matches_naive_join_on_projections() {
        let db = chain_db();
        let tree = join_tree(db.schema()).unwrap();
        for attrs in [
            vec!["A"],
            vec!["A", "D"],
            vec!["B", "C"],
            vec!["A", "C", "D"],
        ] {
            let output = db.attributes(attrs.iter().copied()).unwrap();
            let fast = yannakakis_join(&db, &tree, &output);
            let naive = naive_join_project(&db, &output);
            assert!(
                fast.same_contents(&naive),
                "mismatch for output {attrs:?}: fast {} naive {}",
                fast.len(),
                naive.len()
            );
        }
    }

    #[test]
    fn fig1_schema_queries_match() {
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| h.node(n).unwrap())
            .collect();
        let mut db = Database::empty(h.clone());
        // A small instance where every attribute value is the row index
        // modulo a couple of divisors, giving partial join matches.
        for (ei, e) in h.edges().iter().enumerate() {
            for row in 0..6i64 {
                let t = Tuple::from_pairs(e.nodes.iter().map(|n| {
                    (
                        n,
                        row % (2 + (ids.iter().position(|&x| x == n).unwrap() as i64 % 3)),
                    )
                }));
                db.insert(EdgeId(ei as u32), t);
            }
        }
        let tree = join_tree(&h).unwrap();
        for attrs in [
            vec!["A", "D"],
            vec!["B", "F"],
            vec!["A", "B", "C", "D", "E", "F"],
        ] {
            let output = db.attributes(attrs.iter().copied()).unwrap();
            let fast = yannakakis_join(&db, &tree, &output);
            let naive = naive_join_project(&db, &output);
            assert!(fast.same_contents(&naive), "mismatch for {attrs:?}");
        }
    }

    #[test]
    fn empty_relation_propagates_to_empty_result() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let a = h.node("A").unwrap();
        let b = h.node("B").unwrap();
        let mut db = Database::empty(h.clone());
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 1)]));
        // Relation BC stays empty.
        let tree = join_tree(&h).unwrap();
        let out = yannakakis_join(&db, &tree, &h.nodes());
        assert!(out.is_empty());
        let reduced = full_reduce(&db, &tree);
        assert_eq!(reduced.relations[0].len(), 0, "dangling tuple must go");
    }
}
