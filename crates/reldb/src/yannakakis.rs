//! The Yannakakis algorithm: full reduction and join over a join tree.
//!
//! For an acyclic schema, a *full reducer* is a sequence of semijoins that
//! removes every dangling tuple (a tuple that does not participate in the
//! full join).  Running the reducer and then joining bottom-up along the
//! join tree computes the full join — and any projection of it — in time
//! polynomial in input + output, whereas the naive join can build huge
//! intermediate results.  This is the practical payoff of acyclicity that
//! the paper's §7 interpretation points at, and the subject of benchmark B4.
//!
//! Both phases are *level-synchronous*: the join tree is partitioned into
//! depth levels ([`JoinTree::levels`]), and within one level the reducer's
//! semijoins write pairwise-distinct targets while the join phase's subtree
//! jobs write disjoint partial-result slots — so each level's work runs
//! concurrently on workers leased once per call from the shared
//! [`WorkerPool`](crate::exec::WorkerPool) (no per-level thread spawning).

use crate::database::Database;
use crate::exec::{ExecPolicy, Job, WorkerLease, WorkerPool};
use crate::govern::{unfail, EngineError, Governor, NoopGovernor};
use crate::metrics::{MetricsSink, NoopMetrics, Phase};
use crate::relation::Relation;
use crate::trace::{with_span, NoopTrace, SpanKind, TraceSink};
use acyclic::JoinTree;
use hypergraph::{EdgeId, NodeSet};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// The result of running a full reducer: the reduced relations (in schema
/// order) and the number of tuples removed from each.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// Reduced relations, in schema-edge order.
    pub relations: Vec<Relation>,
    /// Tuples removed from each relation by the semijoin passes.
    pub removed: Vec<usize>,
}

impl Reduced {
    /// Total number of dangling tuples removed.
    pub fn total_removed(&self) -> usize {
        self.removed.iter().sum()
    }
}

/// Mutable access to `rels[i]` alongside shared access to `rels[j]`.
fn pair_mut(rels: &mut [Relation], i: usize, j: usize) -> (&mut Relation, &Relation) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = rels.split_at_mut(j);
        (&mut a[i], &b[0])
    } else {
        let (a, b) = rels.split_at_mut(i);
        (&mut b[0], &a[j])
    }
}

/// One level's worth of reducer work: semijoin the target relation with
/// each source relation in turn, in place.
struct LevelJob {
    /// Index of the relation being reduced.
    target: usize,
    /// Indices of the relations it is semijoined against (children in the
    /// upward pass; the single parent in the downward pass).
    sources: Vec<usize>,
}

/// An empty throwaway relation left in a slot whose real relation has been
/// moved into a worker job.  Never read: within a level no job's sources
/// intersect the level's targets.
fn placeholder() -> Relation {
    Relation::new("·", NodeSet::new())
}

/// Runs one level of reducer jobs, sequentially or across leased workers.
///
/// Within a level the targets are pairwise distinct and never appear among
/// any job's sources (upward: targets are parents at depth `d`, sources
/// their children at `d+1`; downward: targets at depth `d`, sources their
/// parents at `d-1`), so target relations can be taken out of the vector
/// and mutated concurrently while the remainder is shared read-only behind
/// an [`Arc`] (moved in and out — never cloned).  When a level has fewer
/// targets than workers (chains: every level is a singleton) the
/// parallelism drops *inside* the semijoin instead: the hash probe loop is
/// sharded across the same leased workers
/// ([`Relation::retain_semijoin_exec`]).
///
/// Jobs are dispatched **biggest first**: the lease hands jobs out
/// round-robin, so a skewed level (a snowflake's fact relation next to its
/// dimensions) would otherwise park the fat job behind small ones on one
/// worker while the rest idle.  Sorting by estimated cost (target tuples
/// plus source tuples) approximates longest-processing-time scheduling
/// without a work queue.
fn run_level<M: MetricsSink, G: Governor>(
    relations: &mut Vec<Relation>,
    removed: &mut [usize],
    mut jobs: Vec<LevelJob>,
    policy: &ExecPolicy,
    lease: &WorkerLease,
    sink: &M,
    gov: &G,
) -> Result<(), EngineError> {
    if jobs.is_empty() {
        return Ok(());
    }
    let threads = lease.threads();
    if threads <= 1 || jobs.len() == 1 {
        let inline = WorkerLease::inline();
        let probe = if jobs.len() == 1 { lease } else { &inline };
        for job in &jobs {
            for &s in &job.sources {
                let (t, src) = pair_mut(relations, job.target, s);
                removed[job.target] += t.retain_semijoin_governed(src, policy, probe, sink, gov)?;
            }
        }
        return Ok(());
    }
    let cost = |j: &LevelJob| -> usize {
        relations[j.target].len() + j.sources.iter().map(|&s| relations[s].len()).sum::<usize>()
    };
    jobs.sort_by_key(|j| std::cmp::Reverse(cost(j)));
    // Take the targets out, move the remaining relations into an Arc the
    // jobs share, run one owned job per target on the lease, then
    // reassemble.  Jobs drop their Arc handle *before* signalling their
    // result so the unwrap below cannot race a worker still holding one.
    let targets: Vec<Relation> = jobs
        .iter()
        .map(|j| std::mem::replace(&mut relations[j.target], placeholder()))
        .collect();
    let shared = Arc::new(std::mem::take(relations));
    let (tx, rx) = channel();
    let work: Vec<Job> = jobs
        .into_iter()
        .zip(targets)
        .map(|(job, mut target)| {
            let shared = Arc::clone(&shared);
            let policy = policy.clone();
            let tx = tx.clone();
            let sink = sink.clone();
            let gov = gov.clone();
            Box::new(move || {
                let mut removed_here = 0usize;
                let mut res = Ok(());
                for &s in &job.sources {
                    match target.retain_semijoin_governed(
                        &shared[s],
                        &policy,
                        &WorkerLease::inline(),
                        &sink,
                        &gov,
                    ) {
                        Ok(n) => removed_here += n,
                        Err(e) => {
                            res = Err(e);
                            break;
                        }
                    }
                }
                drop(shared);
                // The target relation is sent back even on abort: a governed
                // semijoin that errors leaves it untouched, so reassembly
                // below restores the level exactly as it was.
                let _ = tx.send((job.target, target, removed_here, res));
            }) as Job
        })
        .collect();
    drop(tx);
    lease.run(work);
    *relations = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| unreachable!("level jobs returned their shared handles"));
    let mut first_err = None;
    for (t, rel, rem, res) in rx.try_iter() {
        relations[t] = rel;
        removed[t] += rem;
        if let Err(e) = res {
            first_err = first_err.or(Some(e));
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Runs the two semijoin passes of the Yannakakis full reducer over `tree`
/// with the default [`ExecPolicy`] (auto strategy, parallel above the
/// tuple threshold) — see [`full_reduce_with`].
pub fn full_reduce(db: &Database, tree: &JoinTree) -> Reduced {
    full_reduce_with(db, tree, &ExecPolicy::default())
}

/// Runs the two semijoin passes of the Yannakakis full reducer over `tree`,
/// level-synchronously, under an explicit [`ExecPolicy`].
///
/// The upward pass semijoins every parent with each of its children
/// (deepest levels first); the downward pass semijoins every child with its
/// parent (top-down).  Afterwards every remaining tuple participates in the
/// full join.  Each semijoin reduces the relation *in place*
/// ([`Relation::retain_semijoin_with`]): the row buffer is compacted by a
/// keep-mask rather than rebuilding the relation every pass, and the dedup
/// index rebuild is deferred until something actually reads it.
///
/// Parallelism is level-synchronous: within one tree level the semijoins
/// write pairwise-distinct target relations and only read relations from
/// the adjacent level, so each level's jobs run concurrently on workers
/// leased once per call (`policy.threads` of them, from the shared
/// [`WorkerPool`](crate::exec::WorkerPool) unless `policy.reuse_pool` is
/// off, with a sequential fallback below `policy.parallel_threshold` total
/// tuples).  The result is tuple-for-tuple identical to the sequential
/// pass: surviving rows depend only on the *set* of semijoins applied, and
/// within one target they are applied in the same child order as the
/// sequential bottom-up walk.
pub fn full_reduce_with(db: &Database, tree: &JoinTree, policy: &ExecPolicy) -> Reduced {
    full_reduce_metered(db, tree, policy, &NoopMetrics)
}

/// The metered form of [`full_reduce_with`]: runs the same two semijoin
/// passes, recording per-semijoin counters, per-level wall timings and the
/// pool lease into `sink`.  [`full_reduce_with`] is this function
/// monomorphized over [`NoopMetrics`].
pub fn full_reduce_metered<M: MetricsSink>(
    db: &Database,
    tree: &JoinTree,
    policy: &ExecPolicy,
    sink: &M,
) -> Reduced {
    unfail(full_reduce_governed(db, tree, policy, sink, &NoopGovernor))
}

/// The governed form of [`full_reduce_metered`]: the same two semijoin
/// passes, with the [`Governor`]'s checkpoints consulted before every tree
/// level and at every [`CHECK_BATCH`](crate::govern::CHECK_BATCH) rows
/// inside the semijoin kernels.  An abort — cancellation, deadline, budget
/// or injected failpoint — surfaces as `Err(EngineError)` and leaves `db`
/// untouched: the reducer operates on copies of the stored relations, and
/// every checkpoint fires during read-only kernel phases.
/// [`full_reduce_metered`] is this function monomorphized over
/// [`NoopGovernor`], which compiles the checkpoints away.
pub fn full_reduce_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    tree: &JoinTree,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Reduced, EngineError> {
    let lease = policy.lease(db.tuple_count());
    if M::ENABLED {
        sink.record_lease(lease.threads(), WorkerPool::idle_workers());
    }
    full_reduce_leased(db, tree, policy, &lease, sink, gov, &NoopTrace)
}

/// The reducer body, on an already-acquired lease — shared by
/// [`full_reduce_governed`] and [`yannakakis_join_governed`] so the join
/// pipeline leases its workers exactly once for both phases.  The
/// [`TraceSink`] brackets each semijoin pass in a wall-clock span
/// ([`SpanKind::ReduceUp`] / [`SpanKind::ReduceDown`]); [`NoopTrace`]
/// compiles the brackets away.
#[allow(clippy::too_many_arguments)]
fn full_reduce_leased<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    tree: &JoinTree,
    policy: &ExecPolicy,
    lease: &WorkerLease,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Reduced, EngineError> {
    let mut relations: Vec<Relation> = db.relations().to_vec();
    let mut removed: Vec<usize> = vec![0; relations.len()];
    let levels = tree.levels();
    let rebuilds_before: usize = relations.iter().map(Relation::index_rebuild_count).sum();

    // Upward pass: parent ⋉ each child, deepest parent level first.  The
    // governor is consulted once per level even when the level has no
    // semijoin work, so a zero deadline trips deterministically on any
    // tree, single-edge schemas included.
    with_span(tracer, SpanKind::ReduceUp, || -> Result<(), EngineError> {
        for (depth, level) in levels.iter().enumerate().rev() {
            if G::ENABLED {
                gov.at_level(Phase::ReduceUp, depth)?;
            }
            let jobs: Vec<LevelJob> = level
                .iter()
                .filter(|&&e| !tree.children(e).is_empty())
                .map(|&e| LevelJob {
                    target: e.index(),
                    sources: tree.children(e).iter().map(|c| c.index()).collect(),
                })
                .collect();
            let n = jobs.len();
            let t0 = M::ENABLED.then(Instant::now);
            run_level(&mut relations, &mut removed, jobs, policy, lease, sink, gov)?;
            if let Some(t0) = t0 {
                if n > 0 {
                    sink.record_level(Phase::ReduceUp, depth, n, t0.elapsed().as_nanos() as u64);
                }
            }
        }
        Ok(())
    })?;
    // Downward pass: child ⋉ parent, top-down.
    with_span(
        tracer,
        SpanKind::ReduceDown,
        || -> Result<(), EngineError> {
            for (depth, level) in levels.iter().enumerate().skip(1) {
                if G::ENABLED {
                    gov.at_level(Phase::ReduceDown, depth)?;
                }
                let jobs: Vec<LevelJob> = level
                    .iter()
                    .map(|&e| LevelJob {
                        target: e.index(),
                        sources: vec![tree.parent(e).expect("non-root level").index()],
                    })
                    .collect();
                let n = jobs.len();
                let t0 = M::ENABLED.then(Instant::now);
                run_level(&mut relations, &mut removed, jobs, policy, lease, sink, gov)?;
                if let Some(t0) = t0 {
                    if n > 0 {
                        sink.record_level(
                            Phase::ReduceDown,
                            depth,
                            n,
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                }
            }
            Ok(())
        },
    )?;

    if M::ENABLED {
        // Rebuilds the reduction itself paid: with the deferred-rebuild
        // optimization this stays 0 (each retain only marks the index
        // stale), which is exactly what the counter is there to prove.
        let after: usize = relations.iter().map(Relation::index_rebuild_count).sum();
        sink.record_index_rebuilds((after - rebuilds_before) as u64);
    }
    Ok(Reduced { relations, removed })
}

/// Computes the projection of the full join onto `output` by the Yannakakis
/// algorithm with the default [`ExecPolicy`] — see [`yannakakis_join_with`].
pub fn yannakakis_join(db: &Database, tree: &JoinTree, output: &NodeSet) -> Relation {
    yannakakis_join_with(db, tree, output, &ExecPolicy::default())
}

/// Computes the projection of the full join onto `output` by the Yannakakis
/// algorithm: full-reduce, then join bottom-up along the tree, projecting
/// intermediate results onto (needed separator ∪ output) attributes to keep
/// them small.  The policy picks the physical join strategy
/// ([`crate::JoinStrategy`]) for every semijoin and join, and the worker
/// parallelism of *both* phases: sibling subtrees at one tree level are
/// independent, so their joins run concurrently on the same workers the
/// reducer leased, merging each subtree's partial result into its own slot
/// (disjoint writes).  The output is tuple-for-tuple identical to the
/// sequential engine: every subtree job computes exactly the sequential
/// walk's intermediate relation, and sibling subtrees never read each
/// other.
///
/// # Examples
///
/// ```
/// use hypergraph::{EdgeId, Hypergraph};
/// use reldb::{yannakakis_join_with, Database, ExecPolicy, JoinStrategy, Tuple};
/// use acyclic::join_tree;
///
/// let schema = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
/// let (a, b, c) = (
///     schema.node("A").unwrap(),
///     schema.node("B").unwrap(),
///     schema.node("C").unwrap(),
/// );
/// let mut db = Database::empty(schema);
/// db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
/// db.insert(EdgeId(0), Tuple::from_pairs([(a, 7), (b, 9)])); // dangling
/// db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 3)]));
///
/// let tree = join_tree(db.schema()).expect("chain schemas are acyclic");
/// let output = db.attributes(["A", "C"]).unwrap();
/// // Two leased workers; the sequential default policy gives the same rows.
/// let policy = ExecPolicy::parallel(JoinStrategy::Auto, 2);
/// let answer = yannakakis_join_with(&db, &tree, &output, &policy);
/// assert_eq!(answer.len(), 1);
/// ```
pub fn yannakakis_join_with(
    db: &Database,
    tree: &JoinTree,
    output: &NodeSet,
    policy: &ExecPolicy,
) -> Relation {
    yannakakis_join_metered(db, tree, output, policy, &NoopMetrics)
}

/// The metered form of [`yannakakis_join_with`]: the same reduce-then-join
/// pipeline, recording per-op counters, per-level wall timings for both
/// phases and the pool lease into `sink`.  [`yannakakis_join_with`] is this
/// function monomorphized over [`NoopMetrics`].
pub fn yannakakis_join_metered<M: MetricsSink>(
    db: &Database,
    tree: &JoinTree,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
) -> Relation {
    unfail(yannakakis_join_governed(
        db,
        tree,
        output,
        policy,
        sink,
        &NoopGovernor,
    ))
}

/// The governed form of [`yannakakis_join_metered`]: the same
/// reduce-then-join pipeline, with the [`Governor`]'s checkpoints consulted
/// before every reducer and join level and inside every kernel loop, and
/// output allocations charged against its memory budget.  An abort surfaces
/// as `Err(EngineError)`; `db` is never mutated, so an aborted query leaves
/// the database exactly as loaded.  [`yannakakis_join_metered`] is this
/// function monomorphized over [`NoopGovernor`].
pub fn yannakakis_join_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    tree: &JoinTree,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    // One lease serves the reducer passes and the join levels alike.
    let lease = policy.lease(db.tuple_count());
    if M::ENABLED {
        sink.record_lease(lease.threads(), WorkerPool::idle_workers());
    }
    yannakakis_join_leased(db, tree, output, policy, &lease, sink, gov, &NoopTrace)
}

/// The reduce-then-join pipeline on an already-acquired lease — shared by
/// [`yannakakis_join_governed`] and the decomposed cyclic pipeline
/// ([`crate::yannakakis_join_decomposed_governed`]), so a cyclic query
/// leases its workers exactly once across bag materialization, the reducer
/// passes and the join levels.  The [`TraceSink`] wraps the reducer passes
/// (inside [`full_reduce_leased`]) and the bottom-up join levels
/// ([`SpanKind::Join`]) in wall-clock spans.
#[allow(clippy::too_many_arguments)]
pub(crate) fn yannakakis_join_leased<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    tree: &JoinTree,
    output: &NodeSet,
    policy: &ExecPolicy,
    lease: &WorkerLease,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, EngineError> {
    let reduced = full_reduce_leased(db, tree, policy, lease, sink, gov, tracer)?;
    let mut relations = reduced.relations;

    // Attributes that must be kept while processing each subtree: the output
    // attributes plus anything shared with the edge's parent.
    let keep_for = |e: EdgeId| -> NodeSet {
        let own = db.schema().edges()[e.index()].nodes.clone();
        let mut keep = own.intersection(output);
        if let Some(p) = tree.parent(e) {
            keep.union_with(&own.intersection(&db.schema().edges()[p.index()].nodes));
        }
        keep
    };

    // Bottom-up join, level-synchronous: each edge accumulates the join of
    // its subtree, projected onto the attributes still needed above it.
    // Within a level the jobs consume their own reduced relation and their
    // children's partials and write disjoint `partial` slots, so a
    // multi-edge level fans out across the leased workers.
    let mut partial: Vec<Option<Relation>> = vec![None; relations.len()];
    let levels = tree.levels_bottom_up();
    let threads = lease.threads();
    with_span(tracer, SpanKind::Join, || -> Result<(), EngineError> {
        for (li, level) in levels.iter().enumerate() {
            if G::ENABLED {
                gov.at_level(Phase::Join, li)?;
            }
            let t0 = M::ENABLED.then(Instant::now);
            if threads <= 1 || level.len() <= 1 {
                // Fewer targets than workers (chains: every join level is a
                // singleton): parallelism drops *inside* the join instead — the
                // whole lease pulls probe morsels from the shared queue
                // ([`Relation::join_sharded_governed`]), so one huge binary
                // join no longer serializes the level.
                for &e in level {
                    let base = std::mem::replace(&mut relations[e.index()], placeholder());
                    let children = take_children(tree, e, &mut partial);
                    partial[e.index()] = Some(join_subtree(
                        base,
                        &children,
                        keep_for(e),
                        output,
                        policy,
                        lease,
                        sink,
                        gov,
                    )?);
                }
            } else {
                // Biggest subtree jobs first, for the same longest-processing-
                // time reason as the reducer levels: round-robin dispatch over
                // the leased workers balances best when the fat job leads the
                // batch.
                let mut order: Vec<EdgeId> = level.clone();
                let cost = |e: EdgeId| -> usize {
                    relations[e.index()].len()
                        + tree
                            .children(e)
                            .iter()
                            .map(|c| partial[c.index()].as_ref().map_or(0, Relation::len))
                            .sum::<usize>()
                };
                order.sort_by_key(|&e| std::cmp::Reverse(cost(e)));
                let (tx, rx) = channel();
                let work: Vec<Job> = order
                    .iter()
                    .map(|&e| {
                        let base = std::mem::replace(&mut relations[e.index()], placeholder());
                        let children = take_children(tree, e, &mut partial);
                        let keep = keep_for(e);
                        let output = output.clone();
                        let policy = policy.clone();
                        let tx = tx.clone();
                        let sink = sink.clone();
                        let gov = gov.clone();
                        let idx = e.index();
                        Box::new(move || {
                            let _ = tx.send((
                                idx,
                                join_subtree(
                                    base,
                                    &children,
                                    keep,
                                    &output,
                                    &policy,
                                    &WorkerLease::inline(),
                                    &sink,
                                    &gov,
                                ),
                            ));
                        }) as Job
                    })
                    .collect();
                drop(tx);
                lease.run(work);
                let mut first_err = None;
                for (idx, res) in rx.try_iter() {
                    match res {
                        Ok(rel) => partial[idx] = Some(rel),
                        Err(e) => first_err = first_err.or(Some(e)),
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
            }
            if let Some(t0) = t0 {
                sink.record_level(Phase::Join, li, level.len(), t0.elapsed().as_nanos() as u64);
            }
        }
        Ok(())
    })?;
    let root_result = partial[tree.root().index()]
        .take()
        .expect("root processed last");
    Ok(root_result.project(output))
}

/// Takes edge `e`'s children's partial results out of their slots (they are
/// each consumed exactly once, by their parent).
fn take_children(tree: &JoinTree, e: EdgeId, partial: &mut [Option<Relation>]) -> Vec<Relation> {
    tree.children(e)
        .iter()
        .map(|c| partial[c.index()].take().expect("children processed first"))
        .collect()
}

/// One bottom-up join job: joins an edge's reduced relation with its
/// children's subtree results (in child order, matching the sequential
/// walk) and projects onto the attributes still needed above it — the
/// output attributes surfaced so far plus the separator towards the parent.
#[allow(clippy::too_many_arguments)]
fn join_subtree<M: MetricsSink, G: Governor>(
    base: Relation,
    children: &[Relation],
    mut keep: NodeSet,
    output: &NodeSet,
    policy: &ExecPolicy,
    probe: &WorkerLease,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    let mut acc = base;
    for child in children {
        acc = acc.join_sharded_governed(child, policy, probe, sink, gov)?;
    }
    keep.union_with(&acc.attributes().intersection(output));
    Ok(acc.project(&keep))
}

/// The same projection computed naively: join every relation, then project.
/// Used as the baseline in tests and benchmark B4.
pub fn naive_join_project(db: &Database, output: &NodeSet) -> Relation {
    db.full_join().project(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use acyclic::join_tree;
    use hypergraph::Hypergraph;

    /// A chain schema R(A,B), S(B,C), T(C,D) with data containing dangling
    /// tuples.
    fn chain_db() -> Database {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let (a, b, c, d) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
            h.node("D").unwrap(),
        );
        let mut db = Database::empty(h);
        for i in 0..5i64 {
            db.insert(EdgeId(0), Tuple::from_pairs([(a, i), (b, i)]));
        }
        // Dangling: B values 3, 4 have no continuation.
        for i in 0..3i64 {
            db.insert(EdgeId(1), Tuple::from_pairs([(b, i), (c, i * 10)]));
        }
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 99), (c, 990)])); // dangling
        for i in 0..2i64 {
            db.insert(EdgeId(2), Tuple::from_pairs([(c, i * 10), (d, i + 100)]));
        }
        db
    }

    #[test]
    fn full_reducer_removes_dangling_tuples() {
        let db = chain_db();
        let tree = join_tree(db.schema()).unwrap();
        let reduced = full_reduce(&db, &tree);
        assert!(reduced.total_removed() > 0);
        // After reduction, every relation's tuples participate in the full
        // join: re-reducing removes nothing more.
        let db2 = Database::new(db.schema().clone(), reduced.relations.clone()).unwrap();
        let again = full_reduce(&db2, &tree);
        assert_eq!(again.total_removed(), 0);
    }

    #[test]
    fn yannakakis_matches_naive_join_on_full_output() {
        let db = chain_db();
        let tree = join_tree(db.schema()).unwrap();
        let all = db.schema().nodes();
        let fast = yannakakis_join(&db, &tree, &all);
        let naive = naive_join_project(&db, &all);
        assert!(fast.same_contents(&naive), "fast != naive");
    }

    #[test]
    fn yannakakis_matches_naive_join_on_projections() {
        let db = chain_db();
        let tree = join_tree(db.schema()).unwrap();
        for attrs in [
            vec!["A"],
            vec!["A", "D"],
            vec!["B", "C"],
            vec!["A", "C", "D"],
        ] {
            let output = db.attributes(attrs.iter().copied()).unwrap();
            let fast = yannakakis_join(&db, &tree, &output);
            let naive = naive_join_project(&db, &output);
            assert!(
                fast.same_contents(&naive),
                "mismatch for output {attrs:?}: fast {} naive {}",
                fast.len(),
                naive.len()
            );
        }
    }

    #[test]
    fn fig1_schema_queries_match() {
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| h.node(n).unwrap())
            .collect();
        let mut db = Database::empty(h.clone());
        // A small instance where every attribute value is the row index
        // modulo a couple of divisors, giving partial join matches.
        for (ei, e) in h.edges().iter().enumerate() {
            for row in 0..6i64 {
                let t = Tuple::from_pairs(e.nodes.iter().map(|n| {
                    (
                        n,
                        row % (2 + (ids.iter().position(|&x| x == n).unwrap() as i64 % 3)),
                    )
                }));
                db.insert(EdgeId(ei as u32), t);
            }
        }
        let tree = join_tree(&h).unwrap();
        for attrs in [
            vec!["A", "D"],
            vec!["B", "F"],
            vec!["A", "B", "C", "D", "E", "F"],
        ] {
            let output = db.attributes(attrs.iter().copied()).unwrap();
            let fast = yannakakis_join(&db, &tree, &output);
            let naive = naive_join_project(&db, &output);
            assert!(fast.same_contents(&naive), "mismatch for {attrs:?}");
        }
    }

    /// A small snowflake schema (fact hub with two arms of depth two) with
    /// random-ish data containing dangling tuples.
    fn snowflake_db() -> Database {
        let h = Hypergraph::from_edges([
            vec!["K0", "K1"],        // FACT
            vec!["K0", "D0", "K00"], // DIM arm 0 level 0
            vec!["K00", "D00"],      // DIM arm 0 level 1
            vec!["K1", "D1", "K10"], // DIM arm 1 level 0
            vec!["K10", "D10"],      // DIM arm 1 level 1
        ])
        .unwrap();
        let mut db = Database::empty(h.clone());
        for (ei, e) in h.edges().iter().enumerate() {
            for row in 0..12i64 {
                let t = Tuple::from_pairs(
                    e.nodes
                        .iter()
                        .enumerate()
                        .map(|(j, n)| (n, (row * (ei as i64 + 1) + j as i64) % 5)),
                );
                db.insert(EdgeId(ei as u32), t);
            }
        }
        db
    }

    #[test]
    fn snowflake_parallel_and_strategies_agree_with_sequential() {
        use crate::exec::{ExecPolicy, JoinStrategy};
        let db = snowflake_db();
        let tree = join_tree(db.schema()).unwrap();
        // The snowflake tree has multi-edge levels, so the parallel path
        // exercises target-sharding (not just probe-sharding).
        assert!(tree.levels().iter().any(|l| l.len() > 1));
        let baseline = full_reduce_with(&db, &tree, &ExecPolicy::sequential(JoinStrategy::Hash));
        for policy in [
            ExecPolicy::sequential(JoinStrategy::SortMerge),
            ExecPolicy::sequential(JoinStrategy::Auto),
            ExecPolicy::parallel(JoinStrategy::Hash, 4),
            ExecPolicy::parallel(JoinStrategy::SortMerge, 3),
            ExecPolicy::parallel(JoinStrategy::Auto, 2),
            // Spawn-per-batch workers (no pool reuse) must agree too.
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Hash, 3)
            },
        ] {
            let got = full_reduce_with(&db, &tree, &policy);
            assert_eq!(
                got.removed, baseline.removed,
                "removed counts diverged under {policy:?}"
            );
            for (b, g) in baseline.relations.iter().zip(&got.relations) {
                assert!(b.same_contents(g), "relations diverged under {policy:?}");
            }
        }
        // The full pipeline agrees with the naive join on every policy; the
        // parallel rows exercise the level-synchronous bottom-up join (the
        // snowflake tree has multi-edge levels, so sibling subtree jobs run
        // on the leased workers).
        let all = db.schema().nodes();
        let naive = naive_join_project(&db, &all);
        for policy in [
            ExecPolicy::sequential(JoinStrategy::SortMerge),
            ExecPolicy::parallel(JoinStrategy::Auto, 4),
            ExecPolicy::parallel(JoinStrategy::Hash, 2),
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Auto, 3)
            },
        ] {
            let fast = yannakakis_join_with(&db, &tree, &all, &policy);
            assert!(
                fast.same_contents(&naive),
                "pipeline diverged under {policy:?}"
            );
        }
    }

    /// The parallel join phase produces tuple-for-tuple the sequential
    /// engine's projections, not just the full output (projection decisions
    /// happen inside the per-subtree jobs).
    #[test]
    fn parallel_join_matches_sequential_on_projections() {
        use crate::exec::{ExecPolicy, JoinStrategy};
        let db = snowflake_db();
        let tree = join_tree(db.schema()).unwrap();
        let sequential = ExecPolicy::sequential(JoinStrategy::Hash);
        for attrs in [vec!["K0", "D10"], vec!["D0", "D1"], vec!["K0"]] {
            let output = db.attributes(attrs.iter().copied()).unwrap();
            let want = yannakakis_join_with(&db, &tree, &output, &sequential);
            for threads in [2, 4] {
                let got = yannakakis_join_with(
                    &db,
                    &tree,
                    &output,
                    &ExecPolicy::parallel(JoinStrategy::Hash, threads),
                );
                assert!(
                    want.same_contents(&got),
                    "projection {attrs:?} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_relation_propagates_to_empty_result() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let a = h.node("A").unwrap();
        let b = h.node("B").unwrap();
        let mut db = Database::empty(h.clone());
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 1)]));
        // Relation BC stays empty.
        let tree = join_tree(&h).unwrap();
        let out = yannakakis_join(&db, &tree, &h.nodes());
        assert!(out.is_empty());
        let reduced = full_reduce(&db, &tree);
        assert_eq!(reduced.relations[0].len(), 0, "dangling tuple must go");
    }
}
