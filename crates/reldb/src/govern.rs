//! Resource governance and fault tolerance through the execution engine.
//!
//! The engine's long-running-service story needs the same treatment
//! [`metrics`](crate::metrics) gave observability: a zero-cost-when-off
//! control plane threaded through every kernel.  This module supplies it —
//! a [`Governor`] trait the kernels consult at well-defined checkpoints, a
//! [`QueryGovernor`] carrying a cooperative cancellation token, a deadline
//! and a memory budget, and (behind the `failpoints` feature) a
//! deterministic `FailpointGovernor` for fault-injection testing.
//!
//! # Checkpoint granularity
//!
//! Governed kernels call back at *operation* or *batch* granularity, never
//! per tuple:
//!
//! | Checkpoint | Site | Worst-case overrun before the next check |
//! |---|---|---|
//! | [`Governor::checkpoint`] | every [`CHECK_BATCH`] rows in probe/emit loops | one batch (4096 rows) per worker |
//! | [`Governor::at_semijoin`] | before each semijoin (reducer step) | one semijoin's mask scan |
//! | [`Governor::at_level`] | before each reducer/join level | one level of parallel jobs |
//! | [`Governor::at_bag`] | before each hypertree bag materialization | one bag's cover join |
//! | [`Governor::approve_alloc`] | before building hash tables / sort permutations, per output batch, per materialized bag | one batch of over-budget output |
//!
//! Every governed entry point is monomorphized per governor type, so the
//! default [`NoopGovernor`] compiles to nothing — its checkpoint methods are
//! `#[inline] Ok(())` bodies the optimizer erases, and anything with a
//! runtime cost of its own is gated on the compile-time constant
//! [`Governor::ENABLED`].  The ungoverned public API is the governed path
//! monomorphized over [`NoopGovernor`]: one engine, not two.
//!
//! # The abort invariant
//!
//! Checkpoints only fire during *read-only* phases of a kernel: mask
//! computation for in-place semijoins, probe/emit loops that build fresh
//! output relations, and bag materialization (which constructs a brand-new
//! [`Database`](crate::Database)).  The in-place compaction step of
//! `retain_semijoin` runs unconditionally *after* the mask is complete.  An
//! aborted query — cancelled, past deadline, over budget, or
//! worker-panicked — therefore leaves the source database observably
//! unchanged, and the next query over it is still tuple-for-tuple correct.
//! `tests/govern_props.rs` proves this by snapshot comparison under random
//! failpoints.
//!
//! # Budget estimation
//!
//! The memory budget is charged in *estimated bytes* before allocations
//! happen: build-side rows × row width for hash tables and sort
//! permutations, output rows × width per emitted batch, and materialized
//! rows per hypertree bag.  For cyclic schemas the router additionally
//! pre-screens bag-cover cardinality products: a decomposition whose
//! estimated widest bag exceeds the budget falls back to the *other*
//! elimination heuristic's tree, then to a sequential streaming
//! materialization, before erroring with [`EngineError::BudgetExceeded`].

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::database::DbError;

/// Rows processed between two [`Governor::checkpoint`] calls inside a
/// kernel's probe/emit loop — the batch after which a cancellation or an
/// expired deadline is observed.
pub const CHECK_BATCH: usize = 4096;

/// Bytes charged per interned row cell when estimating memory use (a `u32`
/// value handle).
const BYTES_PER_CELL: u64 = 4;

/// A structured error from a governed engine entry point.
///
/// Every public `reldb` query path returns this instead of panicking: the
/// govern layer's checkpoints surface as [`Cancelled`], [`DeadlineExceeded`]
/// and [`BudgetExceeded`]; schema and input problems surface as
/// [`SchemaMismatch`], [`Io`] and [`Parse`]; a panic caught escaping a
/// worker surfaces as [`WorkerPanic`].
///
/// [`Cancelled`]: EngineError::Cancelled
/// [`DeadlineExceeded`]: EngineError::DeadlineExceeded
/// [`BudgetExceeded`]: EngineError::BudgetExceeded
/// [`SchemaMismatch`]: EngineError::SchemaMismatch
/// [`Io`]: EngineError::Io
/// [`Parse`]: EngineError::Parse
/// [`WorkerPanic`]: EngineError::WorkerPanic
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query's cancellation token was triggered.
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded {
        /// Wall-clock time elapsed when the overrun was observed.
        elapsed: Duration,
    },
    /// An allocation would push the query past its memory budget.
    BudgetExceeded {
        /// Estimated bytes the query would have held after the allocation.
        estimated: u64,
        /// The configured budget, in bytes.
        limit: u64,
    },
    /// The query or data does not fit the schema hypergraph.
    SchemaMismatch(String),
    /// An input file could not be read.
    Io(String),
    /// An input file could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A panic escaped an engine worker and was contained at the governed
    /// entry point.
    WorkerPanic(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cancelled => write!(f, "query cancelled"),
            Self::DeadlineExceeded { elapsed } => {
                write!(
                    f,
                    "deadline exceeded after {:.3}ms",
                    elapsed.as_secs_f64() * 1e3
                )
            }
            Self::BudgetExceeded { estimated, limit } => write!(
                f,
                "memory budget exceeded: estimated {estimated} bytes over a {limit}-byte budget"
            ),
            Self::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Self::Io(msg) => write!(f, "io error: {msg}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
            Self::WorkerPanic(msg) => write!(f, "engine worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DbError> for EngineError {
    fn from(e: DbError) -> Self {
        Self::SchemaMismatch(e.to_string())
    }
}

/// The governance hook threaded through every engine layer, mirroring
/// [`MetricsSink`](crate::MetricsSink).
///
/// Implementations must be cheaply cloneable (jobs handed to pool workers
/// carry their own handle).  All checkpoint methods default to `Ok(())`
/// with `#[inline]` bodies; [`ENABLED`] is the compile-time switch the
/// engine consults before doing governance-only work (clock reads, batch
/// counting).  Returning an error from any checkpoint aborts the governed
/// entry point with that error before any in-place mutation happens.
///
/// [`ENABLED`]: Governor::ENABLED
pub trait Governor: Clone + Send + Sync + 'static {
    /// Whether this governor checks anything.  `false` lets the engine skip
    /// governance work entirely at compile time.
    const ENABLED: bool;

    /// Generic cancellation/deadline checkpoint, called every
    /// [`CHECK_BATCH`] rows inside kernel probe/emit loops.
    #[inline]
    fn checkpoint(&self) -> Result<(), EngineError> {
        Ok(())
    }

    /// About to compute one semijoin mask (enabled governors that care
    /// about ordinals count calls themselves).
    #[inline]
    fn at_semijoin(&self) -> Result<(), EngineError> {
        Ok(())
    }

    /// About to run one level of a level-synchronous phase.
    #[inline]
    fn at_level(&self, _phase: crate::metrics::Phase, _level: usize) -> Result<(), EngineError> {
        Ok(())
    }

    /// About to materialize hypertree bag `_bag`.
    #[inline]
    fn at_bag(&self, _bag: usize) -> Result<(), EngineError> {
        Ok(())
    }

    /// About to hold roughly `_rows × _width` more interned cells (a hash
    /// table build side, a batch of join output, a materialized bag).
    /// Charges the memory budget; errors if the allocation would exceed it.
    #[inline]
    fn approve_alloc(&self, _rows: u64, _width: usize) -> Result<(), EngineError> {
        Ok(())
    }

    /// Whether an allocation of `_rows × _width` cells *would* exceed the
    /// remaining budget, without charging it — the routing pre-screen used
    /// to pick a cheaper decomposition before committing to one.
    #[inline]
    fn alloc_would_exceed(&self, _rows: u64, _width: usize) -> bool {
        false
    }
}

/// The default governor: checks nothing, costs nothing.  Every ungoverned
/// entry point in the engine is the governed one monomorphized over this
/// type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopGovernor;

impl Governor for NoopGovernor {
    const ENABLED: bool = false;
}

/// Unwraps a governed result that was produced under [`NoopGovernor`],
/// which cannot fail at any checkpoint.
#[inline]
pub(crate) fn unfail<T>(r: Result<T, EngineError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => unreachable!("no-op governor cannot abort a query: {e}"),
    }
}

/// A cloneable handle for cooperatively cancelling a governed query from
/// another thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: every governed query holding this token
    /// aborts with [`EngineError::Cancelled`] at its next checkpoint.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct GovernorInner {
    cancel: CancelToken,
    start: Instant,
    deadline: Option<Duration>,
    budget: Option<u64>,
    charged: AtomicU64,
}

/// The production governor: a cancellation token, an optional deadline and
/// an optional memory budget, shared across the worker pool by cloning.
///
/// A default `QueryGovernor` (no deadline, no budget, nobody holding the
/// token) still pays for its checkpoints — an atomic load per batch, a
/// clock read when a deadline is set — which the `columnar-governed` bench
/// rows show is within noise of the ungoverned path.
///
/// # Examples
///
/// ```
/// use reldb::govern::{EngineError, Governor, QueryGovernor};
/// use std::time::Duration;
///
/// let gov = QueryGovernor::new().with_deadline(Duration::ZERO);
/// assert!(matches!(
///     gov.checkpoint(),
///     Err(EngineError::DeadlineExceeded { .. })
/// ));
///
/// let gov = QueryGovernor::new();
/// let token = gov.token();
/// token.cancel();
/// assert_eq!(gov.checkpoint(), Err(EngineError::Cancelled));
/// ```
#[derive(Debug, Clone)]
pub struct QueryGovernor {
    inner: Arc<GovernorInner>,
}

impl Default for QueryGovernor {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryGovernor {
    /// A governor with no deadline, no budget and a fresh cancellation
    /// token.
    pub fn new() -> Self {
        Self::with_token(CancelToken::new())
    }

    /// A governor observing an existing cancellation token.
    pub fn with_token(token: CancelToken) -> Self {
        Self {
            inner: Arc::new(GovernorInner {
                cancel: token,
                start: Instant::now(),
                deadline: None,
                budget: None,
                charged: AtomicU64::new(0),
            }),
        }
    }

    /// Sets a wall-clock deadline, measured from *now* (the clock restarts
    /// so CLI setup time is not charged to the query unless the caller
    /// builds the governor first).
    pub fn with_deadline(self, deadline: Duration) -> Self {
        self.rebuild(|inner| GovernorInner {
            start: Instant::now(),
            deadline: Some(deadline),
            ..inner
        })
    }

    /// Backdates the governor's clock to `start`, so time spent before the
    /// governor was built (argument parsing, file loading) counts against
    /// the deadline.  Apply *after* [`with_deadline`](Self::with_deadline),
    /// which restarts the clock.
    pub fn started_at(self, start: Instant) -> Self {
        self.rebuild(|inner| GovernorInner { start, ..inner })
    }

    /// Sets a memory budget in estimated bytes of engine-held row data.
    pub fn with_memory_budget(self, bytes: u64) -> Self {
        self.rebuild(|inner| GovernorInner {
            budget: Some(bytes),
            ..inner
        })
    }

    fn rebuild(self, f: impl FnOnce(GovernorInner) -> GovernorInner) -> Self {
        let inner = Arc::try_unwrap(self.inner).unwrap_or_else(|arc| GovernorInner {
            cancel: arc.cancel.clone(),
            start: arc.start,
            deadline: arc.deadline,
            budget: arc.budget,
            charged: AtomicU64::new(arc.charged.load(Ordering::Relaxed)),
        });
        Self {
            inner: Arc::new(f(inner)),
        }
    }

    /// The cancellation token governed queries observe.
    pub fn token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Wall-clock time since the governor's clock started.
    pub fn elapsed(&self) -> Duration {
        self.inner.start.elapsed()
    }

    /// Estimated bytes charged against the budget so far.
    pub fn charged_bytes(&self) -> u64 {
        self.inner.charged.load(Ordering::Relaxed)
    }

    fn estimate(rows: u64, width: usize) -> u64 {
        rows.saturating_mul(width as u64)
            .saturating_mul(BYTES_PER_CELL)
    }
}

impl Governor for QueryGovernor {
    const ENABLED: bool = true;

    #[inline]
    fn checkpoint(&self) -> Result<(), EngineError> {
        if self.inner.cancel.is_cancelled() {
            return Err(EngineError::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            let elapsed = self.inner.start.elapsed();
            if elapsed >= deadline {
                return Err(EngineError::DeadlineExceeded { elapsed });
            }
        }
        Ok(())
    }

    #[inline]
    fn at_semijoin(&self) -> Result<(), EngineError> {
        self.checkpoint()
    }

    #[inline]
    fn at_level(&self, _phase: crate::metrics::Phase, _level: usize) -> Result<(), EngineError> {
        self.checkpoint()
    }

    #[inline]
    fn at_bag(&self, _bag: usize) -> Result<(), EngineError> {
        self.checkpoint()
    }

    fn approve_alloc(&self, rows: u64, width: usize) -> Result<(), EngineError> {
        let Some(limit) = self.inner.budget else {
            return Ok(());
        };
        let bytes = Self::estimate(rows, width);
        let before = self.inner.charged.fetch_add(bytes, Ordering::Relaxed);
        let estimated = before.saturating_add(bytes);
        if estimated > limit {
            return Err(EngineError::BudgetExceeded { estimated, limit });
        }
        Ok(())
    }

    fn alloc_would_exceed(&self, rows: u64, width: usize) -> bool {
        match self.inner.budget {
            Some(limit) => {
                let charged = self.inner.charged.load(Ordering::Relaxed);
                charged.saturating_add(Self::estimate(rows, width)) > limit
            }
            None => false,
        }
    }
}

/// Fault-injection support, compiled only with the `failpoints` feature.
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use crate::metrics::Phase;

    /// What an armed failpoint does when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FailMode {
        /// Surface a structured [`EngineError`] from the checkpoint.
        Error,
        /// Panic at the checkpoint — exercises the worker-panic containment
        /// on governed entry points.
        Panic,
    }

    #[derive(Debug)]
    struct FailpointInner {
        fail_at_semijoin: Option<u64>,
        mode: FailMode,
        semijoins: AtomicU64,
        slow_level: Option<(Phase, usize, Duration)>,
        alloc_fail_bag: Option<usize>,
        base: QueryGovernor,
    }

    /// A deterministic fault-injection governor for tests: fail at the
    /// `n`-th semijoin, sleep at a chosen level, or refuse the allocation
    /// for a chosen hypertree bag — all on top of a base [`QueryGovernor`]
    /// whose deadline/budget/cancellation still apply.
    ///
    /// # Examples
    ///
    /// ```
    /// use reldb::govern::{EngineError, FailpointGovernor, Governor};
    ///
    /// let gov = FailpointGovernor::new().fail_at_semijoin(1);
    /// assert!(gov.at_semijoin().is_ok());
    /// assert_eq!(gov.at_semijoin(), Err(EngineError::Cancelled));
    /// ```
    #[derive(Debug, Clone)]
    pub struct FailpointGovernor {
        inner: Arc<FailpointInner>,
    }

    impl Default for FailpointGovernor {
        fn default() -> Self {
            Self::new()
        }
    }

    impl FailpointGovernor {
        /// A governor with no failpoints armed.
        pub fn new() -> Self {
            Self::with_base(QueryGovernor::new())
        }

        /// A governor layering failpoints over an existing
        /// [`QueryGovernor`] (its deadline, budget and token still apply).
        pub fn with_base(base: QueryGovernor) -> Self {
            Self {
                inner: Arc::new(FailpointInner {
                    fail_at_semijoin: None,
                    mode: FailMode::Error,
                    semijoins: AtomicU64::new(0),
                    slow_level: None,
                    alloc_fail_bag: None,
                    base,
                }),
            }
        }

        fn rebuild(self, f: impl FnOnce(&mut FailpointInner)) -> Self {
            let mut inner = match Arc::try_unwrap(self.inner) {
                Ok(inner) => inner,
                Err(arc) => FailpointInner {
                    fail_at_semijoin: arc.fail_at_semijoin,
                    mode: arc.mode,
                    semijoins: AtomicU64::new(arc.semijoins.load(Ordering::Relaxed)),
                    slow_level: arc.slow_level,
                    alloc_fail_bag: arc.alloc_fail_bag,
                    base: arc.base.clone(),
                },
            };
            f(&mut inner);
            Self {
                inner: Arc::new(inner),
            }
        }

        /// Arms a failpoint at the `n`-th semijoin of the query (0-based).
        pub fn fail_at_semijoin(self, n: u64) -> Self {
            self.rebuild(|i| i.fail_at_semijoin = Some(n))
        }

        /// Chooses what a fired failpoint does ([`FailMode::Error`] is the
        /// default).
        pub fn fail_mode(self, mode: FailMode) -> Self {
            self.rebuild(|i| i.mode = mode)
        }

        /// Sleeps `by` before running level `level` of `phase` — long
        /// enough to trip a deadline deterministically.
        pub fn slow_level(self, phase: Phase, level: usize, by: Duration) -> Self {
            self.rebuild(|i| i.slow_level = Some((phase, level, by)))
        }

        /// Refuses the allocation for hypertree bag `bag`.
        pub fn alloc_fail_bag(self, bag: usize) -> Self {
            self.rebuild(|i| i.alloc_fail_bag = Some(bag))
        }

        /// Semijoins observed so far — lets a test size `fail_at_semijoin`
        /// sweeps to the query being exercised.
        pub fn semijoins_seen(&self) -> u64 {
            self.inner.semijoins.load(Ordering::Relaxed)
        }

        fn fire(&self) -> Result<(), EngineError> {
            match self.inner.mode {
                FailMode::Error => Err(EngineError::Cancelled),
                FailMode::Panic => panic!("injected failpoint panic"),
            }
        }
    }

    impl Governor for FailpointGovernor {
        const ENABLED: bool = true;

        #[inline]
        fn checkpoint(&self) -> Result<(), EngineError> {
            self.inner.base.checkpoint()
        }

        fn at_semijoin(&self) -> Result<(), EngineError> {
            let seen = self.inner.semijoins.fetch_add(1, Ordering::Relaxed);
            if self.inner.fail_at_semijoin == Some(seen) {
                self.fire()?;
            }
            self.inner.base.at_semijoin()
        }

        fn at_level(&self, phase: Phase, level: usize) -> Result<(), EngineError> {
            if let Some((p, l, by)) = self.inner.slow_level {
                if p == phase && l == level {
                    std::thread::sleep(by);
                }
            }
            self.inner.base.at_level(phase, level)
        }

        fn at_bag(&self, bag: usize) -> Result<(), EngineError> {
            if self.inner.alloc_fail_bag == Some(bag) {
                return Err(EngineError::BudgetExceeded {
                    estimated: u64::MAX,
                    limit: 0,
                });
            }
            self.inner.base.at_bag(bag)
        }

        fn approve_alloc(&self, rows: u64, width: usize) -> Result<(), EngineError> {
            self.inner.base.approve_alloc(rows, width)
        }

        fn alloc_would_exceed(&self, rows: u64, width: usize) -> bool {
            self.inner.base.alloc_would_exceed(rows, width)
        }
    }
}

#[cfg(feature = "failpoints")]
pub use failpoints::{FailMode, FailpointGovernor};

/// Runs a governed entry point with panic containment: a panic escaping the
/// engine (a worker job, a kernel bug, an injected failpoint panic) is
/// caught and surfaced as [`EngineError::WorkerPanic`] instead of unwinding
/// through the caller.
///
/// The closure only *reads* the database (in-place reducer forms operate on
/// copies), so resuming after the catch observes no torn state.
pub(crate) fn contain_panics<T>(
    f: impl FnOnce() -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            Err(EngineError::WorkerPanic(msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Phase;

    #[test]
    fn noop_governor_never_fails() {
        let g = NoopGovernor;
        assert!(g.checkpoint().is_ok());
        assert!(g.at_semijoin().is_ok());
        assert!(g.at_level(Phase::Join, 3).is_ok());
        assert!(g.at_bag(0).is_ok());
        assert!(g.approve_alloc(u64::MAX, usize::MAX).is_ok());
        assert!(!g.alloc_would_exceed(u64::MAX, usize::MAX));
        const { assert!(!NoopGovernor::ENABLED) };
    }

    #[test]
    fn cancellation_token_is_shared_across_clones() {
        let gov = QueryGovernor::new();
        let clone = gov.clone();
        assert!(clone.checkpoint().is_ok());
        gov.token().cancel();
        assert_eq!(clone.checkpoint(), Err(EngineError::Cancelled));
        assert_eq!(
            gov.at_level(Phase::ReduceUp, 0),
            Err(EngineError::Cancelled)
        );
    }

    #[test]
    fn zero_deadline_trips_the_first_checkpoint() {
        let gov = QueryGovernor::new().with_deadline(Duration::ZERO);
        match gov.checkpoint() {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        // Semijoin/level/bag checkpoints all observe the deadline too.
        assert!(gov.at_semijoin().is_err());
        assert!(gov.at_bag(2).is_err());
    }

    #[test]
    fn generous_deadline_passes() {
        let gov = QueryGovernor::new().with_deadline(Duration::from_secs(3600));
        assert!(gov.checkpoint().is_ok());
        assert!(gov.elapsed() < Duration::from_secs(3600));
    }

    #[test]
    fn budget_charges_accumulate_until_exceeded() {
        // 100 cells of 4 bytes = 400 bytes; budget of 1000 admits two
        // charges and rejects the third.
        let gov = QueryGovernor::new().with_memory_budget(1000);
        assert!(gov.approve_alloc(50, 2).is_ok());
        assert!(!gov.alloc_would_exceed(50, 2));
        assert!(gov.approve_alloc(50, 2).is_ok());
        assert!(gov.alloc_would_exceed(50, 2));
        match gov.approve_alloc(50, 2) {
            Err(EngineError::BudgetExceeded { estimated, limit }) => {
                assert_eq!(limit, 1000);
                assert_eq!(estimated, 1200);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
        assert_eq!(gov.charged_bytes(), 1200);
    }

    #[test]
    fn no_budget_means_no_charges() {
        let gov = QueryGovernor::new();
        assert!(gov.approve_alloc(u64::MAX, 64).is_ok());
        assert!(!gov.alloc_would_exceed(u64::MAX, 64));
    }

    #[test]
    fn errors_render_one_line_diagnostics() {
        for (err, needle) in [
            (EngineError::Cancelled, "cancelled"),
            (
                EngineError::DeadlineExceeded {
                    elapsed: Duration::from_millis(5),
                },
                "deadline exceeded",
            ),
            (
                EngineError::BudgetExceeded {
                    estimated: 10,
                    limit: 5,
                },
                "budget exceeded",
            ),
            (EngineError::SchemaMismatch("R".into()), "schema mismatch"),
            (EngineError::Io("gone".into()), "io error"),
            (
                EngineError::Parse {
                    line: 3,
                    message: "bad tuple".into(),
                },
                "line 3",
            ),
            (EngineError::WorkerPanic("boom".into()), "panicked"),
        ] {
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{rendered:?}");
            assert!(!rendered.contains('\n'), "{rendered:?}");
        }
    }

    #[test]
    fn db_errors_convert_to_schema_mismatch() {
        let e: EngineError = DbError::SchemaMismatch("R0".to_owned()).into();
        assert!(matches!(e, EngineError::SchemaMismatch(_)));
    }

    #[test]
    fn contain_panics_surfaces_worker_panic() {
        let r: Result<(), _> = contain_panics(|| panic!("kernel bug {}", 7));
        assert_eq!(r, Err(EngineError::WorkerPanic("kernel bug 7".into())));
        let ok = contain_panics(|| Ok(42));
        assert_eq!(ok, Ok(42));
        let err: Result<(), _> = contain_panics(|| Err(EngineError::Cancelled));
        assert_eq!(err, Err(EngineError::Cancelled));
    }

    #[cfg(feature = "failpoints")]
    mod failpoint_tests {
        use super::*;

        #[test]
        fn fail_at_nth_semijoin_counts_deterministically() {
            let gov = FailpointGovernor::new().fail_at_semijoin(2);
            assert!(gov.at_semijoin().is_ok());
            assert!(gov.at_semijoin().is_ok());
            assert_eq!(gov.at_semijoin(), Err(EngineError::Cancelled));
            assert_eq!(gov.semijoins_seen(), 3);
        }

        #[test]
        fn alloc_fail_bag_fires_only_for_the_armed_bag() {
            let gov = FailpointGovernor::new().alloc_fail_bag(1);
            assert!(gov.at_bag(0).is_ok());
            assert!(matches!(
                gov.at_bag(1),
                Err(EngineError::BudgetExceeded { .. })
            ));
        }

        #[test]
        fn slow_level_delays_then_defers_to_base() {
            let base = QueryGovernor::new().with_deadline(Duration::from_millis(5));
            let gov = FailpointGovernor::with_base(base).slow_level(
                Phase::ReduceUp,
                0,
                Duration::from_millis(20),
            );
            // The injected sleep pushes the base governor past its deadline.
            assert!(matches!(
                gov.at_level(Phase::ReduceUp, 0),
                Err(EngineError::DeadlineExceeded { .. })
            ));
        }

        #[test]
        fn panic_mode_panics_and_is_containable() {
            let gov = FailpointGovernor::new()
                .fail_at_semijoin(0)
                .fail_mode(FailMode::Panic);
            let r = contain_panics(|| gov.at_semijoin().map(|_| ()));
            assert!(matches!(r, Err(EngineError::WorkerPanic(_))));
        }
    }
}
