//! The naive reference engine: the pre-columnar implementation, retained.
//!
//! Before the columnar rewrite, every tuple was an owned attribute→value
//! map and every relation a `BTreeSet` of such tuples; joins and semijoins
//! indexed *cloned projected tuples*.  That implementation lives on here,
//! verbatim in spirit, for two jobs:
//!
//! * **test oracle** — the equivalence property suites check the columnar
//!   kernels tuple-for-tuple against these functions on random databases;
//! * **benchmark baseline** — `hyperq bench` and benchmark B4 time the
//!   reference engine next to the columnar engine, so the speedup the
//!   rewrite bought stays measured instead of remembered.
//!
//! Nothing here is optimized, and nothing here should be: its value is
//! being obviously correct.

use crate::database::Database;
use crate::relation::{Relation, Tuple};
use acyclic::JoinTree;
use hypergraph::{EdgeId, NodeSet};
use std::collections::{BTreeMap, BTreeSet};

/// A relation in the reference representation: an attribute set plus an
/// ordered set of owned tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveRelation {
    /// The attribute set.
    pub attributes: NodeSet,
    /// The tuples, in canonical order.
    pub tuples: BTreeSet<Tuple>,
}

impl NaiveRelation {
    /// An empty reference relation over `attributes`.
    pub fn new(attributes: NodeSet) -> Self {
        Self {
            attributes,
            tuples: BTreeSet::new(),
        }
    }

    /// Decodes a columnar [`Relation`] into the reference representation.
    pub fn from_relation(r: &Relation) -> Self {
        Self {
            attributes: r.attributes().clone(),
            tuples: r.tuples().collect(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True if the columnar relation `r` holds exactly these tuples over the
    /// same attributes — the tuple-for-tuple agreement check used by the
    /// equivalence property suites.
    pub fn agrees_with(&self, r: &Relation) -> bool {
        self.attributes == *r.attributes()
            && self.len() == r.len()
            && r.tuples().all(|t| self.tuples.contains(&t))
    }

    /// Projection with duplicate elimination (naive: clones every tuple).
    pub fn project(&self, attrs: &NodeSet) -> NaiveRelation {
        let kept = self.attributes.intersection(attrs);
        NaiveRelation {
            tuples: self.tuples.iter().map(|t| t.project(&kept)).collect(),
            attributes: kept,
        }
    }

    /// Natural join (naive: index of cloned projected tuples).
    pub fn join(&self, other: &NaiveRelation) -> NaiveRelation {
        let shared = self.attributes.intersection(&other.attributes);
        let mut index: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
        for t in &other.tuples {
            index.entry(t.project(&shared)).or_default().push(t);
        }
        let mut out = NaiveRelation::new(self.attributes.union(&other.attributes));
        for t in &self.tuples {
            if let Some(matches) = index.get(&t.project(&shared)) {
                for m in matches {
                    if let Some(joined) = t.join(m) {
                        out.tuples.insert(joined);
                    }
                }
            }
        }
        out
    }

    /// Semijoin (naive: set of cloned projected key tuples).
    pub fn semijoin(&self, other: &NaiveRelation) -> NaiveRelation {
        let shared = self.attributes.intersection(&other.attributes);
        let keys: BTreeSet<Tuple> = other.tuples.iter().map(|t| t.project(&shared)).collect();
        NaiveRelation {
            attributes: self.attributes.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| keys.contains(&t.project(&shared)))
                .cloned()
                .collect(),
        }
    }
}

/// The reference Yannakakis full reducer: the same two semijoin passes as
/// [`full_reduce`](crate::full_reduce), run on reference relations.
/// Returns the reduced relations and the tuples removed from each.
pub fn naive_full_reduce(db: &Database, tree: &JoinTree) -> (Vec<NaiveRelation>, Vec<usize>) {
    let mut relations: Vec<NaiveRelation> = db
        .relations()
        .iter()
        .map(NaiveRelation::from_relation)
        .collect();
    let before: Vec<usize> = relations.iter().map(NaiveRelation::len).collect();
    let order = tree.bottom_up_order();
    for &child in &order {
        if let Some(parent) = tree.parent(child) {
            relations[parent.index()] =
                relations[parent.index()].semijoin(&relations[child.index()]);
        }
    }
    for &child in order.iter().rev() {
        if let Some(parent) = tree.parent(child) {
            relations[child.index()] =
                relations[child.index()].semijoin(&relations[parent.index()]);
        }
    }
    let removed = relations
        .iter()
        .zip(before)
        .map(|(r, b)| b - r.len())
        .collect();
    (relations, removed)
}

/// The reference Yannakakis join: the same full-reduce + bottom-up join +
/// projection pipeline as [`yannakakis_join`](crate::yannakakis_join), run
/// on reference relations — the pre-rewrite B4 hot path, preserved as the
/// benchmark's "before" engine.
pub fn naive_yannakakis_join(db: &Database, tree: &JoinTree, output: &NodeSet) -> NaiveRelation {
    let (relations, _) = naive_full_reduce(db, tree);

    let keep_for = |e: EdgeId| -> NodeSet {
        let own = db.schema().edges()[e.index()].nodes.clone();
        let mut keep = own.intersection(output);
        if let Some(p) = tree.parent(e) {
            keep.union_with(&own.intersection(&db.schema().edges()[p.index()].nodes));
        }
        keep
    };

    let mut partial: Vec<Option<NaiveRelation>> = vec![None; relations.len()];
    for e in tree.bottom_up_order() {
        let mut acc = relations[e.index()].clone();
        for c in tree.children(e) {
            let child = partial[c.index()].take().expect("children processed first");
            acc = acc.join(&child);
        }
        let mut keep = keep_for(e);
        keep.union_with(&acc.attributes.intersection(output));
        acc = acc.project(&keep);
        partial[e.index()] = Some(acc);
    }
    partial[tree.root().index()]
        .take()
        .expect("root processed last")
        .project(output)
}

/// The reference full join of every relation of `db`.
pub fn naive_full_join(db: &Database) -> NaiveRelation {
    let mut it = db.relations().iter().map(NaiveRelation::from_relation);
    let Some(mut acc) = it.next() else {
        return NaiveRelation::new(NodeSet::new());
    };
    for r in it {
        acc = acc.join(&r);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{EdgeId, Hypergraph};

    fn sample() -> (Database, Relation, Relation) {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 10)]));
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 2), (b, 20)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 10), (c, 5)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 10), (c, 6)]));
        let r = db.relations()[0].clone();
        let s = db.relations()[1].clone();
        (db, r, s)
    }

    #[test]
    fn reference_matches_columnar_on_fixed_case() {
        let (db, r, s) = sample();
        let (nr, ns) = (
            NaiveRelation::from_relation(&r),
            NaiveRelation::from_relation(&s),
        );
        assert!(nr.join(&ns).agrees_with(&r.join(&s)));
        assert!(nr.semijoin(&ns).agrees_with(&r.semijoin(&s)));
        assert!(ns.semijoin(&nr).agrees_with(&s.semijoin(&r)));
        let x = db.attributes(["A", "B"]).unwrap();
        assert!(nr.project(&x).agrees_with(&r.project(&x)));
        assert!(naive_full_join(&db).agrees_with(&db.full_join()));
        assert!(!nr.is_empty());
    }

    #[test]
    fn naive_reducer_counts_match_columnar() {
        let (db, _, _) = sample();
        let tree = acyclic::join_tree(db.schema()).unwrap();
        let (rels, removed) = naive_full_reduce(&db, &tree);
        let fast = crate::full_reduce(&db, &tree);
        assert_eq!(removed, fast.removed);
        for (n, f) in rels.iter().zip(&fast.relations) {
            assert!(n.agrees_with(f));
        }
    }

    #[test]
    fn naive_yannakakis_matches_columnar() {
        let (db, _, _) = sample();
        let tree = acyclic::join_tree(db.schema()).unwrap();
        for attrs in [vec!["A", "C"], vec!["A", "B", "C"], vec!["B"]] {
            let x = db.attributes(attrs.iter().copied()).unwrap();
            let slow = naive_yannakakis_join(&db, &tree, &x);
            let fast = crate::yannakakis_join(&db, &tree, &x);
            assert!(slow.agrees_with(&fast), "mismatch for {attrs:?}");
        }
    }
}
