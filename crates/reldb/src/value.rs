//! Attribute values.

use std::fmt;

/// A value stored in a relation.
///
/// The paper's universal-relation model is agnostic to domains; integers and
/// strings cover every workload the generators and examples use.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
        assert_eq!(Value::str("z"), Value::Str("z".into()));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("ab").to_string(), "ab");
    }
}
