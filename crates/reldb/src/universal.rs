//! Universal-relation query answering via canonical connections (paper §7).
//!
//! In the universal-relation model a query names a set of attributes `X`;
//! the system decides which objects (relations) to join on the user's
//! behalf.  The paper's proposal: join exactly the objects in the
//! *canonical connection* `CC(X)` and project onto `X`.  Theorem 6.1 is the
//! statement that this is well defined — the connection is unique — exactly
//! when the schema hypergraph is acyclic.
//!
//! Three query paths are provided and compared by tests and benchmark B4:
//!
//! * [`query_via_connection`] — join the objects of `CC(X)` (tableau
//!   reduction picks them), project onto `X`;
//! * [`query_yannakakis`] — same object selection, but evaluated with a
//!   full reducer and join-tree join (the production path);
//! * [`query_via_full_join`] — join *every* object, project onto `X`
//!   (the naive baseline).

use crate::database::Database;
use crate::exec::ExecPolicy;
use crate::govern::{contain_panics, EngineError, Governor};
use crate::hypertree::{
    yannakakis_join_any, yannakakis_join_any_governed, yannakakis_join_any_metered,
    yannakakis_join_any_traced,
};
use crate::metrics::{MetricsSink, NoopMetrics};
use crate::relation::Relation;
use crate::trace::{with_span, SpanKind, TraceSink};
use crate::yannakakis::naive_join_project;
use acyclic::canonical_connection;
use hypergraph::{Hypergraph, NodeSet};

/// The objects (schema edges, by label) chosen by the canonical connection
/// of `x`, together with the connection itself.
#[derive(Debug, Clone)]
pub struct ConnectionPlan {
    /// The canonical connection `CC(X)` as a hypergraph of partial edges.
    pub connection: Hypergraph,
    /// Indices (into the schema's edge list) of the objects to join.
    pub objects: Vec<usize>,
}

/// Plans a universal-relation query: computes `CC(X)` and maps its partial
/// edges back to the schema objects that will be joined.
pub fn plan_connection(schema: &Hypergraph, x: &NodeSet) -> ConnectionPlan {
    let connection = canonical_connection(schema, x);
    let mut objects = Vec::new();
    for partial in connection.edges() {
        // Each partial edge descends from an original edge; prefer the edge
        // with the same label, falling back to any edge covering it.
        let idx = schema
            .edges()
            .iter()
            .position(|e| e.label == partial.label && partial.nodes.is_subset(&e.nodes))
            .or_else(|| {
                schema
                    .edges()
                    .iter()
                    .position(|e| partial.nodes.is_subset(&e.nodes))
            })
            .expect("every partial edge of CC(X) is covered by a schema edge");
        if !objects.contains(&idx) {
            objects.push(idx);
        }
    }
    objects.sort_unstable();
    ConnectionPlan {
        connection,
        objects,
    }
}

/// Answers the query `π_X (⋈ of the objects in CC(X))`.
pub fn query_via_connection(db: &Database, x: &NodeSet) -> Relation {
    query_via_connection_metered(db, x, &ExecPolicy::default(), &NoopMetrics)
}

/// The metered form of [`query_via_connection`]: the same plan, with every
/// join executed under `policy` and recorded into `sink`.
pub fn query_via_connection_metered<M: MetricsSink>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
) -> Relation {
    let plan = plan_connection(db.schema(), x);
    let mut acc: Option<Relation> = None;
    for &i in &plan.objects {
        let r = &db.relations()[i];
        acc = Some(match acc {
            None => r.clone(),
            Some(a) => a.join_metered(r, policy, sink),
        });
    }
    match acc {
        Some(a) => a.project(x),
        None => Relation::new("∅", x.clone()),
    }
}

/// The governed form of [`query_via_connection_metered`]: the same
/// canonical-connection plan, with every join checkpointed against the
/// [`Governor`] and its output charged to the governor's memory budget, and
/// any engine panic contained as [`EngineError::WorkerPanic`].
pub fn query_via_connection_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    contain_panics(|| {
        let plan = plan_connection(db.schema(), x);
        let mut acc: Option<Relation> = None;
        for &i in &plan.objects {
            let r = &db.relations()[i];
            acc = Some(match acc {
                None => r.clone(),
                Some(a) => a.join_governed(r, policy, sink, gov)?,
            });
        }
        Ok(match acc {
            Some(a) => a.project(x),
            None => Relation::new("∅", x.clone()),
        })
    })
}

/// The traced form of [`query_via_connection_governed`]: the whole
/// join-then-project plan is bracketed in one [`SpanKind::Join`] wall-clock
/// span (this engine has no reducer phases to break out).
/// [`query_via_connection_governed`] is this function monomorphized over
/// [`NoopTrace`](crate::NoopTrace).
pub fn query_via_connection_traced<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, EngineError> {
    with_span(tracer, SpanKind::Join, || {
        query_via_connection_governed(db, x, policy, sink, gov)
    })
}

/// Answers the query by joining **all** objects (the universal relation) and
/// projecting — the naive baseline.
pub fn query_via_full_join(db: &Database, x: &NodeSet) -> Relation {
    naive_join_project(db, x)
}

/// The metered form of [`query_via_full_join`]: the naive all-objects join,
/// with each binary join recorded into `sink`.
pub fn query_via_full_join_metered<M: MetricsSink>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
) -> Relation {
    db.full_join_metered(policy, sink).project(x)
}

/// The governed form of [`query_via_full_join_metered`]: the naive
/// all-objects join under a [`Governor`], with panics contained.  The
/// checkpoints matter most here — this is the one engine whose intermediate
/// results can explode, which is exactly what a deadline or memory budget
/// is for.
pub fn query_via_full_join_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    contain_panics(|| Ok(db.full_join_governed(policy, sink, gov)?.project(x)))
}

/// The traced form of [`query_via_full_join_governed`]: the naive
/// all-objects join and projection under one [`SpanKind::Join`] wall-clock
/// span.  [`query_via_full_join_governed`] is this function monomorphized
/// over [`NoopTrace`](crate::NoopTrace).
pub fn query_via_full_join_traced<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, EngineError> {
    with_span(tracer, SpanKind::Join, || {
        query_via_full_join_governed(db, x, policy, sink, gov)
    })
}

/// Answers the query with the Yannakakis algorithm: over the schema's join
/// tree when it is acyclic, or through the hypertree-decomposition pipeline
/// ([`yannakakis_join_any`]) when it is cyclic.  Fails only on an edgeless
/// schema.
pub fn query_yannakakis(db: &Database, x: &NodeSet) -> Result<Relation, EngineError> {
    yannakakis_join_any(db, x, &ExecPolicy::default())
}

/// The metered form of [`query_yannakakis`], under an explicit policy:
/// routes through [`yannakakis_join_any_metered`] so acyclic and cyclic
/// schemas alike fill `sink`.
pub fn query_yannakakis_metered<M: MetricsSink>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
) -> Result<Relation, EngineError> {
    yannakakis_join_any_metered(db, x, policy, sink)
}

/// The governed form of [`query_yannakakis_metered`]: the same routed
/// pipeline under a [`Governor`] — cancellation, deadline and budget
/// checkpoints at every level and kernel batch, panic containment, and the
/// cyclic path's budget degradation ladder
/// ([`yannakakis_join_any_governed`]).
pub fn query_yannakakis_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    yannakakis_join_any_governed(db, x, policy, sink, gov)
}

/// The traced form of [`query_yannakakis_governed`]: identical routing and
/// governance, with the pipeline's stage spans — decompose, materialize,
/// reduce-up/down, join — reported into `tracer`
/// ([`yannakakis_join_any_traced`]).  [`query_yannakakis_governed`] is this
/// function monomorphized over [`NoopTrace`](crate::NoopTrace).
pub fn query_yannakakis_traced<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    x: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, EngineError> {
    yannakakis_join_any_traced(db, x, policy, sink, gov, tracer)
}

/// Convenience: answer a query given attribute names.
pub fn query_attributes(db: &Database, names: &[&str]) -> Result<Relation, EngineError> {
    let x = db.attributes(names.iter().copied())?;
    Ok(query_via_connection(db, &x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use hypergraph::EdgeId;

    /// Fig. 1 as a schema with a small *globally consistent* instance: the
    /// relations are the projections of one universal relation that itself
    /// satisfies the join dependency of the schema.
    fn fig1_db() -> Database {
        let h = Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap();
        let seed_rows: Vec<[i64; 6]> = vec![
            // A, B, C, D, E, F
            [1, 1, 1, 1, 1, 1],
            [1, 2, 1, 2, 1, 1],
            [2, 1, 2, 1, 2, 2],
            [2, 2, 2, 2, 2, 1],
            [3, 1, 1, 2, 2, 2],
        ];
        let names = ["A", "B", "C", "D", "E", "F"];
        let mut seed_db = Database::empty(h.clone());
        for (ei, e) in h.edges().iter().enumerate() {
            for row in &seed_rows {
                let t = Tuple::from_pairs(e.nodes.iter().map(|n| {
                    let pos = names
                        .iter()
                        .position(|x| *x == h.universe().name(n))
                        .unwrap();
                    (n, row[pos])
                }));
                seed_db.insert(EdgeId(ei as u32), t);
            }
        }
        // Joining projections and re-projecting is idempotent, so the
        // resulting database is globally consistent by construction.
        let universal = seed_db.full_join();
        let mut db = Database::empty(h.clone());
        for (ei, e) in h.edges().iter().enumerate() {
            for t in universal.project(&e.nodes).tuples() {
                db.insert(EdgeId(ei as u32), t.clone());
            }
        }
        db
    }

    #[test]
    fn plan_for_a_d_joins_cde_and_ace() {
        let db = fig1_db();
        let x = db.attributes(["A", "D"]).unwrap();
        let plan = plan_connection(db.schema(), &x);
        assert_eq!(plan.connection.edge_count(), 2);
        assert_eq!(plan.objects, vec![1, 3]); // CDE and ACE
    }

    #[test]
    fn plan_for_a_c_joins_a_single_object() {
        let db = fig1_db();
        let x = db.attributes(["A", "C"]).unwrap();
        let plan = plan_connection(db.schema(), &x);
        assert_eq!(plan.objects.len(), 1);
    }

    #[test]
    fn connection_query_matches_full_join_on_consistent_instances() {
        let db = fig1_db();
        for names in [
            vec!["A", "D"],
            vec!["A"],
            vec!["B", "F"],
            vec!["C", "E"],
            vec!["A", "B", "C", "D", "E", "F"],
        ] {
            let x = db.attributes(names.iter().copied()).unwrap();
            let via_cc = query_via_connection(&db, &x);
            let naive = query_via_full_join(&db, &x);
            let yann = query_yannakakis(&db, &x).unwrap();
            assert!(
                via_cc.same_contents(&naive),
                "CC-query differs from full join for {names:?}"
            );
            assert!(
                yann.same_contents(&naive),
                "Yannakakis differs from full join for {names:?}"
            );
        }
    }

    #[test]
    fn connection_query_can_differ_on_inconsistent_instances() {
        // If the stored objects are NOT projections of one universal
        // relation, joining fewer objects (the canonical connection) can
        // legitimately return more tuples than joining everything — this is
        // exactly why the choice of connection matters.
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let (a, b, c, d) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
            h.node("D").unwrap(),
        );
        let mut db = Database::empty(h);
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 1)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 1), (c, 1)]));
        // CD is empty: the full join is empty, but a query about {A, B}
        // only joins the AB object.
        let x = db.attributes(["A", "B"]).unwrap();
        let via_cc = query_via_connection(&db, &x);
        let naive = query_via_full_join(&db, &x);
        assert_eq!(via_cc.len(), 1);
        assert!(naive.is_empty());
        let _ = (c, d);
    }

    #[test]
    fn query_attributes_resolves_names() {
        let db = fig1_db();
        let r = query_attributes(&db, &["A", "D"]).unwrap();
        assert_eq!(r.attributes(), &db.attributes(["A", "D"]).unwrap());
        assert!(query_attributes(&db, &["Z"]).is_err());
    }

    #[test]
    fn cyclic_schema_routes_through_decomposition() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        for v in 0..3i64 {
            db.insert(EdgeId(0), Tuple::from_pairs([(a, v), (b, v)]));
            db.insert(EdgeId(1), Tuple::from_pairs([(b, v), (c, v)]));
            // The triangle only closes for v < 2.
            db.insert(EdgeId(2), Tuple::from_pairs([(a, v), (c, v % 2)]));
        }
        for names in [vec!["A"], vec!["A", "C"], vec!["A", "B", "C"]] {
            let x = db.attributes(names.iter().copied()).unwrap();
            let yann = query_yannakakis(&db, &x).expect("cyclic schemas now execute");
            let naive = query_via_full_join(&db, &x);
            assert!(
                yann.same_contents(&naive),
                "decomposed Yannakakis differs from full join for {names:?}"
            );
        }
    }

    #[test]
    fn empty_attribute_set_yields_empty_schema_relation() {
        let db = fig1_db();
        let x = NodeSet::new();
        let r = query_via_connection(&db, &x);
        assert!(r.attributes().is_empty());
    }
}
