//! Cyclic-schema execution: materialize the bags of a hypertree
//! decomposition, then run the ordinary Yannakakis pipeline over the bag
//! tree.
//!
//! A cyclic schema has no join tree, so [`yannakakis_join_with`](crate::yannakakis_join_with) cannot run
//! on it directly.  The remedy is the classic reduction to the acyclic
//! case, with the structural half supplied by the [`decomp`] crate:
//!
//! 1. **decompose** — triangulate the schema's primal graph into maximal-
//!    clique *bags* with a running-intersection tree
//!    ([`decompose()`](decomp::decompose()));
//! 2. **materialize** — each bag becomes one relation: the join of the
//!    original relations in its cover (assigned edges joined whole, extra
//!    overlapping edges joined and projected down), projected onto the bag's
//!    nodes ([`materialize_bags`]).  Bags are independent, so they
//!    materialize in parallel on workers leased from the shared
//!    [`WorkerPool`](crate::exec::WorkerPool) under the caller's
//!    [`ExecPolicy`];
//! 3. **reduce + join** — the bag database is an ordinary acyclic database
//!    over the bag hypergraph, so the existing full reducer and bottom-up
//!    join run on it unchanged.
//!
//! The result is tuple-for-tuple the projection of the full join: every
//! original edge is wholly contained in the bag it is assigned to, so the
//! join of all bag relations equals the join of all original relations
//! (extra cover edges only shrink bags further — they can never add a tuple
//! the original join would not produce, and Yannakakis handles the rest).
//!
//! [`yannakakis_join_any`] is the transparent entry point: acyclic schemas
//! take the direct join-tree path, cyclic schemas the decomposition path.

use crate::database::Database;
use crate::exec::{ExecPolicy, Job, WorkerLease};
use crate::govern::{contain_panics, unfail, EngineError, Governor, NoopGovernor};
use crate::metrics::{MetricsSink, NoopMetrics, Phase};
use crate::relation::Relation;
use crate::trace::{with_span, NoopTrace, SpanKind, TraceSink};
use crate::yannakakis::yannakakis_join_leased;
use acyclic::join_tree;
use decomp::{decompose, Decomposition, Heuristic};
use hypergraph::{Edge, Hypergraph, NodeSet};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Materializes one bag: joins its cover relations (assigned edges first,
/// then the overlapping extras) and projects onto the bag's nodes.
///
/// Extra-cover relations are projected onto their in-bag attributes
/// *before* joining.  This may lose join constraints those extras carried
/// on out-of-bag attributes, making the bag relation a superset of
/// `π_bag(⋈ cover)` on the extra part — which is harmless: a bag relation
/// only needs to (a) contain the bag's projection of the full join
/// (supersets qualify) and (b) enforce its *assigned* edges exactly, and
/// assigned relations always enter the join whole.  The payoff is that an
/// extra edge overlapping the bag in one attribute contributes its few
/// hundred distinct values instead of its full tuple count to the
/// (inherently width-bounded) bag cross product.
fn materialize_one<M: MetricsSink, G: Governor>(
    d: &Decomposition,
    bag: usize,
    relations: &[Relation],
    policy: &ExecPolicy,
    probe: &WorkerLease,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    let bag_edge = &d.bags().edges()[bag];
    join_cover(
        d.cover(bag)
            .map(|e| trim_to_bag(&relations[e.index()], &bag_edge.nodes)),
        &bag_edge.nodes,
        &bag_edge.label,
        policy,
        probe,
        sink,
        gov,
    )
}

/// Trims one cover relation for a bag: relations already inside the bag
/// pass through (borrowed), overlapping extras are projected onto their
/// in-bag attributes (owned).
fn trim_to_bag<'a>(r: &'a Relation, bag_nodes: &NodeSet) -> Cow<'a, Relation> {
    if r.attributes().is_subset(bag_nodes) {
        Cow::Borrowed(r)
    } else {
        Cow::Owned(r.project(bag_nodes))
    }
}

/// Greedily orders a bag's cover relations smallest-estimated-intermediate
/// first: start from the smallest relation, then repeatedly append the
/// relation minimizing the estimated join output against everything joined
/// so far, using the same sampled distinct-key estimator the `Auto`
/// strategy planner runs on.  The estimate is the textbook
/// `|A|·|B| / max(d_B(shared), 1)` with `d_B` the sampled distinct count of
/// the shared columns on the candidate's side; relations sharing no
/// attribute degenerate to the cross-product estimate and naturally sort
/// last.  Joins are commutative under set semantics, so any order is
/// correct — this one just keeps intermediates small.
fn order_cover(cover: &mut [Cow<'_, Relation>]) {
    let n = cover.len();
    if n <= 1 {
        return;
    }
    let first = (0..n).min_by_key(|&i| cover[i].len()).expect("nonempty");
    cover.swap(0, first);
    let mut acc_attrs = cover[0].attributes().clone();
    let mut acc_est = cover[0].len() as f64;
    for k in 1..n - 1 {
        let estimate = |r: &Relation| -> f64 {
            let d = (r.estimate_distinct_ratio_on(&acc_attrs) * r.len() as f64).max(1.0);
            acc_est * r.len() as f64 / d
        };
        let best = (k..n)
            .min_by(|&i, &j| {
                estimate(&cover[i])
                    .partial_cmp(&estimate(&cover[j]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty tail");
        cover.swap(k, best);
        acc_est = estimate(&cover[k]).max(1.0);
        acc_attrs.union_with(cover[k].attributes());
    }
}

/// The single bag-join fold both materialization paths run: joins the
/// (already trimmed) cover relations — reordered smallest estimated
/// intermediate first by [`order_cover`] — and projects onto the bag's
/// nodes.  Large probe sides shard over `probe`'s workers at morsel
/// granularity ([`Relation::join_sharded_governed`]); single-bag
/// materializations pass the whole lease here so one wide bag still uses
/// every worker.
fn join_cover<'a, M: MetricsSink, G: Governor>(
    cover: impl IntoIterator<Item = Cow<'a, Relation>>,
    bag_nodes: &NodeSet,
    name: &str,
    policy: &ExecPolicy,
    probe: &WorkerLease,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    let mut cover: Vec<Cow<'a, Relation>> = cover.into_iter().collect();
    order_cover(&mut cover);
    let mut acc: Option<Relation> = None;
    for r in cover {
        acc = Some(match acc {
            None => r.into_owned(),
            Some(a) => a.join_sharded_governed(&r, policy, probe, sink, gov)?,
        });
    }
    let Some(joined) = acc else {
        return Err(EngineError::SchemaMismatch(format!(
            "bag {name} has an empty cover"
        )));
    };
    let rel = joined.project(bag_nodes).with_name(name.to_owned());
    // The bag relation outlives materialization as a stored relation of the
    // bag database, so charge it against the budget even when the cover was
    // a single relation and no join kernel ran.
    if G::ENABLED {
        gov.approve_alloc(rel.len() as u64, rel.attributes().len())?;
    }
    Ok(rel)
}

/// Materializes every bag of `d` against `db`, producing a database over
/// the bag hypergraph.
///
/// Bags only read the original relations and write their own slot, so with
/// a parallel [`ExecPolicy`] the bag joins fan out across leased
/// [`WorkerPool`](crate::exec::WorkerPool) workers (subject to the policy's
/// sequential-fallback tuple threshold).  Bigger bags are dispatched first
/// so a single wide bag does not serialize the tail of the batch.
pub fn materialize_bags(db: &Database, d: &Decomposition, policy: &ExecPolicy) -> Database {
    materialize_bags_metered(db, d, policy, &NoopMetrics)
}

/// The metered form of [`materialize_bags`]: records each bag's
/// materialized size, the per-bag join ops and one
/// [`Phase::Materialize`] wall timing into `sink`.  [`materialize_bags`] is
/// this function monomorphized over [`NoopMetrics`].
pub fn materialize_bags_metered<M: MetricsSink>(
    db: &Database,
    d: &Decomposition,
    policy: &ExecPolicy,
    sink: &M,
) -> Database {
    unfail(materialize_bags_governed(
        db,
        d,
        policy,
        sink,
        &NoopGovernor,
    ))
}

/// The governed form of [`materialize_bags_metered`]: consults the
/// [`Governor`] once per bag (on the dispatching thread, so an armed
/// failpoint or tripped deadline aborts before any worker runs) and charges
/// every materialized bag relation — plus the join kernels' intermediate
/// output batches — against its memory budget.  An abort surfaces as
/// `Err(EngineError)` and leaves `db` untouched: materialization only reads
/// the original relations.  [`materialize_bags_metered`] is this function
/// monomorphized over [`NoopGovernor`].
pub fn materialize_bags_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    d: &Decomposition,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Database, EngineError> {
    let lease = policy.lease(db.tuple_count());
    if M::ENABLED {
        sink.record_lease(lease.threads(), crate::exec::WorkerPool::idle_workers());
    }
    materialize_bags_leased(db, d, policy, &lease, sink, gov, &NoopTrace)
}

/// The materialization body, on an already-acquired lease — shared by
/// [`materialize_bags_governed`] and [`yannakakis_join_decomposed_governed`]
/// so the cyclic pipeline leases its workers exactly once for all phases.
/// The whole bag pass is bracketed in one [`SpanKind::Materialize`] trace
/// span; [`NoopTrace`] compiles the bracket away.
#[allow(clippy::too_many_arguments)]
fn materialize_bags_leased<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    d: &Decomposition,
    policy: &ExecPolicy,
    lease: &WorkerLease,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Database, EngineError> {
    with_span(tracer, SpanKind::Materialize, || {
        materialize_bags_body(db, d, policy, lease, sink, gov)
    })
}

/// The span-free materialization body behind [`materialize_bags_leased`].
fn materialize_bags_body<M: MetricsSink, G: Governor>(
    db: &Database,
    d: &Decomposition,
    policy: &ExecPolicy,
    lease: &WorkerLease,
    sink: &M,
    gov: &G,
) -> Result<Database, EngineError> {
    let nbags = d.bag_count();
    let t0 = M::ENABLED.then(Instant::now);
    let relations: Vec<Relation> = if lease.threads() <= 1 || nbags <= 1 {
        // One bag (or one worker): instead of bag-level fan-out, the whole
        // lease shards the bag's join probe loops at morsel granularity.
        let mut rels = Vec::with_capacity(nbags);
        for b in 0..nbags {
            if G::ENABLED {
                gov.at_bag(b)?;
            }
            rels.push(materialize_one(
                d,
                b,
                db.relations(),
                policy,
                lease,
                sink,
                gov,
            )?);
        }
        rels
    } else {
        // Estimated cost of a bag: total tuples of its cover relations.
        // Dispatching big bags first keeps the round-robin balanced.
        let mut order: Vec<usize> = (0..nbags).collect();
        let cost = |b: usize| -> usize {
            d.cover(b)
                .map(|e| db.relations()[e.index()].len())
                .sum::<usize>()
        };
        order.sort_by_key(|&b| std::cmp::Reverse(cost(b)));
        // Per-bag checkpoints fire on the dispatching thread, before any
        // cover relation is cloned into a job: an armed failpoint or an
        // already-tripped deadline aborts with zero worker-side work.
        if G::ENABLED {
            for b in 0..nbags {
                gov.at_bag(b)?;
            }
        }
        // Each job owns exactly its bag's cover: assigned relations are
        // cloned (every original edge is assigned to one bag, so the whole
        // database is copied at most once in total) and extras are
        // projected down to their in-bag attributes here on the caller —
        // usually a small fraction of the relation they come from.
        let (tx, rx) = channel();
        let jobs: Vec<Job> = order
            .into_iter()
            .map(|b| {
                let bag_edge = &d.bags().edges()[b];
                let cover: Vec<Relation> = d
                    .cover(b)
                    .map(|e| trim_to_bag(&db.relations()[e.index()], &bag_edge.nodes).into_owned())
                    .collect();
                let bag_nodes = bag_edge.nodes.clone();
                let name = bag_edge.label.clone();
                let policy = policy.clone();
                let tx = tx.clone();
                let sink = sink.clone();
                let gov = gov.clone();
                Box::new(move || {
                    let rel = join_cover(
                        cover.into_iter().map(Cow::Owned),
                        &bag_nodes,
                        &name,
                        &policy,
                        &WorkerLease::inline(),
                        &sink,
                        &gov,
                    );
                    let _ = tx.send((b, rel));
                }) as Job
            })
            .collect();
        drop(tx);
        lease.run(jobs);
        let mut out: Vec<Option<Relation>> = vec![None; nbags];
        let mut first_err = None;
        for (b, r) in rx.try_iter() {
            match r {
                Ok(rel) => out[b] = Some(rel),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        out.into_iter()
            .map(|r| {
                r.ok_or_else(|| {
                    EngineError::WorkerPanic("bag job died before reporting a result".to_owned())
                })
            })
            .collect::<Result<Vec<Relation>, EngineError>>()?
    };
    if M::ENABLED {
        for r in &relations {
            sink.record_bag(r.name(), r.len() as u64);
        }
        if let Some(t0) = t0 {
            sink.record_level(Phase::Materialize, 0, nbags, t0.elapsed().as_nanos() as u64);
        }
    }
    Database::new(d.bags().clone(), relations).map_err(EngineError::from)
}

/// Runs the full cyclic pipeline over an already-computed decomposition:
/// materialize the bags, then full-reduce and join bottom-up along the bag
/// tree, projecting onto `output`.
pub fn yannakakis_join_decomposed(
    db: &Database,
    d: &Decomposition,
    output: &NodeSet,
    policy: &ExecPolicy,
) -> Relation {
    yannakakis_join_decomposed_metered(db, d, output, policy, &NoopMetrics)
}

/// The metered form of [`yannakakis_join_decomposed`]: bag sizes and
/// materialization timing from [`materialize_bags_metered`], then the full
/// metered acyclic pipeline over the bag tree.
pub fn yannakakis_join_decomposed_metered<M: MetricsSink>(
    db: &Database,
    d: &Decomposition,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
) -> Relation {
    unfail(yannakakis_join_decomposed_governed(
        db,
        d,
        output,
        policy,
        sink,
        &NoopGovernor,
    ))
}

/// The governed form of [`yannakakis_join_decomposed_metered`]: the same
/// materialize-then-Yannakakis pipeline over an explicit decomposition,
/// with the [`Governor`]'s checkpoints and budget charges active in both
/// phases.  An abort surfaces as `Err(EngineError)` and leaves `db`
/// untouched.
pub fn yannakakis_join_decomposed_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    d: &Decomposition,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    yannakakis_join_decomposed_traced(db, d, output, policy, sink, gov, &NoopTrace)
}

/// The traced form of [`yannakakis_join_decomposed_governed`]: identical
/// pipeline, with [`SpanKind::Materialize`] and the reducer/join spans
/// reported into `tracer`.  [`yannakakis_join_decomposed_governed`] is this
/// function monomorphized over [`NoopTrace`].
#[allow(clippy::too_many_arguments)]
fn yannakakis_join_decomposed_traced<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    d: &Decomposition,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, EngineError> {
    // One lease serves bag materialization, the reducer passes and the join
    // levels alike: sized on the input database, which bounds every bag.
    let lease = policy.lease(db.tuple_count());
    if M::ENABLED {
        sink.record_lease(lease.threads(), crate::exec::WorkerPool::idle_workers());
    }
    let bag_db = materialize_bags_leased(db, d, policy, &lease, sink, gov, tracer)?;
    yannakakis_join_leased(&bag_db, d.tree(), output, policy, &lease, sink, gov, tracer)
}

/// Both heuristics' decompositions of one schema, in preference order, plus
/// the width evidence a metered cache hit replays into its sink.
struct DecompPair {
    /// The smaller-width decomposition (ties go to min-fill).
    chosen: Decomposition,
    /// The runner-up, kept for the budget degradation ladder.
    other: Decomposition,
    /// Width of the min-fill decomposition.
    fill_width: usize,
    /// Width of the min-degree decomposition.
    degree_width: usize,
    /// Which heuristic won (`"min-fill"` or `"min-degree"`).
    chosen_label: &'static str,
}

/// The structural identity of a schema for decomposition caching: its node
/// names in id order plus its labeled edge set.  Two hypergraphs with equal
/// keys decompose identically — bags, labels and tree are all functions of
/// exactly this data — so the cache can never serve a decomposition that
/// `verify` would reject for the queried schema.
type SchemaKey = (Vec<String>, Vec<Edge>);

fn schema_key(schema: &Hypergraph) -> SchemaKey {
    let names = schema
        .nodes()
        .iter()
        .map(|n| schema.universe().name(n).to_owned())
        .collect();
    (names, schema.edges().to_vec())
}

/// Process-wide decomposition cache behind [`decompose_pair`].  Schemas are
/// immutable once built and decomposition is pure graph work, so entries
/// never invalidate; the map is bounded — a full cache is cleared rather
/// than grown, which keeps the common server shape (a handful of hot
/// schemas queried repeatedly) permanently cached.
static DECOMP_CACHE: OnceLock<Mutex<HashMap<SchemaKey, Arc<DecompPair>>>> = OnceLock::new();

/// Entry cap for [`DECOMP_CACHE`].
const DECOMP_CACHE_CAP: usize = 64;

fn decomp_cache() -> &'static Mutex<HashMap<SchemaKey, Arc<DecompPair>>> {
    DECOMP_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Decomposes a cyclic schema with **both** elimination-order heuristics
/// (min-fill and min-degree) and returns the pair with the smaller-width
/// result as `chosen` — the heuristics genuinely disagree on some schemas,
/// and width bounds the bag cross products, so a cheap second decomposition
/// run (pure graph work, no data) regularly saves real join work.  Ties go
/// to min-fill, the historical default.  Both widths are recorded into
/// `sink`; the runner-up is kept because the budget degradation ladder may
/// still prefer it (smaller *estimated rows* can beat smaller width on
/// skewed covers).
///
/// Results are cached process-wide keyed by the schema's structural
/// identity ([`SchemaKey`]): schemas are immutable, so a repeated query
/// against the same schema — the server shape — skips both elimination
/// runs entirely.  Hits and misses are recorded into `sink`
/// ([`MetricsSink::record_decomp_cache`]); a hit replays the cached width
/// report so metered output is identical either way.
fn decompose_pair<M: MetricsSink>(
    schema: &Hypergraph,
    sink: &M,
) -> Result<Arc<DecompPair>, EngineError> {
    let key = schema_key(schema);
    let cached = decomp_cache()
        .lock()
        .expect("decomp cache lock")
        .get(&key)
        .cloned();
    if let Some(pair) = cached {
        if M::ENABLED {
            sink.record_decomp_cache(true);
            sink.record_widths(pair.fill_width, pair.degree_width, pair.chosen_label);
        }
        return Ok(pair);
    }
    let cannot = |e: decomp::DecompError| -> EngineError {
        EngineError::SchemaMismatch(format!("cannot decompose schema: {e}"))
    };
    // Decompose outside the lock: a concurrent miss on the same schema
    // duplicates pure graph work at worst, and never blocks other schemas.
    let fill = decompose(schema, Heuristic::MinFill).map_err(cannot)?;
    let degree = decompose(schema, Heuristic::MinDegree).map_err(cannot)?;
    let (fill_width, degree_width) = (fill.width(), degree.width());
    let pair = Arc::new(if degree_width < fill_width {
        DecompPair {
            chosen: degree,
            other: fill,
            fill_width,
            degree_width,
            chosen_label: "min-degree",
        }
    } else {
        DecompPair {
            chosen: fill,
            other: degree,
            fill_width,
            degree_width,
            chosen_label: "min-fill",
        }
    });
    if M::ENABLED {
        sink.record_decomp_cache(false);
        sink.record_widths(fill_width, degree_width, pair.chosen_label);
    }
    let mut cache = decomp_cache().lock().expect("decomp cache lock");
    if cache.len() >= DECOMP_CACHE_CAP {
        cache.clear();
    }
    cache.insert(key, Arc::clone(&pair));
    Ok(pair)
}

/// Pessimistic cost of the widest bag of `d` against `db`: the product of
/// its cover relations' cardinalities (the cross-product worst case —
/// joins only shrink it) and that bag's attribute count.  This is what the
/// budget degradation ladder compares against the governor's memory limit
/// *before* materializing anything.
fn worst_bag_estimate(db: &Database, d: &Decomposition) -> (u64, usize) {
    let mut worst = (0u64, 0usize);
    for b in 0..d.bag_count() {
        let width = d.bags().edges()[b].nodes.len();
        let rows: u64 = d
            .cover(b)
            .map(|e| db.relations()[e.index()].len() as u64)
            .fold(1u64, u64::saturating_mul);
        if rows.saturating_mul(width as u64) > worst.0.saturating_mul(worst.1 as u64) {
            worst = (rows, width);
        }
    }
    worst
}

/// Computes the projection of the full join onto `output` for **any**
/// schema: acyclic schemas route to the direct join-tree pipeline
/// ([`yannakakis_join_with`](crate::yannakakis_join_with)), cyclic schemas through
/// decompose → materialize → reduce → join.  Fails only when the schema has
/// no edges at all.
///
/// # Examples
///
/// ```
/// use hypergraph::{EdgeId, Hypergraph};
/// use reldb::{yannakakis_join_any, Database, ExecPolicy, Tuple};
///
/// // A triangle: cyclic, so no join tree exists — the decomposition path
/// // still answers the query.
/// let schema =
///     Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
/// let (a, b, c) = (
///     schema.node("A").unwrap(),
///     schema.node("B").unwrap(),
///     schema.node("C").unwrap(),
/// );
/// let mut db = Database::empty(schema);
/// db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
/// db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 3)]));
/// db.insert(EdgeId(2), Tuple::from_pairs([(a, 1), (c, 3)]));
/// db.insert(EdgeId(2), Tuple::from_pairs([(a, 9), (c, 9)])); // dangling
///
/// let out = db.attributes(["A", "C"]).unwrap();
/// let answer = yannakakis_join_any(&db, &out, &ExecPolicy::default()).unwrap();
/// assert_eq!(answer.len(), 1);
/// ```
pub fn yannakakis_join_any(
    db: &Database,
    output: &NodeSet,
    policy: &ExecPolicy,
) -> Result<Relation, EngineError> {
    yannakakis_join_any_metered(db, output, policy, &NoopMetrics)
}

/// The metered form of [`yannakakis_join_any`]: the same transparent
/// routing, with every layer underneath recording into `sink` — and, on the
/// cyclic path, both decomposition heuristics' widths (the engine runs
/// min-fill *and* min-degree and keeps the smaller width).
/// [`yannakakis_join_any`] is this function monomorphized over
/// [`NoopMetrics`].
pub fn yannakakis_join_any_metered<M: MetricsSink>(
    db: &Database,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
) -> Result<Relation, EngineError> {
    yannakakis_join_any_governed(db, output, policy, sink, &NoopGovernor)
}

/// The governed form of [`yannakakis_join_any_metered`]: transparent
/// acyclic/cyclic routing under a [`Governor`], with panic containment and
/// the memory-budget **degradation ladder** on the cyclic path.
///
/// Before materializing anything, the widest bag's pessimistic cost (cover
/// cardinality product × bag width) is tested against the governor's
/// budget:
///
/// 1. the smaller-width decomposition runs if its estimate fits;
/// 2. otherwise the *other* elimination heuristic's tree is tried — the
///    heuristics disagree on some schemas, and the runner-up by width can
///    still have the smaller worst bag;
/// 3. otherwise the smaller-*estimate* tree runs **sequentially** (one bag
///    materialized at a time, no parallel cover copies in flight), letting
///    the kernels' actual allocation charges decide;
/// 4. only when those charges genuinely exceed the limit does the query
///    abort with [`EngineError::BudgetExceeded`].
///
/// Every panic escaping the engine below this point — worker jobs
/// included, whose payloads [`WorkerLease::run`](crate::exec::WorkerLease::run)
/// re-raises on the caller thread — is contained and surfaced as
/// [`EngineError::WorkerPanic`], so this entry point never unwinds.  An
/// aborted query leaves `db` untouched.
pub fn yannakakis_join_any_governed<M: MetricsSink, G: Governor>(
    db: &Database,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
) -> Result<Relation, EngineError> {
    yannakakis_join_any_traced(db, output, policy, sink, gov, &NoopTrace)
}

/// The traced form of [`yannakakis_join_any_governed`]: the same routing,
/// ladder and panic containment, with the pipeline stages reported into
/// `tracer` as wall-clock spans — [`SpanKind::Decompose`] around the
/// heuristic pair (cache hits included), then [`SpanKind::Materialize`],
/// [`SpanKind::ReduceUp`] / [`SpanKind::ReduceDown`] and [`SpanKind::Join`]
/// from the pipeline underneath.  [`yannakakis_join_any_governed`] is this
/// function monomorphized over [`NoopTrace`], which compiles every span —
/// and its clock reads — away.
pub fn yannakakis_join_any_traced<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    output: &NodeSet,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, EngineError> {
    contain_panics(|| match join_tree(db.schema()) {
        Some(tree) => {
            // Acyclic: one lease serves the reducer passes and join levels.
            let lease = policy.lease(db.tuple_count());
            if M::ENABLED {
                sink.record_lease(lease.threads(), crate::exec::WorkerPool::idle_workers());
            }
            yannakakis_join_leased(db, &tree, output, policy, &lease, sink, gov, tracer)
        }
        None => {
            let pair = with_span(tracer, SpanKind::Decompose, || {
                decompose_pair(db.schema(), sink)
            })?;
            let (chosen, other) = (&pair.chosen, &pair.other);
            if G::ENABLED {
                let (rows, width) = worst_bag_estimate(db, chosen);
                if gov.alloc_would_exceed(rows, width) {
                    let (orows, owidth) = worst_bag_estimate(db, other);
                    if !gov.alloc_would_exceed(orows, owidth) {
                        // Rung 2: the runner-up heuristic's worst bag fits.
                        return yannakakis_join_decomposed_traced(
                            db, other, output, policy, sink, gov, tracer,
                        );
                    }
                    // Rung 3: both estimates blow the budget — stream the
                    // smaller-estimate tree one bag at a time and let the
                    // actual charges decide (the estimate is a cross-product
                    // worst case; real bags are usually far smaller).
                    let streaming = ExecPolicy {
                        threads: 1,
                        ..policy.clone()
                    };
                    let smaller = if orows.saturating_mul(owidth as u64)
                        < rows.saturating_mul(width as u64)
                    {
                        other
                    } else {
                        chosen
                    };
                    return yannakakis_join_decomposed_traced(
                        db, smaller, output, &streaming, sink, gov, tracer,
                    );
                }
            }
            yannakakis_join_decomposed_traced(db, chosen, output, policy, sink, gov, tracer)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::JoinStrategy;
    use crate::relation::Tuple;
    use crate::yannakakis::naive_join_project;
    use hypergraph::{EdgeId, Hypergraph};

    /// A 4-ring of binary edges with data whose cycle closes for some
    /// values only (and contains dangling tuples).
    fn ring4_db() -> Database {
        let h = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["B", "C"],
            vec!["C", "D"],
            vec!["D", "A"],
        ])
        .unwrap();
        let ids: Vec<_> = ["A", "B", "C", "D"]
            .iter()
            .map(|n| h.node(n).unwrap())
            .collect();
        let mut db = Database::empty(h);
        for (ei, (x, y)) in [(0, 1), (1, 2), (2, 3), (3, 0)].into_iter().enumerate() {
            for v in 0..4i64 {
                // Edge i relates v to v for v < 3; the cycle closes there.
                let w = if v < 3 { v } else { v + ei as i64 };
                db.insert(
                    EdgeId(ei as u32),
                    Tuple::from_pairs([(ids[x], v), (ids[y], w)]),
                );
            }
        }
        db
    }

    #[test]
    fn cyclic_ring_matches_naive_join() {
        let db = ring4_db();
        let all = db.schema().nodes();
        let naive = naive_join_project(&db, &all);
        assert!(!naive.is_empty(), "the instance must close the cycle");
        let fast = yannakakis_join_any(&db, &all, &ExecPolicy::default()).unwrap();
        assert!(fast.same_contents(&naive), "decomposed pipeline diverged");
        // Projections agree too.
        for attrs in [vec!["A"], vec!["A", "C"], vec!["B", "D"]] {
            let out = db.attributes(attrs.iter().copied()).unwrap();
            let fast = yannakakis_join_any(&db, &out, &ExecPolicy::default()).unwrap();
            assert!(
                fast.same_contents(&naive_join_project(&db, &out)),
                "projection {attrs:?} diverged"
            );
        }
    }

    #[test]
    fn policies_agree_on_the_cyclic_path() {
        let db = ring4_db();
        let all = db.schema().nodes();
        let want =
            yannakakis_join_any(&db, &all, &ExecPolicy::sequential(JoinStrategy::Hash)).unwrap();
        for policy in [
            ExecPolicy::sequential(JoinStrategy::SortMerge),
            ExecPolicy::sequential(JoinStrategy::Auto),
            ExecPolicy::parallel(JoinStrategy::Hash, 3),
            ExecPolicy {
                reuse_pool: false,
                ..ExecPolicy::parallel(JoinStrategy::Auto, 2)
            },
        ] {
            let got = yannakakis_join_any(&db, &all, &policy).unwrap();
            assert!(got.same_contents(&want), "diverged under {policy:?}");
        }
    }

    #[test]
    fn acyclic_schemas_take_the_direct_path() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 3)]));
        let out = db.attributes(["A", "C"]).unwrap();
        let got = yannakakis_join_any(&db, &out, &ExecPolicy::default()).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got.same_contents(&naive_join_project(&db, &out)));
    }

    #[test]
    fn bag_database_matches_the_bag_schema() {
        let db = ring4_db();
        let d = decompose(db.schema(), Heuristic::MinFill).unwrap();
        assert!(d.verify(db.schema()));
        for policy in [
            ExecPolicy::sequential(JoinStrategy::Hash),
            ExecPolicy::parallel(JoinStrategy::Hash, 3),
        ] {
            let bag_db = materialize_bags(&db, &d, &policy);
            assert_eq!(bag_db.relations().len(), d.bag_count());
            for (bag, rel) in d.bags().edges().iter().zip(bag_db.relations()) {
                assert_eq!(rel.attributes(), &bag.nodes);
                assert_eq!(rel.name(), bag.label);
            }
            // The bag join equals the original full join.
            let all = db.schema().nodes();
            assert!(bag_db
                .full_join()
                .project(&all)
                .same_contents(&db.full_join().project(&all)));
        }
    }

    #[test]
    fn empty_cyclic_relations_propagate() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        let db = Database::empty(h);
        let out = db.schema().nodes();
        let got = yannakakis_join_any(&db, &out, &ExecPolicy::default()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn min_degree_heuristic_agrees() {
        let db = ring4_db();
        let d = decompose(db.schema(), Heuristic::MinDegree).unwrap();
        let all = db.schema().nodes();
        let got = yannakakis_join_decomposed(&db, &d, &all, &ExecPolicy::default());
        assert!(got.same_contents(&naive_join_project(&db, &all)));
    }
}
