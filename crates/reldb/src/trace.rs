//! Zero-cost-when-off trace spans: hierarchical wall-clock timings for the
//! stages of a query pipeline.
//!
//! This is the third leg of the engine's instrumentation tripod, built on
//! the same monomorphization pattern as [`MetricsSink`](crate::MetricsSink)
//! and [`Governor`](crate::Governor): every traced pipeline is generic over
//! a [`TraceSink`] whose `const ENABLED` flag gates each hook behind an
//! `if T::ENABLED` the compiler resolves at monomorphization time.  The
//! ungoverned, unmetered, untraced production path is bit-identical to code
//! with no hooks at all — [`NoopTrace`] is a zero-sized type and its hooks
//! are empty `#[inline]` bodies.
//!
//! Where metrics answer "how much work" (tuples probed, kernels picked) and
//! governance answers "may I continue", spans answer "where did the wall
//! clock go": a [`CollectingTracer`] assembles the enter/exit hook stream
//! into a tree of [`Span`]s — decompose under the cyclic router,
//! materialize under decompose's sibling, reduce-up/reduce-down under the
//! reducer, join under the pipeline — each with its wall-clock duration.
//! `hyperqd` wraps the engine spans with its own parse and serialize spans
//! and stamps the whole tree with a per-query trace id for the slow-query
//! log.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pipeline stage a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Request-frame parsing (server-side).
    Parse,
    /// Data/schema load (server-side; databases usually load at startup).
    Load,
    /// Hypertree decomposition of a cyclic schema (cache hits included).
    Decompose,
    /// Bag materialization over a decomposition.
    Materialize,
    /// The reducer's upward semijoin pass.
    ReduceUp,
    /// The reducer's downward semijoin pass.
    ReduceDown,
    /// The bottom-up join over the tree levels.
    Join,
    /// Answer-frame serialization (server-side).
    Serialize,
}

impl SpanKind {
    /// The canonical wire name of this span kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Parse => "parse",
            SpanKind::Load => "load",
            SpanKind::Decompose => "decompose",
            SpanKind::Materialize => "materialize",
            SpanKind::ReduceUp => "reduce-up",
            SpanKind::ReduceDown => "reduce-down",
            SpanKind::Join => "join",
            SpanKind::Serialize => "serialize",
        }
    }
}

/// A sink for hierarchical span events, threaded through the traced
/// pipelines exactly as [`MetricsSink`](crate::MetricsSink) is.
///
/// `Clone + Send + Sync` for the same reason as the metrics sink: worker
/// jobs capture a clone.  Span hooks only fire on the dispatching thread
/// (stages, not kernels), so a collecting implementation needs interior
/// mutability but no per-event contention.
pub trait TraceSink: Clone + Send + Sync {
    /// Whether this sink records anything.  `false` compiles every hook —
    /// and the `Instant::now()` reads around it — out of the pipelines.
    const ENABLED: bool;

    /// A span of `kind` has started; it becomes the parent of any span
    /// entered before its matching [`exit`](TraceSink::exit).
    #[inline]
    fn enter(&self, _kind: SpanKind) {}

    /// The innermost open span (of `kind`) has finished after `nanos`.
    #[inline]
    fn exit(&self, _kind: SpanKind, _nanos: u64) {}
}

/// The disabled trace sink: zero-sized, all hooks empty.  Pipelines
/// monomorphized over it are the production code paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTrace;

impl TraceSink for NoopTrace {
    const ENABLED: bool = false;
}

/// Runs `f` inside a span of `kind`: a no-op wrapper (no clock reads) when
/// `T::ENABLED` is false.
#[inline]
pub fn with_span<T: TraceSink, R>(tracer: &T, kind: SpanKind, f: impl FnOnce() -> R) -> R {
    if !T::ENABLED {
        return f();
    }
    tracer.enter(kind);
    let t0 = Instant::now();
    let out = f();
    tracer.exit(kind, t0.elapsed().as_nanos() as u64);
    out
}

/// One completed span in a [`TraceReport`]: a pipeline stage, its
/// wall-clock duration, and its child spans in completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The stage this span covers.
    pub kind: SpanKind,
    /// Wall-clock duration, in nanoseconds.
    pub nanos: u64,
    /// Spans entered (and exited) while this one was open.
    pub children: Vec<Span>,
}

impl Span {
    fn to_json(&self, out: &mut String) {
        out.push_str("{\"span\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"us\":");
        out.push_str(&(self.nanos / 1_000).to_string());
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.to_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }
}

/// A finished span tree, as taken from a [`CollectingTracer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Top-level spans, in completion order.
    pub roots: Vec<Span>,
}

impl TraceReport {
    /// Renders the span forest as a canonical JSON array (span names from
    /// [`SpanKind::as_str`], durations in integer microseconds), e.g.
    /// `[{"span":"join","us":184,"children":[…]}]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.to_json(&mut out);
        }
        out.push(']');
        out
    }

    /// Total nanoseconds across the top-level spans.
    pub fn total_nanos(&self) -> u64 {
        self.roots.iter().map(|s| s.nanos).sum()
    }
}

/// One in-flight or finished node while the tracer assembles the tree.
#[derive(Debug)]
struct OpenSpan {
    kind: SpanKind,
    nanos: u64,
    children: Vec<Span>,
}

#[derive(Debug, Default)]
struct TracerState {
    /// Open spans, innermost last.
    stack: Vec<OpenSpan>,
    /// Completed top-level spans.
    roots: Vec<Span>,
}

/// A [`TraceSink`] that assembles enter/exit events into a span tree.
///
/// Cloning shares the underlying state (like
/// [`CollectingSink`](crate::CollectingSink)), so the clone a pipeline
/// carries reports into the same tree the caller snapshots.  Events arrive
/// from the dispatching thread only, so the mutex is uncontended; an
/// unmatched exit (impossible through [`with_span`]) is ignored rather than
/// panicking.
#[derive(Debug, Clone, Default)]
pub struct CollectingTracer {
    inner: Arc<Mutex<TracerState>>,
}

impl CollectingTracer {
    /// A tracer with no spans yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the completed span tree, leaving the tracer empty.  Open spans
    /// (entered but not exited — only possible if a pipeline unwound) are
    /// discarded.
    pub fn take(&self) -> TraceReport {
        let mut state = self.inner.lock().expect("tracer lock");
        state.stack.clear();
        TraceReport {
            roots: std::mem::take(&mut state.roots),
        }
    }
}

impl TraceSink for CollectingTracer {
    const ENABLED: bool = true;

    fn enter(&self, kind: SpanKind) {
        let mut state = self.inner.lock().expect("tracer lock");
        state.stack.push(OpenSpan {
            kind,
            nanos: 0,
            children: Vec::new(),
        });
    }

    fn exit(&self, kind: SpanKind, nanos: u64) {
        let mut state = self.inner.lock().expect("tracer lock");
        let Some(mut open) = state.stack.pop() else {
            return; // unmatched exit: drop rather than panic
        };
        debug_assert_eq!(open.kind, kind, "span exit order");
        open.nanos = nanos;
        let span = Span {
            kind: open.kind,
            nanos,
            children: open.children,
        };
        match state.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => state.roots.push(span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_trace_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopTrace>(), 0);
        const { assert!(!NoopTrace::ENABLED) };
        const { assert!(CollectingTracer::ENABLED) };
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let t = CollectingTracer::new();
        with_span(&t, SpanKind::Join, || {
            with_span(&t, SpanKind::ReduceUp, || {});
            with_span(&t, SpanKind::ReduceDown, || {});
        });
        with_span(&t, SpanKind::Serialize, || {});
        let report = t.take();
        assert_eq!(report.roots.len(), 2);
        assert_eq!(report.roots[0].kind, SpanKind::Join);
        let kinds: Vec<_> = report.roots[0].children.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::ReduceUp, SpanKind::ReduceDown]);
        assert_eq!(report.roots[1].kind, SpanKind::Serialize);
        // A taken tracer is empty again.
        assert_eq!(t.take(), TraceReport::default());
    }

    #[test]
    fn report_renders_canonical_json() {
        let report = TraceReport {
            roots: vec![Span {
                kind: SpanKind::Join,
                nanos: 184_000,
                children: vec![Span {
                    kind: SpanKind::ReduceUp,
                    nanos: 41_500,
                    children: Vec::new(),
                }],
            }],
        };
        assert_eq!(
            report.to_json(),
            "[{\"span\":\"join\",\"us\":184,\"children\":[{\"span\":\"reduce-up\",\"us\":41}]}]"
        );
        assert_eq!(report.total_nanos(), 184_000);
    }

    #[test]
    fn with_span_passes_results_through() {
        let t = CollectingTracer::new();
        let n = with_span(&t, SpanKind::Decompose, || 7);
        assert_eq!(n, 7);
        let err: Result<(), &str> = with_span(&t, SpanKind::Materialize, || Err("abort"));
        assert!(err.is_err());
        // Spans complete even when the closure returns an error value.
        assert_eq!(t.take().roots.len(), 2);
    }
}
