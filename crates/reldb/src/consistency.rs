//! Pairwise versus global consistency.
//!
//! A database is *pairwise consistent* when every two relations agree on
//! their shared attributes (neither loses tuples when semijoined with the
//! other), and *globally consistent* when every relation is exactly the
//! projection of the full join (no relation has dangling tuples).
//!
//! Globally consistent always implies pairwise consistent.  The converse is
//! the celebrated characterization of acyclicity (Beeri–Fagin–Maier–
//! Yannakakis, the paper's reference [4]): pairwise consistency implies
//! global consistency **for every instance** exactly when the schema is
//! acyclic.  The cyclic triangle schema has pairwise consistent instances
//! whose full join is empty — the classic counterexample, covered by the
//! tests below and by the workload generators.

use crate::database::Database;
use crate::relation::Relation;

/// True if every pair of relations is consistent: semijoining either with
/// the other removes no tuples.
pub fn is_pairwise_consistent(db: &Database) -> bool {
    let rels = db.relations();
    for i in 0..rels.len() {
        for j in 0..rels.len() {
            if i == j {
                continue;
            }
            if rels[i].semijoin_count(&rels[j]) != rels[i].len() {
                return false;
            }
        }
    }
    true
}

/// True if every relation equals the projection of the full join onto its
/// attributes (no dangling tuples anywhere).
pub fn is_globally_consistent(db: &Database) -> bool {
    let full = db.full_join();
    db.relations()
        .iter()
        .all(|r| full.project(r.attributes()).same_contents(r))
}

/// The relations that violate global consistency, with the number of
/// dangling tuples in each — handy for diagnostics and examples.
pub fn dangling_report(db: &Database) -> Vec<(String, usize)> {
    let full = db.full_join();
    db.relations()
        .iter()
        .filter_map(|r| {
            // A tuple is dangling exactly when it matches no tuple of the
            // full join on r's attributes, i.e. the semijoin drops it.
            let dangling = r.len() - r.semijoin_count(&full);
            (dangling > 0).then(|| (r.name().to_owned(), dangling))
        })
        .collect()
}

/// Makes a database globally consistent by replacing every relation with the
/// projection of the full join — the semantic "repair" used to build
/// consistent test instances.
pub fn make_globally_consistent(db: &Database) -> Database {
    let full = db.full_join();
    let relations: Vec<Relation> = db
        .relations()
        .iter()
        .map(|r| full.project(r.attributes()).with_name(r.name().to_owned()))
        .collect();
    Database::new(db.schema().clone(), relations).expect("schema unchanged")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use hypergraph::{EdgeId, Hypergraph};

    /// The classic triangle counterexample: pairwise consistent, globally
    /// inconsistent.
    fn triangle_db() -> Database {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        // R(A,B) = {(0,0), (1,1)}; S(B,C) = {(0,1), (1,0)}; T(A,C) = {(0,0), (1,1)}
        // Every pair joins compatibly but the three-way join is empty.
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 0), (b, 0)]));
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 1)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 0), (c, 1)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 1), (c, 0)]));
        db.insert(EdgeId(2), Tuple::from_pairs([(a, 0), (c, 0)]));
        db.insert(EdgeId(2), Tuple::from_pairs([(a, 1), (c, 1)]));
        db
    }

    #[test]
    fn triangle_is_pairwise_but_not_globally_consistent() {
        let db = triangle_db();
        assert!(is_pairwise_consistent(&db));
        assert!(!is_globally_consistent(&db));
        assert!(db.full_join().is_empty());
        let report = dangling_report(&db);
        assert_eq!(report.len(), 3);
        assert!(report.iter().all(|(_, n)| *n == 2));
    }

    #[test]
    fn acyclic_chain_with_dangling_tuple_is_not_pairwise_consistent() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 1)]));
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 2), (b, 2)])); // dangling
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 1), (c, 1)]));
        assert!(!is_pairwise_consistent(&db));
        assert!(!is_globally_consistent(&db));
        let repaired = make_globally_consistent(&db);
        assert!(is_globally_consistent(&repaired));
        assert!(is_pairwise_consistent(&repaired));
        assert_eq!(repaired.relation(EdgeId(0)).len(), 1);
    }

    #[test]
    fn global_consistency_implies_pairwise() {
        let db = triangle_db();
        let repaired = make_globally_consistent(&db);
        assert!(is_globally_consistent(&repaired));
        assert!(is_pairwise_consistent(&repaired));
    }

    #[test]
    fn empty_database_is_consistent() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let db = Database::empty(h);
        assert!(is_pairwise_consistent(&db));
        assert!(is_globally_consistent(&db));
        assert!(dangling_report(&db).is_empty());
    }
}
