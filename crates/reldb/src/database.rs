//! Databases: one relation ("object") per hyperedge of a schema hypergraph.

use crate::pool::ValuePool;
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use hypergraph::{EdgeId, Hypergraph, NodeSet};
use std::fmt;

/// Errors raised while assembling or querying a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The number of relations differs from the number of schema edges.
    RelationCountMismatch {
        /// Edges in the schema hypergraph.
        edges: usize,
        /// Relations supplied.
        relations: usize,
    },
    /// A relation's attribute set differs from its schema edge.
    SchemaMismatch(String),
    /// The query mentions an attribute outside the schema.
    UnknownAttribute(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RelationCountMismatch { edges, relations } => write!(
                f,
                "schema has {edges} edges but {relations} relations were supplied"
            ),
            Self::SchemaMismatch(name) => {
                write!(f, "relation {name:?} does not match its schema edge")
            }
            Self::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
        }
    }
}

impl std::error::Error for DbError {}

/// A database instance over a hypergraph schema: the *objects* of the
/// paper's §7, one relation per hyperedge, in edge order.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Hypergraph,
    relations: Vec<Relation>,
    pool: ValuePool,
}

impl Database {
    /// Creates an empty database (all relations empty) over `schema`.
    ///
    /// All relations share one [`ValuePool`], so every cross-relation kernel
    /// (join, semijoin, reduction) compares plain handles with no
    /// translation step.
    pub fn empty(schema: Hypergraph) -> Self {
        let pool = ValuePool::new();
        let relations = schema
            .edges()
            .iter()
            .map(|e| Relation::with_pool(e.label.clone(), e.nodes.clone(), pool.clone()))
            .collect();
        Self {
            schema,
            relations,
            pool,
        }
    }

    /// Assembles a database from a schema and relations given in edge order.
    ///
    /// Relations produced by this crate's kernels from a common ancestor
    /// (the usual case: reductions, projections, repairs) already share one
    /// pool.  Independently built relations keep their own pools — the
    /// kernels still work, paying a handle translation per cross-pool
    /// operation.
    pub fn new(schema: Hypergraph, relations: Vec<Relation>) -> Result<Self, DbError> {
        if relations.len() != schema.edge_count() {
            return Err(DbError::RelationCountMismatch {
                edges: schema.edge_count(),
                relations: relations.len(),
            });
        }
        for (e, r) in schema.edges().iter().zip(&relations) {
            if &e.nodes != r.attributes() {
                return Err(DbError::SchemaMismatch(r.name().to_owned()));
            }
        }
        let pool = relations
            .first()
            .map_or_else(ValuePool::new, |r| r.pool().clone());
        Ok(Self {
            schema,
            relations,
            pool,
        })
    }

    /// The schema hypergraph.
    pub fn schema(&self) -> &Hypergraph {
        &self.schema
    }

    /// The relations, in schema-edge order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The relation stored for schema edge `e`.
    pub fn relation(&self, e: EdgeId) -> &Relation {
        &self.relations[e.index()]
    }

    /// Mutable access to the relation stored for schema edge `e`.
    pub fn relation_mut(&mut self, e: EdgeId) -> &mut Relation {
        &mut self.relations[e.index()]
    }

    /// The database's value pool: the pool every relation of an
    /// [`Database::empty`]-built database interns into (for assembled
    /// databases, the first relation's pool — see [`Database::new`]).
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Inserts a tuple into the relation of schema edge `e`.
    pub fn insert(&mut self, e: EdgeId, t: Tuple) -> bool {
        self.relations[e.index()].insert(t)
    }

    /// Inserts a tuple given as values in column order (ascending attribute
    /// id) into the relation of schema edge `e` — the bulk-loading fast
    /// path; see [`Relation::insert_values`].
    pub fn insert_values<I, V>(&mut self, e: EdgeId, values: I) -> bool
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.relations[e.index()].insert_values(values)
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Resolves attribute names to a node set of the schema.
    pub fn attributes<'a, I>(&self, names: I) -> Result<NodeSet, DbError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut out = NodeSet::new();
        for n in names {
            let id = self
                .schema
                .node(n)
                .map_err(|_| DbError::UnknownAttribute(n.to_owned()))?;
            out.insert(id);
        }
        Ok(out)
    }

    /// The natural join of *all* relations: the paper's universal-relation
    /// interpretation joins every object.  Exponential in the worst case —
    /// this is the naive baseline the canonical-connection and Yannakakis
    /// query paths are compared against.
    pub fn full_join(&self) -> Relation {
        self.full_join_metered(
            &crate::ExecPolicy::sequential(crate::JoinStrategy::Hash),
            &crate::metrics::NoopMetrics,
        )
    }

    /// The metered form of [`Database::full_join`]: the same all-objects
    /// fold, with each binary join executed under `policy` and recorded
    /// into `sink`.
    pub fn full_join_metered<M: crate::metrics::MetricsSink>(
        &self,
        policy: &crate::ExecPolicy,
        sink: &M,
    ) -> Relation {
        crate::govern::unfail(self.full_join_governed(policy, sink, &crate::govern::NoopGovernor))
    }

    /// The governed form of [`Database::full_join_metered`]: the same
    /// all-objects fold, with every binary join checkpointed against the
    /// [`Governor`](crate::govern::Governor) and its output charged to the
    /// governor's memory budget.  [`Database::full_join_metered`] is this
    /// function monomorphized over [`NoopGovernor`](crate::govern::NoopGovernor).
    pub fn full_join_governed<M: crate::metrics::MetricsSink, G: crate::govern::Governor>(
        &self,
        policy: &crate::ExecPolicy,
        sink: &M,
        gov: &G,
    ) -> Result<Relation, crate::govern::EngineError> {
        let mut it = self.relations.iter();
        let Some(first) = it.next() else {
            return Ok(Relation::new("∅", NodeSet::new()));
        };
        let mut acc = first.clone();
        for r in it {
            acc = acc.join_governed(r, policy, sink, gov)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Hypergraph;

    fn schema() -> Hypergraph {
        Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap()
    }

    fn sample() -> Database {
        let h = schema();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 10)]));
        db.insert(EdgeId(0), Tuple::from_pairs([(a, 2), (b, 20)]));
        db.insert(EdgeId(1), Tuple::from_pairs([(b, 10), (c, 100)]));
        db
    }

    #[test]
    fn empty_database_has_schema_shaped_relations() {
        let db = Database::empty(schema());
        assert_eq!(db.relations().len(), 2);
        assert_eq!(db.tuple_count(), 0);
        assert_eq!(db.relation(EdgeId(0)).name(), "A-B");
        assert_eq!(
            db.relation(EdgeId(1)).attributes(),
            &db.schema().node_set(["B", "C"]).unwrap()
        );
    }

    #[test]
    fn new_validates_count_and_schema() {
        let h = schema();
        let r0 = Relation::new("AB", h.node_set(["A", "B"]).unwrap());
        assert!(matches!(
            Database::new(h.clone(), vec![r0.clone()]),
            Err(DbError::RelationCountMismatch { .. })
        ));
        let bad = Relation::new("BC", h.node_set(["A", "C"]).unwrap());
        assert!(matches!(
            Database::new(h.clone(), vec![r0.clone(), bad]),
            Err(DbError::SchemaMismatch(_))
        ));
        let good = Relation::new("BC", h.node_set(["B", "C"]).unwrap());
        assert!(Database::new(h, vec![r0, good]).is_ok());
    }

    #[test]
    fn insert_and_count() {
        let db = sample();
        assert_eq!(db.tuple_count(), 3);
        assert_eq!(db.relation(EdgeId(0)).len(), 2);
    }

    #[test]
    fn full_join_combines_all_objects() {
        let db = sample();
        let j = db.full_join();
        assert_eq!(j.len(), 1); // only B=10 matches
        assert_eq!(j.attributes(), &db.schema().nodes());
    }

    #[test]
    fn attribute_resolution_errors_on_unknown_names() {
        let db = sample();
        assert!(db.attributes(["A", "C"]).is_ok());
        assert!(matches!(
            db.attributes(["A", "Z"]),
            Err(DbError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(DbError::SchemaMismatch("R".into())
            .to_string()
            .contains("R"));
        assert!(DbError::RelationCountMismatch {
            edges: 2,
            relations: 1
        }
        .to_string()
        .contains("2"));
    }
}
