//! Relational database substrate for "Connections in Acyclic Hypergraphs"
//! (Maier & Ullman, §7).
//!
//! The paper's database interpretation treats a hypergraph as a universal-
//! relation schema: nodes are attributes, edges are *objects* (stored
//! relations).  A query names a set of attributes `X`; the system joins the
//! objects in the canonical connection `CC(X)` and projects onto `X`.  This
//! crate supplies everything needed to run that model:
//!
//! * relations with set semantics: projection, selection, natural join,
//!   semijoin ([`Relation`], [`Tuple`], [`Value`]);
//! * databases bound to a schema hypergraph ([`Database`]);
//! * universal-relation query answering via canonical connections, with the
//!   naive join-everything baseline ([`query_via_connection`],
//!   [`query_via_full_join`]);
//! * the Yannakakis full reducer and join over a join tree
//!   ([`full_reduce`], [`yannakakis_join`]) — the production query path for
//!   acyclic schemas;
//! * cyclic-schema execution by hypertree decomposition: bag
//!   materialization over a [`decomp::Decomposition`] and transparent
//!   routing ([`yannakakis_join_any`]) so *any* connected schema — ring,
//!   clique, grid — answers through the same engine;
//! * pairwise vs. global consistency, the semantic face of acyclicity
//!   ([`is_pairwise_consistent`], [`is_globally_consistent`]).
//!
//! # Module map
//!
//! | Module | Paper concept / engine role |
//! |---|---|
//! | `value`, `pool` | attribute values and the interning dictionary behind the columnar `u32`-handle rows |
//! | `relation` | one stored *object* (hyperedge) as a relation: flat interned rows, hash and sort-merge join/semijoin kernels (§7) |
//! | `database` | a database bound to a schema hypergraph — one relation per object (§7) |
//! | `universal` | universal-relation queries `π_X(⋈ CC(X))` over canonical connections (§5, §7) |
//! | `query` | the declarative [`Query`] layer: tableau-expressible output + equality selections, selection pushdown |
//! | `yannakakis` | the Yannakakis full reducer and bottom-up join over a join tree, level-synchronous in both phases (§7's efficiency payoff) |
//! | [`hypertree`] | cyclic schemas: bag materialization over a hypertree decomposition (`decomp` crate) and the acyclic-vs-cyclic router [`yannakakis_join_any`] |
//! | [`snapshot`] | the versioned binary snapshot format behind [`Database::save_snapshot`] / [`Database::load_snapshot`] — scale-up loads in milliseconds instead of re-parsing text |
//! | [`exec`] | [`ExecPolicy`], [`JoinStrategy`] cost-pick, the [`MorselQueue`] work-pull cursor, and the leased [`WorkerPool`] the parallel engine runs on |
//! | [`metrics`] | zero-cost-when-off observability: the [`MetricsSink`] threaded through every kernel, collected into a [`QueryMetrics`] report |
//! | [`govern`] | zero-cost-when-off governance: the [`Governor`] checkpoints (cancellation, deadlines, memory budgets) threaded through every kernel, structured [`EngineError`] aborts, and the `failpoints` fault-injection harness |
//! | [`trace`] | zero-cost-when-off trace spans: the [`TraceSink`] stage hooks threaded through the pipelines, collected into a hierarchical [`TraceReport`] (decompose → materialize → reduce → join wall clock) |
//! | `consistency` | pairwise vs. global consistency and repairs — the semantic characterization of acyclicity (§7) |
//! | [`mod@reference`] | the pre-rewrite naive engine, kept as the equivalence-test oracle and benchmark baseline |
//!
//! # Example
//!
//! ```
//! use hypergraph::{Hypergraph, EdgeId};
//! use reldb::{Database, Tuple, query_via_connection};
//!
//! let schema = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
//! let (a, b, c) = (schema.node("A").unwrap(), schema.node("B").unwrap(), schema.node("C").unwrap());
//! let mut db = Database::empty(schema);
//! db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
//! db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 3)]));
//!
//! let x = db.attributes(["A", "C"]).unwrap();
//! let answer = query_via_connection(&db, &x);
//! assert_eq!(answer.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod database;
pub mod exec;
pub mod govern;
pub mod hypertree;
pub mod metrics;
mod pool;
mod query;
pub mod reference;
mod relation;
pub mod snapshot;
pub mod trace;
mod universal;
mod value;
mod yannakakis;

pub use consistency::{
    dangling_report, is_globally_consistent, is_pairwise_consistent, make_globally_consistent,
};
pub use database::{Database, DbError};
pub use exec::{
    ExecPolicy, JoinStrategy, MorselQueue, WorkerLease, WorkerPool,
    AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO, AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
    AUTO_SORTMERGE_MAX_DISTINCT_RATIO, DEFAULT_MORSEL_ROWS,
};
pub use govern::{CancelToken, EngineError, Governor, NoopGovernor, QueryGovernor};
#[cfg(feature = "failpoints")]
pub use govern::{FailMode, FailpointGovernor};
pub use hypertree::{
    materialize_bags, materialize_bags_governed, materialize_bags_metered, yannakakis_join_any,
    yannakakis_join_any_governed, yannakakis_join_any_metered, yannakakis_join_any_traced,
    yannakakis_join_decomposed, yannakakis_join_decomposed_governed,
    yannakakis_join_decomposed_metered,
};
pub use metrics::{CollectingSink, MetricsSink, NoopMetrics, Phase, QueryMetrics};
pub use pool::ValuePool;
pub use query::{Query, QueryPlan, Selection};
pub use relation::{Relation, Tuple};
pub use snapshot::is_snapshot;
pub use trace::{CollectingTracer, NoopTrace, Span, SpanKind, TraceReport, TraceSink};
pub use universal::{
    plan_connection, query_attributes, query_via_connection, query_via_connection_governed,
    query_via_connection_metered, query_via_connection_traced, query_via_full_join,
    query_via_full_join_governed, query_via_full_join_metered, query_via_full_join_traced,
    query_yannakakis, query_yannakakis_governed, query_yannakakis_metered, query_yannakakis_traced,
    ConnectionPlan,
};
pub use value::Value;
pub use yannakakis::{
    full_reduce, full_reduce_governed, full_reduce_metered, full_reduce_with, naive_join_project,
    yannakakis_join, yannakakis_join_governed, yannakakis_join_metered, yannakakis_join_with,
    Reduced,
};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::{
        full_reduce, full_reduce_with, is_globally_consistent, is_pairwise_consistent,
        plan_connection, query_via_connection, query_via_full_join, query_yannakakis,
        yannakakis_join, yannakakis_join_any, yannakakis_join_with, CancelToken, Database, DbError,
        EngineError, ExecPolicy, JoinStrategy, NoopGovernor, Query, QueryGovernor, Relation, Tuple,
        Value,
    };
}
