//! Zero-cost-when-off metrics through the execution engine.
//!
//! Every planning decision in the engine — notably the [`JoinStrategy::Auto`]
//! distinct-key-ratio crossover — needs *measured* evidence to be anything
//! better than a guess.  This module supplies the evidence channel: a
//! [`MetricsSink`] trait threaded generically through the relation kernels,
//! the Yannakakis reducer/join, bag materialization and the worker pool.
//! Every metered entry point is monomorphized per sink type, so the default
//! [`NoopMetrics`] sink compiles to *nothing*: its recording methods are
//! empty `#[inline]` bodies the optimizer erases, and everything with a
//! runtime cost of its own (wall-clock reads, ratio sampling that `Auto`
//! would not already do) is gated on the compile-time constant
//! [`MetricsSink::ENABLED`].  The unmetered public API
//! ([`full_reduce_with`](crate::full_reduce_with), [`Relation::join_with`]…)
//! simply calls the metered path with [`NoopMetrics`] — there is one engine,
//! not two.
//!
//! # What is measured
//!
//! | Signal | Recorded by | Report field |
//! |---|---|---|
//! | per-op counters: tuples probed / kept / built, build-side rows, resolved kernel, sampled distinct-key ratio | join/semijoin kernels ([`OpMetrics`]) | [`QueryMetrics::joins`], [`QueryMetrics::semijoins`] |
//! | per-level wall timings (reducer passes, bottom-up join, bag materialization) | the level-synchronous drivers | [`QueryMetrics::levels`] |
//! | bag materialization sizes | [`materialize_bags`](crate::materialize_bags) | [`QueryMetrics::bags`] |
//! | pool lease / occupancy | lease acquisition | [`QueryMetrics::leases`] |
//! | dedup-index rebuilds saved by deferral | the reducer | [`QueryMetrics::index_rebuilds`] |
//! | min-fill vs. min-degree decomposition widths | [`yannakakis_join_any`](crate::yannakakis_join_any) | [`QueryMetrics::widths`] |
//!
//! # Collecting
//!
//! [`CollectingSink`] aggregates everything into a [`QueryMetrics`] report
//! (shareable across the pool's worker threads — recording happens at
//! operation granularity, never per tuple, so a mutex is plenty).  The
//! report renders as a human table ([`QueryMetrics::render_table`]) and as
//! machine-readable JSON ([`QueryMetrics::to_json`]) — the formats behind
//! `hyperq query --metrics` / `--metrics-json` and the per-row metrics
//! embedded in `hyperq bench` records.
//!
//! [`JoinStrategy::Auto`]: crate::JoinStrategy::Auto
//! [`Relation::join_with`]: crate::Relation::join_with

use std::sync::{Arc, Mutex};

/// Which logical operator an [`OpMetrics`] record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A binary natural join.
    Join,
    /// A semijoin (mask computation), including the in-place reducer form.
    Semijoin,
}

/// Which physical kernel an operator resolved to (the [`Auto`] planner's
/// *output*, where [`crate::JoinStrategy`] is its input).
///
/// [`Auto`]: crate::JoinStrategy::Auto
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Hash build + probe.
    Hash,
    /// Sorted row-id permutations + merge.
    SortMerge,
}

impl Kernel {
    /// The JSON/table spelling.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Hash => "hash",
            Kernel::SortMerge => "sort-merge",
        }
    }
}

/// One join or semijoin operation's counters, recorded by the kernel that
/// executed it.
#[derive(Debug, Clone, Copy)]
pub struct OpMetrics {
    /// Join or semijoin.
    pub kind: OpKind,
    /// The physical kernel that ran (post-`Auto` resolution).
    pub kernel: Kernel,
    /// Rows scanned on the probe side (the relation being filtered, for a
    /// semijoin; the larger side, for a hash join).
    pub probed: u64,
    /// Rows surviving: output cardinality for a join, surviving rows for a
    /// semijoin.
    pub kept: u64,
    /// Entries added to the build-side structure: distinct keys for a hash
    /// table, sorted permutation entries for sort-merge.
    pub built: u64,
    /// Build-side input rows.
    pub build_rows: u64,
    /// The sampled distinct-key ratio of the strategy-deciding side, when it
    /// was sampled (always under [`Auto`]; under a pinned strategy only when
    /// the sink is enabled, so the no-op path never pays for sampling).
    ///
    /// [`Auto`]: crate::JoinStrategy::Auto
    pub distinct_ratio: Option<f64>,
}

/// Which level-synchronous phase a [`LevelTiming`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Reducer upward pass (parent ⋉ children, deepest level first).
    ReduceUp,
    /// Reducer downward pass (child ⋉ parent, top-down).
    ReduceDown,
    /// Bottom-up join along the tree.
    Join,
    /// Bag materialization of a hypertree decomposition.
    Materialize,
}

impl Phase {
    /// The JSON/table spelling.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ReduceUp => "reduce-up",
            Phase::ReduceDown => "reduce-down",
            Phase::Join => "join",
            Phase::Materialize => "materialize",
        }
    }
}

/// The metrics sink threaded through every engine layer.
///
/// Implementations must be cheaply cloneable (jobs handed to pool workers
/// carry their own handle) and record at *operation* granularity — kernels
/// accumulate per-tuple counts locally and report once per op, so a sink is
/// never invoked inside a probe loop.
///
/// All recording methods default to empty bodies; [`ENABLED`] is the
/// compile-time switch the engine consults before doing work that only
/// exists to be recorded (reading clocks, sampling ratios a pinned strategy
/// would not sample).  See the module docs for the zero-cost argument.
///
/// [`ENABLED`]: MetricsSink::ENABLED
pub trait MetricsSink: Clone + Send + Sync + 'static {
    /// Whether this sink records anything.  `false` lets the engine skip
    /// metric-only work entirely at compile time.
    const ENABLED: bool;

    /// One join/semijoin operation completed.
    #[inline]
    fn record_op(&self, _op: OpMetrics) {}

    /// One level of a level-synchronous phase completed in `_nanos`
    /// wall-clock nanoseconds, running `_jobs` jobs.
    #[inline]
    fn record_level(&self, _phase: Phase, _level: usize, _jobs: usize, _nanos: u64) {}

    /// A decomposition bag materialized with `_rows` tuples.
    #[inline]
    fn record_bag(&self, _name: &str, _rows: u64) {}

    /// A worker lease was acquired: `_threads` workers serving the call,
    /// `_idle` workers left parked in the shared pool.
    #[inline]
    fn record_lease(&self, _threads: usize, _idle: usize) {}

    /// The reducer triggered `_n` deferred dedup-index rebuilds.
    #[inline]
    fn record_index_rebuilds(&self, _n: u64) {}

    /// Both decomposition heuristics ran; their widths and the winner.
    #[inline]
    fn record_widths(&self, _min_fill: usize, _min_degree: usize, _chosen: &'static str) {}

    /// The schema-keyed decomposition cache answered a lookup (`_hit` says
    /// whether the elimination runs were skipped).
    #[inline]
    fn record_decomp_cache(&self, _hit: bool) {}
}

/// The default sink: records nothing, costs nothing.  Every unmetered entry
/// point in the engine is the metered one monomorphized over this type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    const ENABLED: bool = false;
}

/// Aggregated counters for one operator kind (joins or semijoins).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpAgg {
    /// Operations recorded.
    pub ops: u64,
    /// Operations resolved to the hash kernel.
    pub hash_ops: u64,
    /// Operations resolved to the sort-merge kernel.
    pub sortmerge_ops: u64,
    /// Total rows probed.
    pub probed: u64,
    /// Total rows kept (output rows for joins, survivors for semijoins).
    pub kept: u64,
    /// Total build-side structure entries.
    pub built: u64,
    /// Total build-side input rows.
    pub build_rows: u64,
    /// How many ops carried a sampled distinct-key ratio.
    pub ratio_samples: u64,
    /// Sum of sampled ratios (mean = `ratio_sum / ratio_samples`).
    pub ratio_sum: f64,
    /// Smallest sampled ratio.
    pub ratio_min: f64,
    /// Largest sampled ratio.
    pub ratio_max: f64,
}

impl OpAgg {
    fn add(&mut self, op: &OpMetrics) {
        self.ops += 1;
        match op.kernel {
            Kernel::Hash => self.hash_ops += 1,
            Kernel::SortMerge => self.sortmerge_ops += 1,
        }
        self.probed += op.probed;
        self.kept += op.kept;
        self.built += op.built;
        self.build_rows += op.build_rows;
        if let Some(r) = op.distinct_ratio {
            if self.ratio_samples == 0 {
                self.ratio_min = r;
                self.ratio_max = r;
            } else {
                self.ratio_min = self.ratio_min.min(r);
                self.ratio_max = self.ratio_max.max(r);
            }
            self.ratio_samples += 1;
            self.ratio_sum += r;
        }
    }

    /// Mean sampled distinct-key ratio, if any op was sampled.
    pub fn ratio_mean(&self) -> Option<f64> {
        (self.ratio_samples > 0).then(|| self.ratio_sum / self.ratio_samples as f64)
    }

    fn json(&self) -> String {
        let ratio = match self.ratio_mean() {
            Some(mean) => format!(
                "{{\"samples\": {}, \"mean\": {:.6}, \"min\": {:.6}, \"max\": {:.6}}}",
                self.ratio_samples, mean, self.ratio_min, self.ratio_max
            ),
            None => "null".to_owned(),
        };
        format!(
            "{{\"ops\": {}, \"hash_ops\": {}, \"sortmerge_ops\": {}, \"probed\": {}, \"kept\": {}, \"built\": {}, \"build_rows\": {}, \"distinct_ratio\": {}}}",
            self.ops, self.hash_ops, self.sortmerge_ops, self.probed, self.kept, self.built,
            self.build_rows, ratio,
        )
    }
}

/// One recorded level timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTiming {
    /// The phase the level belongs to.
    pub phase: Phase,
    /// Level index within the phase (reducer passes count tree depths; bag
    /// materialization records a single level `0`).
    pub level: usize,
    /// Jobs the level ran.
    pub jobs: usize,
    /// Wall-clock nanoseconds the level took.
    pub nanos: u64,
}

/// One materialized decomposition bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BagStat {
    /// The bag relation's name (its bag label).
    pub name: String,
    /// Materialized tuple count.
    pub rows: u64,
}

/// One worker-pool lease acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseStat {
    /// Workers serving the leasing call (`1` = inline/sequential).
    pub threads: usize,
    /// Workers left idle in the shared pool after the lease.
    pub idle: usize,
}

/// Widths measured by running both decomposition heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthReport {
    /// Width of the min-fill decomposition.
    pub min_fill: usize,
    /// Width of the min-degree decomposition.
    pub min_degree: usize,
    /// Which heuristic's decomposition was used (`"min-fill"` or
    /// `"min-degree"`).
    pub chosen: &'static str,
}

/// Everything one metered query execution recorded — the report behind
/// `hyperq query --metrics` and the per-row metrics in `hyperq bench` JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// Aggregated join counters.
    pub joins: OpAgg,
    /// Aggregated semijoin counters.
    pub semijoins: OpAgg,
    /// Per-level wall timings, in recording order.
    pub levels: Vec<LevelTiming>,
    /// Materialized bag sizes (cyclic pipeline only).
    pub bags: Vec<BagStat>,
    /// Worker-pool lease acquisitions.
    pub leases: Vec<LeaseStat>,
    /// Deferred dedup-index rebuilds the reduced relations actually paid.
    pub index_rebuilds: u64,
    /// Decomposition widths, when the cyclic pipeline ran both heuristics.
    pub widths: Option<WidthReport>,
    /// Schema-keyed decomposition cache hits (elimination runs skipped).
    pub decomp_cache_hits: u64,
    /// Schema-keyed decomposition cache misses (both heuristics ran).
    pub decomp_cache_misses: u64,
}

impl QueryMetrics {
    /// Total rows probed across joins and semijoins.
    pub fn total_probed(&self) -> u64 {
        self.joins.probed + self.semijoins.probed
    }

    /// Total rows kept across joins and semijoins.
    pub fn total_kept(&self) -> u64 {
        self.joins.kept + self.semijoins.kept
    }

    /// Renders the report as a machine-readable JSON document (single
    /// trailing-newline object; lists one element per line so the output
    /// greps cleanly).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"join\": {},\n", self.joins.json()));
        out.push_str(&format!("  \"semijoin\": {},\n", self.semijoins.json()));
        out.push_str("  \"levels\": [");
        for (i, l) in self.levels.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"level\": {}, \"jobs\": {}, \"nanos\": {}}}",
                l.phase.label(),
                l.level,
                l.jobs,
                l.nanos
            ));
        }
        out.push_str(if self.levels.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"bags\": [");
        for (i, b) in self.bags.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"rows\": {}}}",
                b.name.replace('"', "'"),
                b.rows
            ));
        }
        out.push_str(if self.bags.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"pool\": {\"leases\": [");
        for (i, l) in self.leases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"threads\": {}, \"idle\": {}}}",
                l.threads, l.idle
            ));
        }
        out.push_str("]},\n");
        out.push_str(&format!("  \"index_rebuilds\": {},\n", self.index_rebuilds));
        out.push_str(&format!(
            "  \"decomp_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            self.decomp_cache_hits, self.decomp_cache_misses
        ));
        match &self.widths {
            Some(w) => out.push_str(&format!(
                "  \"decomposition\": {{\"min_fill_width\": {}, \"min_degree_width\": {}, \"chosen\": \"{}\"}}\n",
                w.min_fill, w.min_degree, w.chosen
            )),
            None => out.push_str("  \"decomposition\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Renders the report as a human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>5} {:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10}\n",
            "op", "ops", "hash", "merge", "probed", "kept", "built", "build_rows", "ratio"
        ));
        for (name, agg) in [("join", &self.joins), ("semijoin", &self.semijoins)] {
            let ratio = agg
                .ratio_mean()
                .map_or("-".to_owned(), |m| format!("{m:.4}"));
            out.push_str(&format!(
                "{:<10} {:>5} {:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10}\n",
                name,
                agg.ops,
                agg.hash_ops,
                agg.sortmerge_ops,
                agg.probed,
                agg.kept,
                agg.built,
                agg.build_rows,
                ratio,
            ));
        }
        if !self.levels.is_empty() {
            out.push_str("levels:\n");
            for l in &self.levels {
                out.push_str(&format!(
                    "  {:<12} level {:<3} {:>3} jobs {:>12} ns\n",
                    l.phase.label(),
                    l.level,
                    l.jobs,
                    l.nanos
                ));
            }
        }
        if !self.bags.is_empty() {
            out.push_str("bags:\n");
            for b in &self.bags {
                out.push_str(&format!("  {:<24} {:>10} rows\n", b.name, b.rows));
            }
        }
        if !self.leases.is_empty() {
            out.push_str("pool leases:\n");
            for l in &self.leases {
                out.push_str(&format!(
                    "  {} worker(s), {} idle in pool\n",
                    l.threads, l.idle
                ));
            }
        }
        out.push_str(&format!("index rebuilds: {}\n", self.index_rebuilds));
        if self.decomp_cache_hits + self.decomp_cache_misses > 0 {
            out.push_str(&format!(
                "decomposition cache: {} hit(s), {} miss(es)\n",
                self.decomp_cache_hits, self.decomp_cache_misses
            ));
        }
        if let Some(w) = &self.widths {
            out.push_str(&format!(
                "decomposition widths: min-fill {} / min-degree {} (chosen: {})\n",
                w.min_fill, w.min_degree, w.chosen
            ));
        }
        out
    }
}

/// A sink that aggregates everything into a [`QueryMetrics`] report.
///
/// Cloning shares the underlying report (handles ride into pool-worker
/// jobs); recording locks a mutex per *operation* — never per tuple — so
/// contention is negligible next to the work being measured.
///
/// # Examples
///
/// ```
/// use reldb::metrics::{CollectingSink, MetricsSink};
/// use reldb::{full_reduce_metered, Database, ExecPolicy, Tuple};
/// use hypergraph::{EdgeId, Hypergraph};
/// use acyclic::join_tree;
///
/// let schema = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
/// let (a, b, c) = (
///     schema.node("A").unwrap(),
///     schema.node("B").unwrap(),
///     schema.node("C").unwrap(),
/// );
/// let mut db = Database::empty(schema);
/// db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
/// db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 3)]));
/// db.insert(EdgeId(1), Tuple::from_pairs([(b, 9), (c, 9)])); // dangling
///
/// let tree = join_tree(db.schema()).unwrap();
/// let sink = CollectingSink::new();
/// let reduced = full_reduce_metered(&db, &tree, &ExecPolicy::default(), &sink);
/// let report = sink.snapshot();
/// assert_eq!(reduced.total_removed(), 1);
/// assert!(report.semijoins.ops > 0);
/// assert!(report.semijoins.probed >= report.semijoins.kept);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CollectingSink {
    inner: Arc<Mutex<QueryMetrics>>,
}

impl CollectingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> QueryMetrics {
        self.inner.lock().expect("metrics lock").clone()
    }

    fn with(&self, f: impl FnOnce(&mut QueryMetrics)) {
        f(&mut self.inner.lock().expect("metrics lock"));
    }
}

impl MetricsSink for CollectingSink {
    const ENABLED: bool = true;

    fn record_op(&self, op: OpMetrics) {
        self.with(|m| match op.kind {
            OpKind::Join => m.joins.add(&op),
            OpKind::Semijoin => m.semijoins.add(&op),
        });
    }

    fn record_level(&self, phase: Phase, level: usize, jobs: usize, nanos: u64) {
        self.with(|m| {
            m.levels.push(LevelTiming {
                phase,
                level,
                jobs,
                nanos,
            })
        });
    }

    fn record_bag(&self, name: &str, rows: u64) {
        self.with(|m| {
            m.bags.push(BagStat {
                name: name.to_owned(),
                rows,
            })
        });
    }

    fn record_lease(&self, threads: usize, idle: usize) {
        self.with(|m| m.leases.push(LeaseStat { threads, idle }));
    }

    fn record_index_rebuilds(&self, n: u64) {
        self.with(|m| m.index_rebuilds += n);
    }

    fn record_widths(&self, min_fill: usize, min_degree: usize, chosen: &'static str) {
        self.with(|m| {
            m.widths = Some(WidthReport {
                min_fill,
                min_degree,
                chosen,
            })
        });
    }

    fn record_decomp_cache(&self, hit: bool) {
        self.with(|m| {
            if hit {
                m.decomp_cache_hits += 1;
            } else {
                m.decomp_cache_misses += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, kernel: Kernel, probed: u64, kept: u64, ratio: Option<f64>) -> OpMetrics {
        OpMetrics {
            kind,
            kernel,
            probed,
            kept,
            built: kept.min(probed),
            build_rows: probed / 2,
            distinct_ratio: ratio,
        }
    }

    #[test]
    fn collecting_sink_aggregates_ops_by_kind_and_kernel() {
        let sink = CollectingSink::new();
        sink.record_op(op(OpKind::Join, Kernel::Hash, 100, 40, Some(0.5)));
        sink.record_op(op(OpKind::Join, Kernel::SortMerge, 50, 10, Some(0.01)));
        sink.record_op(op(OpKind::Semijoin, Kernel::Hash, 30, 30, None));
        let m = sink.snapshot();
        assert_eq!(m.joins.ops, 2);
        assert_eq!(m.joins.hash_ops, 1);
        assert_eq!(m.joins.sortmerge_ops, 1);
        assert_eq!(m.joins.probed, 150);
        assert_eq!(m.joins.kept, 50);
        assert_eq!(m.joins.ratio_samples, 2);
        assert!((m.joins.ratio_min - 0.01).abs() < 1e-12);
        assert!((m.joins.ratio_max - 0.5).abs() < 1e-12);
        assert!((m.joins.ratio_mean().unwrap() - 0.255).abs() < 1e-12);
        assert_eq!(m.semijoins.ops, 1);
        assert_eq!(m.semijoins.ratio_samples, 0);
        assert_eq!(m.semijoins.ratio_mean(), None);
    }

    #[test]
    fn clones_share_the_report() {
        let sink = CollectingSink::new();
        let clone = sink.clone();
        clone.record_index_rebuilds(3);
        clone.record_lease(4, 2);
        assert_eq!(sink.snapshot().index_rebuilds, 3);
        assert_eq!(
            sink.snapshot().leases,
            vec![LeaseStat {
                threads: 4,
                idle: 2
            }]
        );
    }

    #[test]
    fn json_report_is_well_formed_and_complete() {
        let sink = CollectingSink::new();
        sink.record_op(op(OpKind::Semijoin, Kernel::Hash, 10, 7, Some(0.3)));
        sink.record_level(Phase::ReduceUp, 1, 2, 1234);
        sink.record_bag("B0-B1", 42);
        sink.record_lease(2, 0);
        sink.record_index_rebuilds(1);
        sink.record_widths(2, 3, "min-fill");
        let json = sink.snapshot().to_json();
        for needle in [
            "\"semijoin\": {\"ops\": 1",
            "\"probed\": 10",
            "\"kept\": 7",
            "\"phase\": \"reduce-up\"",
            "\"nanos\": 1234",
            "\"name\": \"B0-B1\", \"rows\": 42",
            "\"threads\": 2, \"idle\": 0",
            "\"index_rebuilds\": 1",
            "\"min_fill_width\": 2, \"min_degree_width\": 3, \"chosen\": \"min-fill\"",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        // Balanced braces/brackets — the document must parse as JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_renders_null_sections() {
        let json = QueryMetrics::default().to_json();
        assert!(json.contains("\"levels\": []"));
        assert!(json.contains("\"bags\": []"));
        assert!(json.contains("\"distinct_ratio\": null"));
        assert!(json.contains("\"decomposition\": null"));
    }

    #[test]
    fn table_renders_all_sections() {
        let sink = CollectingSink::new();
        sink.record_op(op(OpKind::Join, Kernel::SortMerge, 100, 80, Some(0.02)));
        sink.record_level(Phase::Join, 0, 3, 999);
        sink.record_bag("bag", 5);
        sink.record_lease(2, 1);
        sink.record_widths(2, 2, "min-fill");
        let t = sink.snapshot().render_table();
        for needle in [
            "join",
            "0.0200",
            "levels:",
            "bags:",
            "pool leases:",
            "min-degree 2",
        ] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
    }
}
