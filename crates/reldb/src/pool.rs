//! Value interning.
//!
//! The columnar engine stores tuples as fixed-width rows of `u32` *handles*
//! rather than owned [`Value`]s.  A [`ValuePool`] is the dictionary behind
//! those handles: interning the same value twice yields the same handle, so
//! the join/semijoin/projection kernels compare and hash plain integers and
//! never touch a `Value` (or allocate) on the hot path.
//!
//! One pool is shared by every relation of a [`Database`](crate::Database)
//! and by every relation derived from them (joins, projections, reductions),
//! so handle equality *is* value equality within a query.  Relations built
//! independently carry their own pools; the binary kernels detect that via
//! [`ValuePool::same_pool`] and translate handles across pools first.

use crate::value::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

/// Handle reserved as "no handle" (used by row tables and translations).
pub(crate) const NO_HANDLE: u32 = u32::MAX;

/// A fast, non-cryptographic hasher for the dedup index (rotate-xor-
/// multiply over 8-byte chunks, the classic FxHash construction).
/// Interning sits on the data-load hot path — 10⁶-value snapshots, bulk
/// text parses — where SipHash's DoS resistance buys nothing: handles are
/// engine-internal, and a pathological dataset degrades one load, not a
/// shared service.
#[derive(Debug, Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0.rotate_left(5) ^ u64::from_le_bytes(buf))
                .wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[derive(Debug, Default)]
struct PoolInner {
    values: Vec<Value>,
    index: FastMap<Value, u32>,
    /// How many of `values` are reflected in `index`.  A snapshot load
    /// installs the whole dictionary with `indexed == 0` (the loader has
    /// already validated the values distinct), and the first operation
    /// that needs the dedup index folds the tail in — queries that never
    /// intern never pay for the index at all.
    indexed: usize,
}

impl PoolInner {
    /// Folds `values[indexed..]` into the dedup index.  The tail is
    /// distinct by construction (interns go through the index; snapshot
    /// loads validate), so first-handle-wins is only a debug concern.
    fn catch_up(&mut self) {
        if self.indexed == self.values.len() {
            return;
        }
        self.index.reserve(self.values.len() - self.indexed);
        for h in self.indexed..self.values.len() {
            let prev = self.index.insert(
                self.values[h].clone(),
                u32::try_from(h).expect("value pool overflow"),
            );
            debug_assert!(prev.is_none(), "duplicate value in unindexed pool tail");
        }
        self.indexed = self.values.len();
    }
}

/// A shared, thread-safe dictionary interning [`Value`]s to `u32` handles.
///
/// Cloning a `ValuePool` clones the *handle to the same dictionary*; use
/// [`ValuePool::same_pool`] to test identity.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    inner: Arc<Mutex<PoolInner>>,
}

impl ValuePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the two handles point at the same dictionary, i.e. handles
    /// from one are directly comparable with handles from the other.
    pub fn same_pool(&self, other: &ValuePool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Interns `v`, returning its handle.  Idempotent.
    pub fn intern(&self, v: &Value) -> u32 {
        let mut inner = self.inner.lock().expect("value pool lock");
        Self::intern_locked(&mut inner, v)
    }

    fn intern_locked(inner: &mut PoolInner, v: &Value) -> u32 {
        inner.catch_up();
        if let Some(&h) = inner.index.get(v) {
            return h;
        }
        let h = u32::try_from(inner.values.len()).expect("value pool overflow");
        assert!(h < NO_HANDLE - 1, "value pool overflow");
        inner.values.push(v.clone());
        inner.index.insert(v.clone(), h);
        inner.indexed = inner.values.len();
        h
    }

    /// Interns a whole row of values under a single lock, appending the
    /// handles to `out`.
    pub fn intern_row<'a, I>(&self, values: I, out: &mut Vec<u32>)
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut inner = self.inner.lock().expect("value pool lock");
        for v in values {
            out.push(Self::intern_locked(&mut inner, v));
        }
    }

    /// Builds a pool whose dictionary is exactly `values`, `values[h]`
    /// behind handle `h`, *without* building the dedup index — the
    /// snapshot loader's "dedup-index-free" path.  The caller must have
    /// validated `values` distinct (the loader's sorted-dictionary scan
    /// does); the index is rebuilt lazily by the first `intern`/`get`.
    ///
    /// # Panics
    /// Panics if `values` is too large for `u32` handles.
    pub(crate) fn from_dense_values(values: Vec<Value>) -> Self {
        let n = u32::try_from(values.len()).expect("value pool overflow");
        assert!(n < NO_HANDLE - 1, "value pool overflow");
        Self {
            inner: Arc::new(Mutex::new(PoolInner {
                values,
                index: FastMap::default(),
                indexed: 0,
            })),
        }
    }

    /// The handle of `v`, if it has been interned.
    pub fn get(&self, v: &Value) -> Option<u32> {
        let mut inner = self.inner.lock().expect("value pool lock");
        inner.catch_up();
        inner.index.get(v).copied()
    }

    /// The value behind `h`.
    ///
    /// # Panics
    /// Panics if `h` was not produced by this pool.
    pub fn value(&self, h: u32) -> Value {
        self.inner.lock().expect("value pool lock").values[h as usize].clone()
    }

    /// A snapshot of the whole dictionary, indexed by handle — one lock for
    /// a bulk decode instead of one per [`ValuePool::value`] call.
    pub(crate) fn snapshot(&self) -> Vec<Value> {
        self.inner.lock().expect("value pool lock").values.clone()
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("value pool lock").values.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A translation table from this pool's handles to `to`'s handles:
    /// `table[h]` is the handle in `to` of the value behind `h` here.
    ///
    /// With `intern == false`, values unknown to `to` map to
    /// [`NO_HANDLE`] (they can never match a row of a relation over `to`);
    /// with `intern == true` they are interned into `to` first, so the table
    /// never contains `NO_HANDLE`.
    pub(crate) fn translation_to(&self, to: &ValuePool, intern: bool) -> Vec<u32> {
        // Snapshot first so the two pool locks are never held together.
        let values: Vec<Value> = self.inner.lock().expect("value pool lock").values.clone();
        let mut to_inner = to.inner.lock().expect("value pool lock");
        to_inner.catch_up();
        values
            .iter()
            .map(|v| {
                if intern {
                    Self::intern_locked(&mut to_inner, v)
                } else {
                    to_inner.index.get(v).copied().unwrap_or(NO_HANDLE)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let pool = ValuePool::new();
        let a = pool.intern(&Value::Int(7));
        let b = pool.intern(&Value::str("x"));
        assert_eq!(pool.intern(&Value::Int(7)), a);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.value(a), Value::Int(7));
        assert_eq!(pool.get(&Value::str("x")), Some(b));
        assert_eq!(pool.get(&Value::str("y")), None);
        assert!(!pool.is_empty());
    }

    #[test]
    fn intern_row_batches_under_one_lock() {
        let pool = ValuePool::new();
        let vals = [Value::Int(1), Value::Int(2), Value::Int(1)];
        let mut out = Vec::new();
        pool.intern_row(vals.iter(), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2]);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn dense_pools_rebuild_their_index_lazily() {
        let pool =
            ValuePool::from_dense_values(vec![Value::Int(20), Value::str("x"), Value::Int(30)]);
        // `value` never needs the index…
        assert_eq!(pool.value(1), Value::str("x"));
        // …but `get` and `intern` fold the tail in on first use.
        assert_eq!(pool.get(&Value::str("x")), Some(1));
        assert_eq!(pool.intern(&Value::Int(30)), 2);
        assert_eq!(pool.intern(&Value::Int(99)), 3);
        assert_eq!(pool.len(), 4);
        // Translations into a dense pool also see the full dictionary.
        let other = ValuePool::new();
        other.intern(&Value::Int(20));
        let dense = ValuePool::from_dense_values(vec![Value::Int(7), Value::Int(20)]);
        assert_eq!(other.translation_to(&dense, false), vec![1]);
    }

    #[test]
    fn clones_share_identity_but_fresh_pools_do_not() {
        let pool = ValuePool::new();
        let twin = pool.clone();
        assert!(pool.same_pool(&twin));
        let h = twin.intern(&Value::Int(3));
        assert_eq!(pool.value(h), Value::Int(3));
        assert!(!pool.same_pool(&ValuePool::new()));
    }

    #[test]
    fn translation_maps_known_values_and_flags_unknown() {
        let a = ValuePool::new();
        let b = ValuePool::new();
        a.intern(&Value::Int(1));
        a.intern(&Value::Int(2));
        let h1 = b.intern(&Value::Int(2));
        let table = a.translation_to(&b, false);
        assert_eq!(table, vec![NO_HANDLE, h1]);
        let table = a.translation_to(&b, true);
        assert_eq!(table[1], h1);
        assert_ne!(table[0], NO_HANDLE);
        assert_eq!(b.value(table[0]), Value::Int(1));
    }
}
