//! Relations with set semantics.
//!
//! A [`Relation`] is a named set of [`Tuple`]s over a fixed set of
//! attributes.  Attributes are hypergraph nodes ([`NodeId`]), so a relation
//! corresponds directly to one "object" (hyperedge) of the paper's
//! universal-relation model.

use crate::value::Value;
use hypergraph::{NodeId, NodeSet, Universe};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A tuple: an assignment of values to attributes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    values: BTreeMap<NodeId, Value>,
}

impl Tuple {
    /// The empty tuple.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tuple from `(attribute, value)` pairs.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, V)>,
        V: Into<Value>,
    {
        Self {
            values: pairs.into_iter().map(|(a, v)| (a, v.into())).collect(),
        }
    }

    /// The value of attribute `a`, if present.
    pub fn get(&self, a: NodeId) -> Option<&Value> {
        self.values.get(&a)
    }

    /// Sets the value of attribute `a`.
    pub fn set(&mut self, a: NodeId, v: impl Into<Value>) {
        self.values.insert(a, v.into());
    }

    /// The attributes this tuple assigns.
    pub fn attributes(&self) -> NodeSet {
        self.values.keys().copied().collect()
    }

    /// Restriction of the tuple to the attributes in `attrs`.
    pub fn project(&self, attrs: &NodeSet) -> Tuple {
        Tuple {
            values: self
                .values
                .iter()
                .filter(|(a, _)| attrs.contains(**a))
                .map(|(a, v)| (*a, v.clone()))
                .collect(),
        }
    }

    /// True if the two tuples agree on every attribute they share.
    pub fn joinable(&self, other: &Tuple) -> bool {
        self.values
            .iter()
            .all(|(a, v)| other.values.get(a).is_none_or(|w| w == v))
    }

    /// The combined tuple, if the two agree on shared attributes.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if !self.joinable(other) {
            return None;
        }
        let mut values = self.values.clone();
        for (a, v) in &other.values {
            values.insert(*a, v.clone());
        }
        Some(Tuple { values })
    }

    /// Number of attributes assigned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the tuple assigns no attribute.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the tuple with attribute names from `universe`.
    pub fn display(&self, universe: &Universe) -> String {
        let parts: Vec<String> = self
            .values
            .iter()
            .map(|(a, v)| format!("{}={}", universe.name(*a), v))
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// A relation: a named set of tuples over a fixed attribute set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    attributes: NodeSet,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `attributes`.
    pub fn new(name: impl Into<String>, attributes: NodeSet) -> Self {
        Self {
            name: name.into(),
            attributes,
            tuples: BTreeSet::new(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's attribute set.
    pub fn attributes(&self) -> &NodeSet {
        &self.attributes
    }

    /// The tuples, in canonical order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    /// Panics if the tuple's attributes differ from the relation's schema —
    /// schema mismatches are programming errors, not data errors.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.attributes(),
            self.attributes,
            "tuple attributes do not match relation {:?}",
            self.name
        );
        self.tuples.insert(t)
    }

    /// True if the relation contains `t`.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Projection onto `attrs` (which need not be a subset of the schema;
    /// extra attributes are ignored), with duplicate elimination.
    pub fn project(&self, attrs: &NodeSet) -> Relation {
        let kept = self.attributes.intersection(attrs);
        let mut out = Relation::new(format!("π({})", self.name), kept.clone());
        for t in &self.tuples {
            out.tuples.insert(t.project(&kept));
        }
        out
    }

    /// Selection: keep tuples where attribute `a` equals `v`.
    pub fn select_eq(&self, a: NodeId, v: &Value) -> Relation {
        let mut out = Relation::new(format!("σ({})", self.name), self.attributes.clone());
        for t in &self.tuples {
            if t.get(a) == Some(v) {
                out.tuples.insert(t.clone());
            }
        }
        out
    }

    /// Natural join.
    pub fn join(&self, other: &Relation) -> Relation {
        let attrs = self.attributes.union(&other.attributes);
        let shared = self.attributes.intersection(&other.attributes);
        let mut out = Relation::new(format!("({}⋈{})", self.name, other.name), attrs);
        // Hash join on the shared attributes.
        let mut index: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
        for t in &other.tuples {
            index.entry(t.project(&shared)).or_default().push(t);
        }
        for t in &self.tuples {
            if let Some(matches) = index.get(&t.project(&shared)) {
                for m in matches {
                    if let Some(joined) = t.join(m) {
                        out.tuples.insert(joined);
                    }
                }
            }
        }
        out
    }

    /// Semijoin: the tuples of `self` that join with at least one tuple of
    /// `other`.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.attributes.intersection(&other.attributes);
        let other_keys: BTreeSet<Tuple> = other.tuples.iter().map(|t| t.project(&shared)).collect();
        let mut out = Relation::new(self.name.clone(), self.attributes.clone());
        for t in &self.tuples {
            if other_keys.contains(&t.project(&shared)) {
                out.tuples.insert(t.clone());
            }
        }
        out
    }

    /// True if the two relations hold exactly the same tuples over the same
    /// attributes (names are ignored).
    pub fn same_contents(&self, other: &Relation) -> bool {
        self.attributes == other.attributes && self.tuples == other.tuples
    }

    /// Renders the relation as a small table using `universe` for names.
    pub fn display(&self, universe: &Universe) -> String {
        let mut out = String::new();
        let attrs: Vec<NodeId> = self.attributes.iter().collect();
        out.push_str(&format!("{} (", self.name));
        out.push_str(
            &attrs
                .iter()
                .map(|a| universe.name(*a).to_owned())
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(&format!(") — {} tuples\n", self.tuples.len()));
        for t in &self.tuples {
            out.push_str("  ");
            out.push_str(
                &attrs
                    .iter()
                    .map(|a| t.get(*a).map_or("-".to_owned(), |v| v.to_string()))
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.name, self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Hypergraph;

    fn setup() -> (Hypergraph, Relation, Relation) {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1), (b, 10)]));
        r.insert(Tuple::from_pairs([(a, 2), (b, 20)]));
        r.insert(Tuple::from_pairs([(a, 3), (b, 10)]));
        let mut s = Relation::new("S", h.node_set(["B", "C"]).unwrap());
        s.insert(Tuple::from_pairs([(b, 10), (c, 100)]));
        s.insert(Tuple::from_pairs([(b, 10), (c, 200)]));
        s.insert(Tuple::from_pairs([(b, 30), (c, 300)]));
        (h, r, s)
    }

    #[test]
    fn tuple_projection_and_join() {
        let (h, _, _) = setup();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let t = Tuple::from_pairs([(a, 1), (b, 10)]);
        let u = Tuple::from_pairs([(b, 10), (c, 5)]);
        let v = Tuple::from_pairs([(b, 11), (c, 5)]);
        assert!(t.joinable(&u));
        assert!(!t.joinable(&v));
        let joined = t.join(&u).unwrap();
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(c), Some(&Value::Int(5)));
        assert_eq!(t.project(&h.node_set(["A"]).unwrap()).len(), 1);
        assert!(t.join(&v).is_none());
    }

    #[test]
    fn natural_join_matches_shared_attributes() {
        let (h, r, s) = setup();
        let j = r.join(&s);
        // Tuples with B=10 join: (1,10)×2, (3,10)×2 → 4; B=20/30 do not.
        assert_eq!(j.len(), 4);
        assert_eq!(j.attributes(), &h.node_set(["A", "B", "C"]).unwrap());
        for t in j.tuples() {
            assert_eq!(t.get(h.node("B").unwrap()), Some(&Value::Int(10)));
        }
    }

    #[test]
    fn join_is_commutative_on_contents() {
        let (_, r, s) = setup();
        assert!(r.join(&s).same_contents(&s.join(&r)));
    }

    #[test]
    fn projection_eliminates_duplicates() {
        let (h, r, _) = setup();
        let p = r.project(&h.node_set(["B"]).unwrap());
        assert_eq!(p.len(), 2); // values 10 and 20
    }

    #[test]
    fn selection_filters() {
        let (h, r, _) = setup();
        let sel = r.select_eq(h.node("B").unwrap(), &Value::Int(10));
        assert_eq!(sel.len(), 2);
        assert!(sel
            .tuples()
            .all(|t| t.get(h.node("B").unwrap()) == Some(&Value::Int(10))));
    }

    #[test]
    fn semijoin_keeps_matching_tuples_only() {
        let (h, r, s) = setup();
        let sj = r.semijoin(&s);
        assert_eq!(sj.len(), 2); // A=1 and A=3 (B=10 matches), A=2 (B=20) dropped
        assert_eq!(sj.attributes(), &h.node_set(["A", "B"]).unwrap());
        // Semijoin against an empty relation empties the result.
        let empty = Relation::new("E", h.node_set(["B", "C"]).unwrap());
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    #[should_panic(expected = "tuple attributes do not match")]
    fn schema_mismatch_panics() {
        let (h, mut r, _) = setup();
        let c = h.node("C").unwrap();
        r.insert(Tuple::from_pairs([(c, 1)]));
    }

    #[test]
    fn display_contains_rows() {
        let (h, r, _) = setup();
        let s = r.display(h.universe());
        assert!(s.contains("R (A, B)"));
        assert!(s.lines().count() >= 4);
        let t = r.tuples().next().unwrap();
        assert!(t.display(h.universe()).starts_with('('));
    }

    #[test]
    fn join_with_disjoint_schemas_is_cross_product() {
        let h = Hypergraph::from_edges([vec!["A"], vec!["B"]]).unwrap();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut r = Relation::new("R", h.node_set(["A"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1)]));
        r.insert(Tuple::from_pairs([(a, 2)]));
        let mut s = Relation::new("S", h.node_set(["B"]).unwrap());
        s.insert(Tuple::from_pairs([(b, 7)]));
        s.insert(Tuple::from_pairs([(b, 8)]));
        s.insert(Tuple::from_pairs([(b, 9)]));
        assert_eq!(r.join(&s).len(), 6);
    }
}
