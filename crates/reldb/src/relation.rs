//! Relations with set semantics, stored columnar-flat.
//!
//! A [`Relation`] is a named set of tuples over a fixed set of attributes.
//! Attributes are hypergraph nodes ([`NodeId`]), so a relation corresponds
//! directly to one "object" (hyperedge) of the paper's universal-relation
//! model.
//!
//! # Storage layout
//!
//! Values are interned once into a shared [`ValuePool`]; a stored tuple is a
//! fixed-width row of `u32` handles laid out in the relation's schema
//! attribute order (ascending [`NodeId`]), and all rows live in one
//! contiguous `Vec<u32>` buffer.  Set semantics are enforced by an
//! open-addressing hash index over the rows.  The relational kernels —
//! [`Relation::join`], [`Relation::semijoin`], [`Relation::project`],
//! [`Relation::select_eq`] — resolve attribute positions once per call and
//! then work purely on handle rows: no `Value` is cloned, hashed or compared
//! on the hot path.
//!
//! [`Tuple`] remains the boundary type for building and reading individual
//! tuples; it is decoded from / encoded into rows only at the edges.

use crate::pool::{ValuePool, NO_HANDLE};
use crate::value::Value;
use hypergraph::{NodeId, NodeSet, Universe};
use std::fmt;

/// A tuple: an assignment of values to attributes.
///
/// This is the *exchange* representation used to build and inspect
/// relations; inside a [`Relation`] tuples are stored as flat interned rows.
/// Pairs are kept sorted by attribute, matching the relation column order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    pairs: Vec<(NodeId, Value)>,
}

impl Tuple {
    /// The empty tuple.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tuple from `(attribute, value)` pairs.  A repeated attribute
    /// keeps the last value given.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, V)>,
        V: Into<Value>,
    {
        let mut t = Tuple::new();
        for (a, v) in pairs {
            t.set(a, v);
        }
        t
    }

    /// The value of attribute `a`, if present.
    pub fn get(&self, a: NodeId) -> Option<&Value> {
        self.pairs
            .binary_search_by_key(&a, |(k, _)| *k)
            .ok()
            .map(|i| &self.pairs[i].1)
    }

    /// Sets the value of attribute `a`.
    pub fn set(&mut self, a: NodeId, v: impl Into<Value>) {
        match self.pairs.binary_search_by_key(&a, |(k, _)| *k) {
            Ok(i) => self.pairs[i].1 = v.into(),
            Err(i) => self.pairs.insert(i, (a, v.into())),
        }
    }

    /// Iterates over `(attribute, value)` pairs in ascending attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Value)> + '_ {
        self.pairs.iter().map(|(a, v)| (*a, v))
    }

    /// The attributes this tuple assigns.
    pub fn attributes(&self) -> NodeSet {
        self.pairs.iter().map(|(a, _)| *a).collect()
    }

    /// Restriction of the tuple to the attributes in `attrs`.
    pub fn project(&self, attrs: &NodeSet) -> Tuple {
        Tuple {
            pairs: self
                .pairs
                .iter()
                .filter(|(a, _)| attrs.contains(*a))
                .cloned()
                .collect(),
        }
    }

    /// True if the two tuples agree on every attribute they share.
    pub fn joinable(&self, other: &Tuple) -> bool {
        self.pairs
            .iter()
            .all(|(a, v)| other.get(*a).is_none_or(|w| w == v))
    }

    /// The combined tuple, if the two agree on shared attributes.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if !self.joinable(other) {
            return None;
        }
        let mut out = self.clone();
        for (a, v) in other.iter() {
            out.set(a, v.clone());
        }
        Some(out)
    }

    /// Number of attributes assigned.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the tuple assigns no attribute.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Renders the tuple with attribute names from `universe`.
    pub fn display(&self, universe: &Universe) -> String {
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(a, v)| format!("{}={}", universe.name(*a), v))
            .collect();
        format!("({})", parts.join(", "))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(h: u64, w: u32) -> u64 {
    (h ^ u64::from(w)).wrapping_mul(FNV_PRIME)
}

/// Finalizer mixing the accumulator so the low bits (used as table index)
/// depend on every input word.
#[inline]
fn fnv_finish(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[inline]
fn hash_row(row: &[u32]) -> u64 {
    fnv_finish(row.iter().fold(FNV_OFFSET, |h, &w| fnv_step(h, w)))
}

#[inline]
fn hash_key(row: &[u32], pos: &[usize]) -> u64 {
    fnv_finish(pos.iter().fold(FNV_OFFSET, |h, &p| fnv_step(h, row[p])))
}

/// Open-addressing hash table storing `u32` entry ids.  The caller supplies
/// hashing and equality (entries usually denote rows in some buffer), keeps
/// its own occupancy count, and must call [`RowTable::reserve`] before every
/// insertion so a free slot always exists.
#[derive(Debug, Clone, Default)]
struct RowTable {
    slots: Vec<u32>,
}

impl RowTable {
    /// Grows the table if inserting one more entry would exceed a 3/4 load
    /// factor, rehashing existing entries with `hash_of`.
    fn reserve(&mut self, occupied: usize, hash_of: impl Fn(u32) -> u64) {
        if (occupied + 1) * 4 > self.slots.len() * 3 {
            let cap = ((occupied + 1) * 2).next_power_of_two().max(8);
            let mut slots = vec![NO_HANDLE; cap];
            let mask = cap - 1;
            for &id in &self.slots {
                if id == NO_HANDLE {
                    continue;
                }
                let mut i = hash_of(id) as usize & mask;
                while slots[i] != NO_HANDLE {
                    i = (i + 1) & mask;
                }
                slots[i] = id;
            }
            self.slots = slots;
        }
    }

    /// The entry equal (per `eq`) to the probed key, if present.
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let id = self.slots[i];
            if id == NO_HANDLE {
                return None;
            }
            if eq(id) {
                return Some(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Probes for the key: `(slot, true)` if an equal entry occupies `slot`,
    /// `(slot, false)` if `slot` is the free slot where it belongs.  Call
    /// [`RowTable::reserve`] first.
    fn find_slot(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> (usize, bool) {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let id = self.slots[i];
            if id == NO_HANDLE {
                return (i, false);
            }
            if eq(id) {
                return (i, true);
            }
            i = (i + 1) & mask;
        }
    }

    fn get(&self, slot: usize) -> u32 {
        self.slots[slot]
    }

    fn set(&mut self, slot: usize, id: u32) {
        self.slots[slot] = id;
    }
}

#[inline]
fn row_of(buf: &[u32], width: usize, id: u32) -> &[u32] {
    &buf[id as usize * width..(id as usize + 1) * width]
}

/// Positions (column indices) of the attributes of `of` within `cols`.
/// Both are in ascending attribute order, so position sequences computed for
/// the same `of` against two relations align column-for-column.
fn positions(of: &NodeSet, cols: &[NodeId]) -> Vec<usize> {
    cols.iter()
        .enumerate()
        .filter(|(_, c)| of.contains(**c))
        .map(|(i, _)| i)
        .collect()
}

/// A relation: a named set of tuples over a fixed attribute set, stored as
/// flat interned rows (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    attributes: NodeSet,
    /// The attributes in ascending id order; column `i` of every row holds
    /// the value of `cols[i]`.
    cols: Box<[NodeId]>,
    pool: ValuePool,
    /// Row-major handle buffer of `len * cols.len()` words.
    rows: Vec<u32>,
    /// Number of rows (kept separately: zero-width relations have rows too).
    len: usize,
    /// Set-semantics index over the rows.
    index: RowTable,
}

impl Relation {
    /// Creates an empty relation over `attributes` with its own fresh
    /// [`ValuePool`].  Relations meant to be joined together should share a
    /// pool (see [`Relation::with_pool`]); the kernels still work across
    /// pools, at the cost of a handle translation per operation.
    pub fn new(name: impl Into<String>, attributes: NodeSet) -> Self {
        Self::with_pool(name, attributes, ValuePool::new())
    }

    /// Creates an empty relation over `attributes` interning into `pool`.
    pub fn with_pool(name: impl Into<String>, attributes: NodeSet, pool: ValuePool) -> Self {
        let cols: Box<[NodeId]> = attributes.iter().collect();
        Self {
            name: name.into(),
            attributes,
            cols,
            pool,
            rows: Vec::new(),
            len: 0,
            index: RowTable::default(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the relation renamed to `name`.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's attribute set.
    pub fn attributes(&self) -> &NodeSet {
        &self.attributes
    }

    /// The attributes in column (ascending id) order — the order in which
    /// [`Relation::insert_values`] expects values.
    pub fn columns(&self) -> &[NodeId] {
        &self.cols
    }

    /// The value pool this relation interns into.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    fn width(&self) -> usize {
        self.cols.len()
    }

    fn col_pos(&self, a: NodeId) -> Option<usize> {
        self.cols.binary_search(&a).ok()
    }

    fn row(&self, i: usize) -> &[u32] {
        let w = self.width();
        &self.rows[i * w..(i + 1) * w]
    }

    fn rows_iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        let w = self.width();
        (0..self.len).map(move |i| &self.rows[i * w..(i + 1) * w])
    }

    /// Decodes row `i` into a [`Tuple`].
    pub fn tuple_at(&self, i: usize) -> Tuple {
        assert!(i < self.len, "row index out of range");
        Tuple {
            pairs: self
                .cols
                .iter()
                .zip(self.row(i))
                .map(|(&a, &h)| (a, self.decode_cell(&None, h)))
                .collect(),
        }
    }

    /// The dictionary snapshot for decoding `cells` cells, or `None` when
    /// the relation is small enough that per-handle lookups beat cloning
    /// the (shared, possibly much larger) dictionary.
    fn decode_snapshot(&self, cells: usize) -> Option<Vec<Value>> {
        (cells >= self.pool.len()).then(|| self.pool.snapshot())
    }

    /// Decodes one handle, through the snapshot when one was taken.
    fn decode_cell(&self, snapshot: &Option<Vec<Value>>, h: u32) -> Value {
        match snapshot {
            Some(values) => values[h as usize].clone(),
            None => self.pool.value(h),
        }
    }

    /// The tuples, decoded, in storage (first-insertion) order.
    ///
    /// Bulk decodes snapshot the value dictionary once up front (one pool
    /// lock total rather than one per cell); small relations decode via
    /// per-handle lookups instead.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let values = self.decode_snapshot(self.len * self.width());
        (0..self.len).map(move |i| Tuple {
            pairs: self
                .cols
                .iter()
                .zip(self.row(i))
                .map(|(&a, &h)| (a, self.decode_cell(&values, h)))
                .collect(),
        })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an already-encoded row, deduplicating.  Returns `true` if new.
    fn insert_row(&mut self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.width());
        let w = self.width();
        let rows = &self.rows;
        let index = &mut self.index;
        let h = hash_row(row);
        index.reserve(self.len, |id| hash_row(row_of(rows, w, id)));
        let (slot, occupied) = index.find_slot(h, |id| row_of(rows, w, id) == row);
        if occupied {
            return false;
        }
        let id = u32::try_from(self.len).expect("relation too large");
        // Row ids share the u32 space with the NO_HANDLE sentinel used by
        // the tables and join chains; the last id must stay below it.
        assert!(id < NO_HANDLE, "relation too large");
        self.rows.extend_from_slice(row);
        self.index.set(slot, id);
        self.len += 1;
        true
    }

    /// Rebuilds the dedup index from scratch (rows are known distinct).
    fn rebuild_index(&mut self) {
        let w = self.width();
        let rows = &self.rows;
        let mut table = RowTable::default();
        for id in 0..self.len as u32 {
            let h = hash_row(row_of(rows, w, id));
            table.reserve(id as usize, |j| hash_row(row_of(rows, w, j)));
            let (slot, occupied) =
                table.find_slot(h, |j| row_of(rows, w, j) == row_of(rows, w, id));
            debug_assert!(!occupied, "rebuild_index requires distinct rows");
            table.set(slot, id);
        }
        self.index = table;
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    /// Panics if the tuple's attributes differ from the relation's schema —
    /// schema mismatches are programming errors, not data errors.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.attributes(),
            self.attributes,
            "tuple attributes do not match relation {:?}",
            self.name
        );
        let mut row = Vec::with_capacity(self.width());
        // Tuple pairs are sorted by attribute id == column order.
        self.pool
            .intern_row(t.pairs.iter().map(|(_, v)| v), &mut row);
        self.insert_row(&row)
    }

    /// Inserts a tuple given as values in **column order** (ascending
    /// attribute id, see [`Relation::columns`]) — the allocation-light bulk
    /// loading path used by the data generators and loaders.
    ///
    /// # Panics
    /// Panics if the number of values differs from the relation's arity.
    pub fn insert_values<I, V>(&mut self, values: I) -> bool
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let vals: Vec<Value> = values.into_iter().map(Into::into).collect();
        assert_eq!(
            vals.len(),
            self.width(),
            "value count does not match relation {:?} arity",
            self.name
        );
        let mut row = Vec::with_capacity(vals.len());
        self.pool.intern_row(vals.iter(), &mut row);
        self.insert_row(&row)
    }

    /// True if the relation contains `t`.
    pub fn contains(&self, t: &Tuple) -> bool {
        if t.attributes() != self.attributes {
            return false;
        }
        let mut row = Vec::with_capacity(self.width());
        for (_, v) in t.iter() {
            match self.pool.get(v) {
                Some(h) => row.push(h),
                // A value never interned here cannot occur in any row.
                None => return false,
            }
        }
        let w = self.width();
        self.index
            .find(hash_row(&row), |id| row_of(&self.rows, w, id) == &row[..])
            .is_some()
    }

    /// Projection onto `attrs` (which need not be a subset of the schema;
    /// extra attributes are ignored), with duplicate elimination.
    pub fn project(&self, attrs: &NodeSet) -> Relation {
        let kept = self.attributes.intersection(attrs);
        let mut out = Relation::with_pool(format!("π({})", self.name), kept, self.pool.clone());
        let pos: Vec<usize> = out
            .cols
            .iter()
            .map(|c| self.col_pos(*c).expect("kept ⊆ schema"))
            .collect();
        let mut buf = vec![0u32; pos.len()];
        for i in 0..self.len {
            let row = self.row(i);
            for (j, &p) in pos.iter().enumerate() {
                buf[j] = row[p];
            }
            out.insert_row(&buf);
        }
        out
    }

    /// Selection: keep tuples where attribute `a` equals `v`.
    pub fn select_eq(&self, a: NodeId, v: &Value) -> Relation {
        let mut out = Relation::with_pool(
            format!("σ({})", self.name),
            self.attributes.clone(),
            self.pool.clone(),
        );
        let (Some(p), Some(h)) = (self.col_pos(a), self.pool.get(v)) else {
            // Attribute outside the schema or value never seen: empty result.
            return out;
        };
        for i in 0..self.len {
            let row = self.row(i);
            if row[p] == h {
                out.insert_row(row);
            }
        }
        out
    }

    /// Natural join, as a positional hash join: the smaller side is indexed
    /// by its shared-attribute key columns, the larger side probes, and
    /// output rows are assembled by copying handles.
    pub fn join(&self, other: &Relation) -> Relation {
        let attrs = self.attributes.union(&other.attributes);
        let name = format!("({}⋈{})", self.name, other.name);
        let mut out = Relation::with_pool(name, attrs, self.pool.clone());
        if self.len == 0 || other.len == 0 {
            return out;
        }
        // Unify pools so handle equality is value equality; output values
        // come from both sides, so unknown values are interned.
        let converted;
        let other = if self.pool.same_pool(&other.pool) {
            other
        } else {
            converted = other.reintern_into(&self.pool);
            &converted
        };
        let shared = self.attributes.intersection(&other.attributes);
        let (build, probe) = if self.len <= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let build_key = positions(&shared, &build.cols);
        let probe_key = positions(&shared, &probe.cols);
        // Where each output column comes from; prefer the probe side so the
        // shared columns are copied from the row already in hand.
        let sources: Vec<(bool, usize)> = out
            .cols
            .iter()
            .map(|c| match probe.col_pos(*c) {
                Some(p) => (true, p),
                None => (false, build.col_pos(*c).expect("union attr")),
            })
            .collect();
        // Index the build side: one table entry per distinct key, rows with
        // equal keys chained through `next`.
        let bw = build.width();
        let brows = &build.rows;
        let mut next: Vec<u32> = vec![NO_HANDLE; build.len];
        let mut table = RowTable::default();
        let mut distinct = 0usize;
        for r in 0..build.len as u32 {
            let h = hash_key(row_of(brows, bw, r), &build_key);
            table.reserve(distinct, |id| hash_key(row_of(brows, bw, id), &build_key));
            let (slot, occupied) = table.find_slot(h, |id| {
                let (a, b) = (row_of(brows, bw, id), row_of(brows, bw, r));
                build_key.iter().all(|&p| a[p] == b[p])
            });
            if occupied {
                next[r as usize] = table.get(slot);
                table.set(slot, r);
            } else {
                table.set(slot, r);
                distinct += 1;
            }
        }
        // Probe and emit.
        let k = probe_key.len();
        let mut keybuf = vec![0u32; k];
        let mut rowbuf = vec![0u32; out.width()];
        for prow in probe.rows_iter() {
            for (j, &p) in probe_key.iter().enumerate() {
                keybuf[j] = prow[p];
            }
            let head = table.find(hash_row(&keybuf), |id| {
                let b = row_of(brows, bw, id);
                build_key.iter().zip(&keybuf).all(|(&p, &v)| b[p] == v)
            });
            let Some(mut cur) = head else { continue };
            loop {
                let brow = row_of(brows, bw, cur);
                for (c, &(from_probe, p)) in sources.iter().enumerate() {
                    rowbuf[c] = if from_probe { prow[p] } else { brow[p] };
                }
                out.insert_row(&rowbuf);
                if next[cur as usize] == NO_HANDLE {
                    break;
                }
                cur = next[cur as usize];
            }
        }
        out
    }

    /// For each row of `self`, whether some row of `other` matches it on the
    /// shared attributes — the common kernel behind the semijoin family.
    fn semijoin_mask(&self, other: &Relation) -> Vec<bool> {
        let shared = self.attributes.intersection(&other.attributes);
        if shared.is_empty() {
            // π_∅(other) is {()} iff other is nonempty; every tuple matches.
            return vec![!other.is_empty(); self.len];
        }
        let my_pos = positions(&shared, &self.cols);
        let their_pos = positions(&shared, &other.cols);
        let k = my_pos.len();
        // Handle translation (read-only): other-pool values unknown to our
        // pool cannot occur in our rows, so their rows are simply skipped.
        let trans = if self.pool.same_pool(&other.pool) {
            None
        } else {
            Some(other.pool.translation_to(&self.pool, false))
        };
        // Gather the (translated) key columns of `other` into one buffer.
        let mut keys: Vec<u32> = Vec::with_capacity(other.len * k);
        'rows: for row in other.rows_iter() {
            let start = keys.len();
            for &p in &their_pos {
                let h = match &trans {
                    None => row[p],
                    Some(table) => {
                        let t = table[row[p] as usize];
                        if t == NO_HANDLE {
                            keys.truncate(start);
                            continue 'rows;
                        }
                        t
                    }
                };
                keys.push(h);
            }
        }
        let nkeys = keys.len() / k;
        let key_at = |id: u32| &keys[id as usize * k..(id as usize + 1) * k];
        let mut table = RowTable::default();
        let mut distinct = 0usize;
        for i in 0..nkeys as u32 {
            let h = hash_row(key_at(i));
            table.reserve(distinct, |id| hash_row(key_at(id)));
            let (slot, occupied) = table.find_slot(h, |id| key_at(id) == key_at(i));
            if !occupied {
                table.set(slot, i);
                distinct += 1;
            }
        }
        let mut keybuf = vec![0u32; k];
        self.rows_iter()
            .map(|row| {
                for (j, &p) in my_pos.iter().enumerate() {
                    keybuf[j] = row[p];
                }
                table
                    .find(hash_row(&keybuf), |id| key_at(id) == &keybuf[..])
                    .is_some()
            })
            .collect()
    }

    /// Semijoin: the tuples of `self` that join with at least one tuple of
    /// `other`.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let mask = self.semijoin_mask(other);
        let mut out = Relation::with_pool(
            self.name.clone(),
            self.attributes.clone(),
            self.pool.clone(),
        );
        for (row, &keep) in self.rows_iter().zip(&mask) {
            if keep {
                out.insert_row(row);
            }
        }
        out
    }

    /// Number of tuples the semijoin with `other` would keep, without
    /// materializing it.
    pub fn semijoin_count(&self, other: &Relation) -> usize {
        self.semijoin_mask(other).iter().filter(|&&b| b).count()
    }

    /// In-place semijoin: removes the tuples of `self` that match no tuple
    /// of `other`, compacting the row buffer without reallocating.  Returns
    /// the number of tuples removed.
    pub fn retain_semijoin(&mut self, other: &Relation) -> usize {
        let mask = self.semijoin_mask(other);
        let removed = mask.iter().filter(|&&b| !b).count();
        if removed == 0 {
            return 0;
        }
        let w = self.width();
        let mut write = 0usize;
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                if write != i {
                    self.rows.copy_within(i * w..(i + 1) * w, write * w);
                }
                write += 1;
            }
        }
        self.rows.truncate(write * w);
        self.len = write;
        self.rebuild_index();
        removed
    }

    /// A copy of the relation with every value re-interned into `pool`.
    ///
    /// Translation is lazy per distinct handle: only values the rows
    /// actually use enter `pool` (this relation's own pool may be a shared
    /// dictionary far larger than the relation).
    fn reintern_into(&self, pool: &ValuePool) -> Relation {
        let mut cache: Vec<u32> = vec![NO_HANDLE; self.pool.len()];
        let mut out = Relation::with_pool(self.name.clone(), self.attributes.clone(), pool.clone());
        let mut buf = vec![0u32; self.width()];
        for row in self.rows_iter() {
            for (j, &h) in row.iter().enumerate() {
                if cache[h as usize] == NO_HANDLE {
                    cache[h as usize] = pool.intern(&self.pool.value(h));
                }
                buf[j] = cache[h as usize];
            }
            out.insert_row(&buf);
        }
        out
    }

    /// True if the two relations hold exactly the same tuples over the same
    /// attributes (names are ignored).
    pub fn same_contents(&self, other: &Relation) -> bool {
        if self.attributes != other.attributes || self.len != other.len {
            return false;
        }
        if self.width() == 0 {
            return true; // equal row counts of the empty tuple
        }
        let trans = if self.pool.same_pool(&other.pool) {
            None
        } else {
            Some(other.pool.translation_to(&self.pool, false))
        };
        let w = self.width();
        let mut buf = vec![0u32; w];
        for row in other.rows_iter() {
            match &trans {
                None => buf.copy_from_slice(row),
                Some(table) => {
                    for (j, &h) in row.iter().enumerate() {
                        let t = table[h as usize];
                        if t == NO_HANDLE {
                            return false;
                        }
                        buf[j] = t;
                    }
                }
            }
            if self
                .index
                .find(hash_row(&buf), |id| row_of(&self.rows, w, id) == &buf[..])
                .is_none()
            {
                return false;
            }
        }
        true
    }

    /// Renders the relation as a small table using `universe` for names.
    pub fn display(&self, universe: &Universe) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} (", self.name));
        out.push_str(
            &self
                .cols
                .iter()
                .map(|a| universe.name(*a).to_owned())
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(&format!(") — {} tuples\n", self.len));
        let values = self.decode_snapshot(self.len * self.width());
        for row in self.rows_iter() {
            out.push_str("  ");
            out.push_str(
                &row.iter()
                    .map(|&h| self.decode_cell(&values, h).to_string())
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push('\n');
        }
        out
    }
}

impl PartialEq for Relation {
    /// Equal when name, attributes and tuple contents all agree.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.same_contents(other)
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.name, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Hypergraph;

    fn setup() -> (Hypergraph, Relation, Relation) {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1), (b, 10)]));
        r.insert(Tuple::from_pairs([(a, 2), (b, 20)]));
        r.insert(Tuple::from_pairs([(a, 3), (b, 10)]));
        let mut s = Relation::new("S", h.node_set(["B", "C"]).unwrap());
        s.insert(Tuple::from_pairs([(b, 10), (c, 100)]));
        s.insert(Tuple::from_pairs([(b, 10), (c, 200)]));
        s.insert(Tuple::from_pairs([(b, 30), (c, 300)]));
        (h, r, s)
    }

    #[test]
    fn tuple_projection_and_join() {
        let (h, _, _) = setup();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let t = Tuple::from_pairs([(a, 1), (b, 10)]);
        let u = Tuple::from_pairs([(b, 10), (c, 5)]);
        let v = Tuple::from_pairs([(b, 11), (c, 5)]);
        assert!(t.joinable(&u));
        assert!(!t.joinable(&v));
        let joined = t.join(&u).unwrap();
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(c), Some(&Value::Int(5)));
        assert_eq!(t.project(&h.node_set(["A"]).unwrap()).len(), 1);
        assert!(t.join(&v).is_none());
    }

    #[test]
    fn tuple_set_replaces_and_keeps_order() {
        let (h, _, _) = setup();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut t = Tuple::from_pairs([(b, 1), (a, 2), (b, 3)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b), Some(&Value::Int(3)));
        t.set(a, 9);
        assert_eq!(t.get(a), Some(&Value::Int(9)));
        let attrs: Vec<NodeId> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(attrs, vec![a, b]);
    }

    #[test]
    fn natural_join_matches_shared_attributes() {
        let (h, r, s) = setup();
        let j = r.join(&s);
        // Tuples with B=10 join: (1,10)×2, (3,10)×2 → 4; B=20/30 do not.
        assert_eq!(j.len(), 4);
        assert_eq!(j.attributes(), &h.node_set(["A", "B", "C"]).unwrap());
        for t in j.tuples() {
            assert_eq!(t.get(h.node("B").unwrap()), Some(&Value::Int(10)));
        }
    }

    #[test]
    fn join_is_commutative_on_contents() {
        let (_, r, s) = setup();
        assert!(r.join(&s).same_contents(&s.join(&r)));
    }

    #[test]
    fn projection_eliminates_duplicates() {
        let (h, r, _) = setup();
        let p = r.project(&h.node_set(["B"]).unwrap());
        assert_eq!(p.len(), 2); // values 10 and 20
    }

    #[test]
    fn projection_onto_nothing_yields_one_empty_tuple() {
        let (_, r, _) = setup();
        let p = r.project(&NodeSet::new());
        assert_eq!(p.len(), 1);
        assert!(p.attributes().is_empty());
        assert!(p.tuples().next().unwrap().is_empty());
    }

    #[test]
    fn selection_filters() {
        let (h, r, _) = setup();
        let sel = r.select_eq(h.node("B").unwrap(), &Value::Int(10));
        assert_eq!(sel.len(), 2);
        assert!(sel
            .tuples()
            .all(|t| t.get(h.node("B").unwrap()) == Some(&Value::Int(10))));
        // Unknown value or out-of-schema attribute: empty result.
        assert!(r
            .select_eq(h.node("B").unwrap(), &Value::Int(77))
            .is_empty());
        assert!(r
            .select_eq(h.node("C").unwrap(), &Value::Int(10))
            .is_empty());
    }

    #[test]
    fn semijoin_keeps_matching_tuples_only() {
        let (h, r, s) = setup();
        let sj = r.semijoin(&s);
        assert_eq!(sj.len(), 2); // A=1 and A=3 (B=10 matches), A=2 (B=20) dropped
        assert_eq!(sj.attributes(), &h.node_set(["A", "B"]).unwrap());
        assert_eq!(r.semijoin_count(&s), 2);
        // Semijoin against an empty relation empties the result.
        let empty = Relation::new("E", h.node_set(["B", "C"]).unwrap());
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    fn retain_semijoin_matches_semijoin() {
        let (_, mut r, s) = setup();
        let expected = r.semijoin(&s);
        let removed = r.retain_semijoin(&s);
        assert_eq!(removed, 1);
        assert!(r.same_contents(&expected));
        // Idempotent afterwards.
        assert_eq!(r.retain_semijoin(&s), 0);
    }

    #[test]
    fn cross_pool_operations_translate_handles() {
        // r and s are built independently, so they intern into different
        // pools; every kernel must still agree with the shared-pool result.
        let (h, r, s) = setup();
        assert!(!r.pool().same_pool(s.pool()));
        let mut s_shared = Relation::with_pool("S", s.attributes().clone(), r.pool().clone());
        for t in s.tuples() {
            s_shared.insert(t);
        }
        assert!(s.same_contents(&s_shared));
        assert!(r.join(&s).same_contents(&r.join(&s_shared)));
        assert!(r.semijoin(&s).same_contents(&r.semijoin(&s_shared)));
        let _ = h;
    }

    #[test]
    fn insert_values_matches_insert() {
        let (h, r, _) = setup();
        let mut v = Relation::new("V", h.node_set(["A", "B"]).unwrap());
        // Column order is ascending attribute id: A then B.
        assert_eq!(v.columns().len(), 2);
        assert!(v.insert_values([1i64, 10]));
        assert!(v.insert_values([2i64, 20]));
        assert!(v.insert_values([3i64, 10]));
        assert!(!v.insert_values([1i64, 10]));
        assert!(v.same_contents(&r));
    }

    #[test]
    #[should_panic(expected = "tuple attributes do not match")]
    fn schema_mismatch_panics() {
        let (h, mut r, _) = setup();
        let c = h.node("C").unwrap();
        r.insert(Tuple::from_pairs([(c, 1)]));
    }

    #[test]
    fn display_contains_rows() {
        let (h, r, _) = setup();
        let s = r.display(h.universe());
        assert!(s.contains("R (A, B)"));
        assert!(s.lines().count() >= 4);
        let t = r.tuples().next().unwrap();
        assert!(t.display(h.universe()).starts_with('('));
    }

    #[test]
    fn contains_and_tuple_roundtrip() {
        let (h, r, _) = setup();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        assert!(r.contains(&Tuple::from_pairs([(a, 1), (b, 10)])));
        assert!(!r.contains(&Tuple::from_pairs([(a, 1), (b, 11)])));
        assert!(!r.contains(&Tuple::from_pairs([(a, 1)])));
        for (i, t) in r.tuples().enumerate() {
            assert_eq!(r.tuple_at(i), t);
            assert!(r.contains(&t));
        }
    }

    #[test]
    fn join_with_disjoint_schemas_is_cross_product() {
        let h = Hypergraph::from_edges([vec!["A"], vec!["B"]]).unwrap();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut r = Relation::new("R", h.node_set(["A"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1)]));
        r.insert(Tuple::from_pairs([(a, 2)]));
        let mut s = Relation::new("S", h.node_set(["B"]).unwrap());
        s.insert(Tuple::from_pairs([(b, 7)]));
        s.insert(Tuple::from_pairs([(b, 8)]));
        s.insert(Tuple::from_pairs([(b, 9)]));
        assert_eq!(r.join(&s).len(), 6);
    }

    #[test]
    fn dedup_survives_many_inserts_and_growth() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        for i in 0..1000i64 {
            assert!(r.insert(Tuple::from_pairs([(a, i), (b, i % 7)])));
        }
        for i in 0..1000i64 {
            assert!(!r.insert(Tuple::from_pairs([(a, i), (b, i % 7)])));
        }
        assert_eq!(r.len(), 1000);
    }
}
