//! Relations with set semantics, stored columnar-flat.
//!
//! A [`Relation`] is a named set of tuples over a fixed set of attributes.
//! Attributes are hypergraph nodes ([`NodeId`]), so a relation corresponds
//! directly to one "object" (hyperedge) of the paper's universal-relation
//! model.
//!
//! # Storage layout
//!
//! Values are interned once into a shared [`ValuePool`]; a stored tuple is a
//! fixed-width row of `u32` handles laid out in the relation's schema
//! attribute order (ascending [`NodeId`]), and all rows live in one
//! contiguous `Vec<u32>` buffer.  Set semantics are enforced by an
//! open-addressing hash index over the rows.  The relational kernels —
//! [`Relation::join`], [`Relation::semijoin`], [`Relation::project`],
//! [`Relation::select_eq`] — resolve attribute positions once per call and
//! then work purely on handle rows: no `Value` is cloned, hashed or compared
//! on the hot path.
//!
//! [`Tuple`] remains the boundary type for building and reading individual
//! tuples; it is decoded from / encoded into rows only at the edges.

use crate::exec::{
    ExecPolicy, Job, JoinStrategy, MorselQueue, WorkerLease, WorkerPool,
    AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO, AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
    DEFAULT_MORSEL_ROWS,
};
use crate::govern::{unfail, EngineError, Governor, NoopGovernor, CHECK_BATCH};
use crate::metrics::{Kernel, MetricsSink, NoopMetrics, OpKind, OpMetrics};
use crate::pool::{ValuePool, NO_HANDLE};
use crate::value::Value;
use hypergraph::{NodeId, NodeSet, Universe};
use std::fmt;
use std::sync::mpsc::channel;
use std::sync::Arc;

/// What a semijoin mask kernel did, reported alongside the mask so metered
/// callers can assemble one semijoin [`OpMetrics`] record.
struct MaskStats {
    /// The physical kernel that ran (post-`Auto` resolution).
    kernel: Kernel,
    /// Build-side structure entries (distinct keys indexed or deduped).
    built: usize,
    /// Build-side (other relation) input rows.
    build_rows: usize,
    /// Sampled distinct-key ratio, when sampled.
    ratio: Option<f64>,
}

/// A tuple: an assignment of values to attributes.
///
/// This is the *exchange* representation used to build and inspect
/// relations; inside a [`Relation`] tuples are stored as flat interned rows.
/// Pairs are kept sorted by attribute, matching the relation column order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    pairs: Vec<(NodeId, Value)>,
}

impl Tuple {
    /// The empty tuple.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tuple from `(attribute, value)` pairs.  A repeated attribute
    /// keeps the last value given.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, V)>,
        V: Into<Value>,
    {
        let mut t = Tuple::new();
        for (a, v) in pairs {
            t.set(a, v);
        }
        t
    }

    /// The value of attribute `a`, if present.
    pub fn get(&self, a: NodeId) -> Option<&Value> {
        self.pairs
            .binary_search_by_key(&a, |(k, _)| *k)
            .ok()
            .map(|i| &self.pairs[i].1)
    }

    /// Sets the value of attribute `a`.
    pub fn set(&mut self, a: NodeId, v: impl Into<Value>) {
        match self.pairs.binary_search_by_key(&a, |(k, _)| *k) {
            Ok(i) => self.pairs[i].1 = v.into(),
            Err(i) => self.pairs.insert(i, (a, v.into())),
        }
    }

    /// Iterates over `(attribute, value)` pairs in ascending attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Value)> + '_ {
        self.pairs.iter().map(|(a, v)| (*a, v))
    }

    /// The attributes this tuple assigns.
    pub fn attributes(&self) -> NodeSet {
        self.pairs.iter().map(|(a, _)| *a).collect()
    }

    /// Restriction of the tuple to the attributes in `attrs`.
    pub fn project(&self, attrs: &NodeSet) -> Tuple {
        Tuple {
            pairs: self
                .pairs
                .iter()
                .filter(|(a, _)| attrs.contains(*a))
                .cloned()
                .collect(),
        }
    }

    /// True if the two tuples agree on every attribute they share.
    pub fn joinable(&self, other: &Tuple) -> bool {
        self.pairs
            .iter()
            .all(|(a, v)| other.get(*a).is_none_or(|w| w == v))
    }

    /// The combined tuple, if the two agree on shared attributes.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if !self.joinable(other) {
            return None;
        }
        let mut out = self.clone();
        for (a, v) in other.iter() {
            out.set(a, v.clone());
        }
        Some(out)
    }

    /// Number of attributes assigned.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the tuple assigns no attribute.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Renders the tuple with attribute names from `universe`.
    pub fn display(&self, universe: &Universe) -> String {
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(a, v)| format!("{}={}", universe.name(*a), v))
            .collect();
        format!("({})", parts.join(", "))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(h: u64, w: u32) -> u64 {
    (h ^ u64::from(w)).wrapping_mul(FNV_PRIME)
}

/// Finalizer mixing the accumulator so the low bits (used as table index)
/// depend on every input word.
#[inline]
fn fnv_finish(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[inline]
fn hash_row(row: &[u32]) -> u64 {
    fnv_finish(row.iter().fold(FNV_OFFSET, |h, &w| fnv_step(h, w)))
}

#[inline]
fn hash_key(row: &[u32], pos: &[usize]) -> u64 {
    fnv_finish(pos.iter().fold(FNV_OFFSET, |h, &p| fnv_step(h, row[p])))
}

/// Open-addressing hash table storing `u32` entry ids.  The caller supplies
/// hashing and equality (entries usually denote rows in some buffer), keeps
/// its own occupancy count, and must call [`RowTable::reserve`] before every
/// insertion so a free slot always exists.
#[derive(Debug, Clone, Default)]
struct RowTable {
    slots: Vec<u32>,
}

impl RowTable {
    /// Grows the table if inserting one more entry would exceed a 3/4 load
    /// factor, rehashing existing entries with `hash_of`.
    fn reserve(&mut self, occupied: usize, hash_of: impl Fn(u32) -> u64) {
        if (occupied + 1) * 4 > self.slots.len() * 3 {
            let cap = ((occupied + 1) * 2).next_power_of_two().max(8);
            let mut slots = vec![NO_HANDLE; cap];
            let mask = cap - 1;
            for &id in &self.slots {
                if id == NO_HANDLE {
                    continue;
                }
                let mut i = hash_of(id) as usize & mask;
                while slots[i] != NO_HANDLE {
                    i = (i + 1) & mask;
                }
                slots[i] = id;
            }
            self.slots = slots;
        }
    }

    /// The entry equal (per `eq`) to the probed key, if present.
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let id = self.slots[i];
            if id == NO_HANDLE {
                return None;
            }
            if eq(id) {
                return Some(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Probes for the key: `(slot, true)` if an equal entry occupies `slot`,
    /// `(slot, false)` if `slot` is the free slot where it belongs.  Call
    /// [`RowTable::reserve`] first.
    fn find_slot(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> (usize, bool) {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let id = self.slots[i];
            if id == NO_HANDLE {
                return (i, false);
            }
            if eq(id) {
                return (i, true);
            }
            i = (i + 1) & mask;
        }
    }

    fn get(&self, slot: usize) -> u32 {
        self.slots[slot]
    }

    fn set(&mut self, slot: usize, id: u32) {
        self.slots[slot] = id;
    }
}

#[inline]
fn row_of(buf: &[u32], width: usize, id: u32) -> &[u32] {
    &buf[id as usize * width..(id as usize + 1) * width]
}

/// The probe step of the hash semijoin mask, shared verbatim by the
/// sequential loop and every parallel shard so the two paths cannot drift
/// apart: is `key` present in `table` (which indexes the `k`-wide keys of
/// `other_keys`)?
#[inline]
fn probe_key(table: &RowTable, other_keys: &[u32], k: usize, key: &[u32]) -> bool {
    table
        .find(hash_row(key), |id| row_of(other_keys, k, id) == key)
        .is_some()
}

/// Positions (column indices) of the attributes of `of` within `cols`.
/// Both are in ascending attribute order, so position sequences computed for
/// the same `of` against two relations align column-for-column.
fn positions(of: &NodeSet, cols: &[NodeId]) -> Vec<usize> {
    cols.iter()
        .enumerate()
        .filter(|(_, c)| of.contains(**c))
        .map(|(i, _)| i)
        .collect()
}

/// The key-extraction plan shared by the binary join/semijoin kernels: the
/// shared attributes' column positions on both sides, plus the read-only
/// handle translation needed when the two relations intern into different
/// pools.  Factoring this out keeps the hash and sort-merge flavors of each
/// kernel byte-for-byte identical in how they see keys.
struct JoinKeys {
    left_pos: Vec<usize>,
    right_pos: Vec<usize>,
    trans: Option<Vec<u32>>,
}

impl JoinKeys {
    /// The plan for `left` against `right`, or `None` when they share no
    /// attributes (the degenerate cross-product / nonempty-test cases).
    fn new(left: &Relation, right: &Relation) -> Option<Self> {
        let shared = left.attributes.intersection(&right.attributes);
        if shared.is_empty() {
            return None;
        }
        let trans = if left.pool.same_pool(&right.pool) {
            None
        } else {
            // Read-only translation: right-pool values unknown to the left
            // pool cannot occur in any left row, so right rows holding them
            // are skipped at gather time.
            Some(right.pool.translation_to(&left.pool, false))
        };
        Some(Self {
            left_pos: positions(&shared, &left.cols),
            right_pos: positions(&shared, &right.cols),
            trans,
        })
    }

    /// The plan for two relations already sharing one pool (the join
    /// kernels unify pools before calling); `shared` must be nonempty.
    fn for_unified(left: &Relation, right: &Relation, shared: &NodeSet) -> Self {
        Self {
            left_pos: positions(shared, &left.cols),
            right_pos: positions(shared, &right.cols),
            trans: None,
        }
    }

    /// Key width.
    fn k(&self) -> usize {
        self.left_pos.len()
    }

    /// Flattened key columns of `rel` at `pos` (no translation).
    fn gather(&self, rel: &Relation, pos: &[usize]) -> Vec<u32> {
        let mut keys = Vec::with_capacity(rel.len * pos.len());
        for row in rel.rows_iter() {
            keys.extend(pos.iter().map(|&p| row[p]));
        }
        keys
    }

    /// Flattened key columns of the right side, translated into left-pool
    /// handles; rows holding values unknown to the left pool are skipped
    /// (they cannot match anything on the left).
    fn gather_translated(&self, right: &Relation) -> Vec<u32> {
        let Some(table) = &self.trans else {
            return self.gather(right, &self.right_pos);
        };
        let mut keys = Vec::with_capacity(right.len * self.k());
        'rows: for row in right.rows_iter() {
            let start = keys.len();
            for &p in &self.right_pos {
                let t = table[row[p] as usize];
                if t == NO_HANDLE {
                    keys.truncate(start);
                    continue 'rows;
                }
                keys.push(t);
            }
        }
        keys
    }
}

/// Sorts the ids `0..n` by their flattened `k`-wide keys, returning the
/// permutation.  Single-column keys go through a counting/radix pass
/// ([`sort_ids_single_key`]); wider keys compare key slices.  The row
/// buffers themselves are never reordered.
fn sort_ids_by_key(keys: &[u32], k: usize, n: usize) -> Vec<u32> {
    debug_assert_eq!(keys.len(), n * k);
    if k == 1 {
        return sort_ids_single_key(keys, n);
    }
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.sort_unstable_by(|&a, &b| {
        keys[a as usize * k..(a as usize + 1) * k].cmp(&keys[b as usize * k..(b as usize + 1) * k])
    });
    ids
}

/// Inputs below which [`sort_ids_single_key`] keeps the packed comparison
/// sort: count-array setup would dominate the handful of comparisons.
const SORT_COUNTING_MIN_ROWS: usize = 64;

/// Inputs below which sparse (non-counting) keys keep the packed comparison
/// sort: the radix passes touch two 64Ki-entry count arrays regardless of
/// `n`, so they only pay off once `n log n` comparisons outweigh ~128Ki of
/// fixed bookkeeping.
const SORT_RADIX_MIN_ROWS: usize = 4096;

/// Sorts the ids `0..n` by a single `u32` key column, exploiting that keys
/// are interned [`ValuePool`] handles — dense small integers:
///
/// * **counting sort** when the largest key is within a small factor of the
///   row count: one `O(n + max)` pass instead of `O(n log n)` comparisons;
/// * **LSD radix sort** (two stable 16-bit passes) when the key space is
///   sparse and the input is large enough to amortize the fixed count
///   arrays;
/// * the original packed `(key, id)` comparison sort otherwise.
///
/// All three paths order equal keys by ascending id (the packed sort's tie
/// rule), so callers observe identical permutations regardless of path.
fn sort_ids_single_key(keys: &[u32], n: usize) -> Vec<u32> {
    if n >= SORT_COUNTING_MIN_ROWS {
        let max = keys.iter().copied().max().unwrap_or(0) as usize;
        if max <= 4 * n {
            // Dense handles: one stable counting pass.
            let mut counts = vec![0u32; max + 2];
            for &key in keys {
                counts[key as usize + 1] += 1;
            }
            for i in 1..counts.len() {
                counts[i] += counts[i - 1];
            }
            let mut out = vec![0u32; n];
            for (id, &key) in keys.iter().enumerate() {
                let slot = &mut counts[key as usize];
                out[*slot as usize] = id as u32;
                *slot += 1;
            }
            return out;
        }
        if n >= SORT_RADIX_MIN_ROWS {
            // Sparse keys: two stable 16-bit LSD radix passes over
            // (key → id).
            let mut cur: Vec<u32> = (0..n as u32).collect();
            let mut next = vec![0u32; n];
            for shift in [0u32, 16] {
                let mut counts = vec![0u32; (1 << 16) + 1];
                for &id in &cur {
                    counts[((keys[id as usize] >> shift) & 0xffff) as usize + 1] += 1;
                }
                for i in 1..counts.len() {
                    counts[i] += counts[i - 1];
                }
                for &id in &cur {
                    let d = ((keys[id as usize] >> shift) & 0xffff) as usize;
                    next[counts[d] as usize] = id;
                    counts[d] += 1;
                }
                std::mem::swap(&mut cur, &mut next);
            }
            return cur;
        }
    }
    let mut packed: Vec<u64> = (0..n)
        .map(|i| (u64::from(keys[i]) << 32) | i as u64)
        .collect();
    packed.sort_unstable();
    packed
        .into_iter()
        .map(|p| (p & 0xffff_ffff) as u32)
        .collect()
}

/// The end (exclusive) of the equal-key run starting at `start` in a
/// key-sorted id permutation.
fn run_end(keys: &[u32], sorted: &[u32], start: usize, k: usize) -> usize {
    let key = &keys[sorted[start] as usize * k..(sorted[start] as usize + 1) * k];
    let mut end = start + 1;
    while end < sorted.len()
        && &keys[sorted[end] as usize * k..(sorted[end] as usize + 1) * k] == key
    {
        end += 1;
    }
    end
}

/// A relation: a named set of tuples over a fixed attribute set, stored as
/// flat interned rows (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    attributes: NodeSet,
    /// The attributes in ascending id order; column `i` of every row holds
    /// the value of `cols[i]`.
    cols: Box<[NodeId]>,
    pool: ValuePool,
    /// Row-major handle buffer of `len * cols.len()` words.
    rows: Vec<u32>,
    /// Number of rows (kept separately: zero-width relations have rows too).
    len: usize,
    /// Set-semantics index over the rows.
    index: RowTable,
    /// True when `index` no longer reflects `rows` (set by the in-place
    /// reducer, which shrinks rows without touching the index).  Readers
    /// that need the index rebuild it lazily; the reducer's repeated
    /// `retain_semijoin` calls never pay for rebuilds they don't use.
    index_stale: bool,
    /// How many times the index has been rebuilt — observability for the
    /// deferred-rebuild optimization (tests assert rebuilds are saved).
    index_rebuilds: usize,
}

impl Relation {
    /// Creates an empty relation over `attributes` with its own fresh
    /// [`ValuePool`].  Relations meant to be joined together should share a
    /// pool (see [`Relation::with_pool`]); the kernels still work across
    /// pools, at the cost of a handle translation per operation.
    pub fn new(name: impl Into<String>, attributes: NodeSet) -> Self {
        Self::with_pool(name, attributes, ValuePool::new())
    }

    /// Creates an empty relation over `attributes` interning into `pool`.
    pub fn with_pool(name: impl Into<String>, attributes: NodeSet, pool: ValuePool) -> Self {
        let cols: Box<[NodeId]> = attributes.iter().collect();
        Self {
            name: name.into(),
            attributes,
            cols,
            pool,
            rows: Vec::new(),
            len: 0,
            index: RowTable::default(),
            index_stale: false,
            index_rebuilds: 0,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the relation renamed to `name`.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The relation's attribute set.
    pub fn attributes(&self) -> &NodeSet {
        &self.attributes
    }

    /// The attributes in column (ascending id) order — the order in which
    /// [`Relation::insert_values`] expects values.
    pub fn columns(&self) -> &[NodeId] {
        &self.cols
    }

    /// The value pool this relation interns into.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    fn width(&self) -> usize {
        self.cols.len()
    }

    fn col_pos(&self, a: NodeId) -> Option<usize> {
        self.cols.binary_search(&a).ok()
    }

    fn row(&self, i: usize) -> &[u32] {
        let w = self.width();
        &self.rows[i * w..(i + 1) * w]
    }

    fn rows_iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        let w = self.width();
        (0..self.len).map(move |i| &self.rows[i * w..(i + 1) * w])
    }

    /// Decodes row `i` into a [`Tuple`].
    pub fn tuple_at(&self, i: usize) -> Tuple {
        assert!(i < self.len, "row index out of range");
        Tuple {
            pairs: self
                .cols
                .iter()
                .zip(self.row(i))
                .map(|(&a, &h)| (a, self.decode_cell(&None, h)))
                .collect(),
        }
    }

    /// The dictionary snapshot for decoding `cells` cells, or `None` when
    /// the relation is small enough that per-handle lookups beat cloning
    /// the (shared, possibly much larger) dictionary.
    fn decode_snapshot(&self, cells: usize) -> Option<Vec<Value>> {
        (cells >= self.pool.len()).then(|| self.pool.snapshot())
    }

    /// Decodes one handle, through the snapshot when one was taken.
    fn decode_cell(&self, snapshot: &Option<Vec<Value>>, h: u32) -> Value {
        match snapshot {
            Some(values) => values[h as usize].clone(),
            None => self.pool.value(h),
        }
    }

    /// The tuples, decoded, in storage (first-insertion) order.
    ///
    /// Bulk decodes snapshot the value dictionary once up front (one pool
    /// lock total rather than one per cell); small relations decode via
    /// per-handle lookups instead.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let values = self.decode_snapshot(self.len * self.width());
        (0..self.len).map(move |i| Tuple {
            pairs: self
                .cols
                .iter()
                .zip(self.row(i))
                .map(|(&a, &h)| (a, self.decode_cell(&values, h)))
                .collect(),
        })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an already-encoded row, deduplicating.  Returns `true` if new.
    fn insert_row(&mut self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.width());
        self.ensure_index();
        let w = self.width();
        let rows = &self.rows;
        let index = &mut self.index;
        let h = hash_row(row);
        index.reserve(self.len, |id| hash_row(row_of(rows, w, id)));
        let (slot, occupied) = index.find_slot(h, |id| row_of(rows, w, id) == row);
        if occupied {
            return false;
        }
        let id = u32::try_from(self.len).expect("relation too large");
        // Row ids share the u32 space with the NO_HANDLE sentinel used by
        // the tables and join chains; the last id must stay below it.
        assert!(id < NO_HANDLE, "relation too large");
        self.rows.extend_from_slice(row);
        self.index.set(slot, id);
        self.len += 1;
        true
    }

    /// Appends already-encoded rows that are known to be distinct from each
    /// other and from every stored row — the bulk merge path of the
    /// morsel-parallel join (whose output rows are distinct by
    /// construction) and the snapshot loader (whose rows were written from
    /// a live, deduplicated relation).  The dedup-index rebuild is
    /// deferred, so bulk loads never pay for an index they may not consult.
    pub(crate) fn push_rows_unchecked(&mut self, rows: &[u32]) {
        let w = self.width();
        if w == 0 || rows.is_empty() {
            return;
        }
        debug_assert_eq!(rows.len() % w, 0);
        let new_len = self.len + rows.len() / w;
        // Row ids share the u32 space with the NO_HANDLE sentinel.
        assert!(
            u32::try_from(new_len).is_ok_and(|v| v < NO_HANDLE),
            "relation too large"
        );
        self.rows.extend_from_slice(rows);
        self.len = new_len;
        self.index_stale = true;
    }

    /// The flat row buffer (`len * width` handle words, schema column
    /// order) — the snapshot writer's view of the stored rows.
    pub(crate) fn raw_rows(&self) -> &[u32] {
        &self.rows[..self.len * self.width()]
    }

    /// Planning-time selectivity probe: the sampled distinct-key ratio on
    /// the columns shared with `attrs` (`1.0` when nothing is shared, i.e.
    /// a join on those attributes would be a cross product).  Used by bag
    /// materialization to order cover joins smallest-intermediate-first.
    pub(crate) fn estimate_distinct_ratio_on(&self, attrs: &NodeSet) -> f64 {
        let shared = self.attributes.intersection(attrs);
        if shared.is_empty() {
            return 1.0;
        }
        self.estimate_distinct_key_ratio(&positions(&shared, &self.cols))
    }

    /// Assembles a relation directly from a flat handle buffer — the
    /// snapshot loader's entry.  Rows are trusted to be distinct (they were
    /// written from a live relation, which enforces set semantics) and the
    /// dedup index is left stale for lazy rebuild; handles are validated
    /// against `pool` so a corrupt buffer yields `Err` instead of
    /// out-of-bounds panics later.
    pub(crate) fn from_raw_parts(
        name: String,
        attributes: NodeSet,
        pool: ValuePool,
        rows: Vec<u32>,
        len: usize,
    ) -> Result<Self, String> {
        let mut out = Relation::with_pool(name, attributes, pool);
        let w = out.width();
        if rows.len() != len * w {
            return Err(format!(
                "row buffer holds {} words, expected {len} rows × {w} columns",
                rows.len()
            ));
        }
        if !u32::try_from(len).is_ok_and(|v| v < NO_HANDLE) {
            return Err(format!("row count {len} exceeds the engine's row-id space"));
        }
        let pool_len = out.pool.len();
        if let Some(&bad) = rows.iter().find(|&&h| h as usize >= pool_len) {
            return Err(format!(
                "row handle {bad} is outside the value pool ({pool_len} values)"
            ));
        }
        out.rows = rows;
        out.len = len;
        out.index_stale = len > 0;
        Ok(out)
    }

    /// Builds a fresh dedup table over the current rows (known distinct).
    fn build_table(&self) -> RowTable {
        let w = self.width();
        let rows = &self.rows;
        let mut table = RowTable::default();
        for id in 0..self.len as u32 {
            let h = hash_row(row_of(rows, w, id));
            table.reserve(id as usize, |j| hash_row(row_of(rows, w, j)));
            let (slot, occupied) =
                table.find_slot(h, |j| row_of(rows, w, j) == row_of(rows, w, id));
            debug_assert!(!occupied, "build_table requires distinct rows");
            table.set(slot, id);
        }
        table
    }

    /// Rebuilds the stale dedup index if needed — called lazily by the
    /// mutating paths that actually consult it.
    fn ensure_index(&mut self) {
        if self.index_stale {
            self.index = self.build_table();
            self.index_stale = false;
            self.index_rebuilds += 1;
        }
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    /// Panics if the tuple's attributes differ from the relation's schema —
    /// schema mismatches are programming errors, not data errors.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.attributes(),
            self.attributes,
            "tuple attributes do not match relation {:?}",
            self.name
        );
        let mut row = Vec::with_capacity(self.width());
        // Tuple pairs are sorted by attribute id == column order.
        self.pool
            .intern_row(t.pairs.iter().map(|(_, v)| v), &mut row);
        self.insert_row(&row)
    }

    /// Inserts a tuple given as values in **column order** (ascending
    /// attribute id, see [`Relation::columns`]) — the allocation-light bulk
    /// loading path used by the data generators and loaders.
    ///
    /// # Panics
    /// Panics if the number of values differs from the relation's arity.
    pub fn insert_values<I, V>(&mut self, values: I) -> bool
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let vals: Vec<Value> = values.into_iter().map(Into::into).collect();
        assert_eq!(
            vals.len(),
            self.width(),
            "value count does not match relation {:?} arity",
            self.name
        );
        let mut row = Vec::with_capacity(vals.len());
        self.pool.intern_row(vals.iter(), &mut row);
        self.insert_row(&row)
    }

    /// True if the relation contains `t`.
    pub fn contains(&self, t: &Tuple) -> bool {
        if t.attributes() != self.attributes {
            return false;
        }
        let mut row = Vec::with_capacity(self.width());
        for (_, v) in t.iter() {
            match self.pool.get(v) {
                Some(h) => row.push(h),
                // A value never interned here cannot occur in any row.
                None => return false,
            }
        }
        let w = self.width();
        if self.index_stale {
            // Deferred-rebuild path: a linear scan costs no more than the
            // rebuild this read-only call would otherwise force.
            return self.rows_iter().any(|r| r == &row[..]);
        }
        self.index
            .find(hash_row(&row), |id| row_of(&self.rows, w, id) == &row[..])
            .is_some()
    }

    /// Projection onto `attrs` (which need not be a subset of the schema;
    /// extra attributes are ignored), with duplicate elimination.
    pub fn project(&self, attrs: &NodeSet) -> Relation {
        let kept = self.attributes.intersection(attrs);
        let mut out = Relation::with_pool(format!("π({})", self.name), kept, self.pool.clone());
        let pos: Vec<usize> = out
            .cols
            .iter()
            .map(|c| self.col_pos(*c).expect("kept ⊆ schema"))
            .collect();
        let mut buf = vec![0u32; pos.len()];
        for i in 0..self.len {
            let row = self.row(i);
            for (j, &p) in pos.iter().enumerate() {
                buf[j] = row[p];
            }
            out.insert_row(&buf);
        }
        out
    }

    /// Selection: keep tuples where attribute `a` equals `v`.
    pub fn select_eq(&self, a: NodeId, v: &Value) -> Relation {
        self.select_eq_all(&[(a, v.clone())])
    }

    /// Conjunctive selection: keep tuples satisfying *every* `attribute =
    /// value` predicate, in one row scan with one output build.  The query
    /// layer fuses all selections pushed onto a relation into a single call
    /// instead of materializing one intermediate relation per selection.
    ///
    /// A predicate on an attribute outside the schema, or naming a value
    /// never interned here, makes the result empty (nothing can match).
    pub fn select_eq_all(&self, preds: &[(NodeId, Value)]) -> Relation {
        let mut out = Relation::with_pool(
            format!("σ({})", self.name),
            self.attributes.clone(),
            self.pool.clone(),
        );
        let mut tests: Vec<(usize, u32)> = Vec::with_capacity(preds.len());
        for (a, v) in preds {
            match (self.col_pos(*a), self.pool.get(v)) {
                (Some(p), Some(h)) => tests.push((p, h)),
                _ => return out,
            }
        }
        for i in 0..self.len {
            let row = self.row(i);
            if tests.iter().all(|&(p, h)| row[p] == h) {
                out.insert_row(row);
            }
        }
        out
    }

    /// Natural join with the default hash kernel — see [`Relation::join_with`].
    pub fn join(&self, other: &Relation) -> Relation {
        self.join_with(other, JoinStrategy::Hash)
    }

    /// Natural join under an explicit [`JoinStrategy`].
    ///
    /// `Hash` indexes the smaller side by its shared-attribute key columns
    /// and probes with the larger; `SortMerge` sorts row-id permutations of
    /// both sides by the key columns (never the row buffers themselves) and
    /// merges equal-key runs; `Auto` picks by the estimated distinct-key
    /// ratio of the larger side (heavy key duplication favors sort-merge),
    /// against the calibrated [`AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO`]
    /// threshold.
    pub fn join_with(&self, other: &Relation, strategy: JoinStrategy) -> Relation {
        unfail(self.join_impl(
            other,
            strategy,
            AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            &WorkerLease::inline(),
            DEFAULT_MORSEL_ROWS,
            &NoopMetrics,
            &NoopGovernor,
        ))
    }

    /// Natural join under an [`ExecPolicy`]: the policy picks the strategy
    /// and the [`JoinStrategy::Auto`] distinct-key-ratio threshold (its
    /// thread knobs do not apply to a single binary join).
    pub fn join_with_exec(&self, other: &Relation, policy: &ExecPolicy) -> Relation {
        self.join_metered(other, policy, &NoopMetrics)
    }

    /// Natural join under an [`ExecPolicy`], recording one
    /// [`OpMetrics`] record into `sink` — the metered form of
    /// [`Relation::join_with_exec`], which is this function monomorphized
    /// over [`NoopMetrics`].
    pub fn join_metered<M: MetricsSink>(
        &self,
        other: &Relation,
        policy: &ExecPolicy,
        sink: &M,
    ) -> Relation {
        unfail(self.join_governed(other, policy, sink, &NoopGovernor))
    }

    /// Natural join under an [`ExecPolicy`] with governance checkpoints:
    /// the governed form of [`Relation::join_metered`] (which is this
    /// function monomorphized over [`NoopGovernor`]).  The join aborts with
    /// the governor's error at the next probe-batch checkpoint after a
    /// cancellation, deadline overrun or budget exhaustion; neither input
    /// relation is ever mutated.
    ///
    /// When the policy asks for threads and the probe side spans more than
    /// one morsel ([`ExecPolicy::morsel_rows`]), workers are leased and the
    /// hash probe loop runs morsel-driven; callers already holding a lease
    /// should use [`Relation::join_sharded_governed`] instead.
    pub fn join_governed<M: MetricsSink, G: Governor>(
        &self,
        other: &Relation,
        policy: &ExecPolicy,
        sink: &M,
        gov: &G,
    ) -> Result<Relation, EngineError> {
        let probe_rows = self.len.max(other.len);
        // Only pay for a lease when the morsel path could actually engage.
        let probe =
            if probe_rows > policy.morsel_rows.max(1) && policy.effective_threads(probe_rows) > 1 {
                policy.lease(probe_rows)
            } else {
                WorkerLease::inline()
            };
        self.join_sharded_governed(other, policy, &probe, sink, gov)
    }

    /// Natural join with the probe loop sharded across an explicit worker
    /// lease: workers pull [`ExecPolicy::morsel_rows`]-row morsels of the
    /// probe side from a shared [`MorselQueue`] and emit their output
    /// chunks independently (the hash kernel's output rows are distinct by
    /// construction — every output row embeds its probe row — so chunks
    /// concatenate without a dedup pass).  This is the entry the
    /// level-synchronous join phase uses when a level has fewer targets
    /// than workers; [`Relation::join_governed`] is the self-leasing form.
    pub fn join_sharded_governed<M: MetricsSink, G: Governor>(
        &self,
        other: &Relation,
        policy: &ExecPolicy,
        probe: &WorkerLease,
        sink: &M,
        gov: &G,
    ) -> Result<Relation, EngineError> {
        self.join_impl(
            other,
            policy.strategy,
            policy.auto_sortmerge_max_distinct_ratio,
            probe,
            policy.morsel_rows,
            sink,
            gov,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn join_impl<M: MetricsSink, G: Governor>(
        &self,
        other: &Relation,
        strategy: JoinStrategy,
        auto_ratio: f64,
        probe_workers: &WorkerLease,
        morsel_rows: usize,
        sink: &M,
        gov: &G,
    ) -> Result<Relation, EngineError> {
        let attrs = self.attributes.union(&other.attributes);
        let name = format!("({}⋈{})", self.name, other.name);
        let out = Relation::with_pool(name, attrs, self.pool.clone());
        if self.len == 0 || other.len == 0 {
            return Ok(out);
        }
        if G::ENABLED {
            gov.checkpoint()?;
            // Budget the build-side structure before building it: the hash
            // kernel chains ~2 words per build row, sort-merge holds two
            // id permutations of comparable size.
            gov.approve_alloc(self.len.min(other.len) as u64, 2)?;
        }
        // Unify pools so handle equality is value equality; output values
        // come from both sides, so unknown values are interned.
        let converted;
        let other = if self.pool.same_pool(&other.pool) {
            other
        } else {
            converted = other.reintern_into(&self.pool);
            &converted
        };
        let shared = self.attributes.intersection(&other.attributes);
        let (kernel, ratio) = if shared.is_empty() {
            // Cross product: there is no key to sort by.
            (Kernel::Hash, None)
        } else {
            let larger = if self.len >= other.len { self } else { other };
            larger.resolve_kernel(
                strategy,
                &positions(&shared, &larger.cols),
                auto_ratio,
                M::ENABLED,
            )
        };
        let (out, built) = match kernel {
            Kernel::SortMerge => self.sort_merge_join_into(other, &shared, out, gov)?,
            Kernel::Hash => {
                self.hash_join_into(other, &shared, out, probe_workers, morsel_rows, gov)?
            }
        };
        if M::ENABLED {
            sink.record_op(OpMetrics {
                kind: OpKind::Join,
                kernel,
                probed: self.len.max(other.len) as u64,
                kept: out.len as u64,
                built: built as u64,
                build_rows: self.len.min(other.len) as u64,
                distinct_ratio: ratio,
            });
        }
        Ok(out)
    }

    /// The hash-join kernel: build the smaller side, probe the larger.
    /// Pools are already unified.  Also returns the number of distinct keys
    /// the build side contributed (the table's entry count — the "built"
    /// metric).
    ///
    /// With a multi-worker lease and a probe side spanning more than one
    /// morsel, the probe loop runs morsel-driven (see
    /// [`Relation::join_sharded_governed`]); otherwise it runs inline.
    fn hash_join_into<G: Governor>(
        &self,
        other: &Relation,
        shared: &NodeSet,
        mut out: Relation,
        probe_workers: &WorkerLease,
        morsel_rows: usize,
        gov: &G,
    ) -> Result<(Relation, usize), EngineError> {
        let (build, probe) = if self.len <= other.len {
            (self, other)
        } else {
            (other, self)
        };
        let build_key = positions(shared, &build.cols);
        let probe_key = positions(shared, &probe.cols);
        // Where each output column comes from; prefer the probe side so the
        // shared columns are copied from the row already in hand.
        let sources: Vec<(bool, usize)> = out
            .cols
            .iter()
            .map(|c| match probe.col_pos(*c) {
                Some(p) => (true, p),
                None => (false, build.col_pos(*c).expect("union attr")),
            })
            .collect();
        // Index the build side: one table entry per distinct key, rows with
        // equal keys chained through `next`.
        let bw = build.width();
        let brows = &build.rows;
        let mut next: Vec<u32> = vec![NO_HANDLE; build.len];
        let mut table = RowTable::default();
        let mut distinct = 0usize;
        for r in 0..build.len as u32 {
            let h = hash_key(row_of(brows, bw, r), &build_key);
            table.reserve(distinct, |id| hash_key(row_of(brows, bw, id), &build_key));
            let (slot, occupied) = table.find_slot(h, |id| {
                let (a, b) = (row_of(brows, bw, id), row_of(brows, bw, r));
                build_key.iter().all(|&p| a[p] == b[p])
            });
            if occupied {
                next[r as usize] = table.get(slot);
                table.set(slot, r);
            } else {
                table.set(slot, r);
                distinct += 1;
            }
        }
        let k = probe_key.len();
        let threads = probe_workers.threads();
        let queue = MorselQueue::new(probe.len, morsel_rows);
        if threads > 1 && queue.morsels() > 1 {
            // Morsel-driven probe: clone the flat row buffers once into
            // shared read-only state (jobs are 'static owned closures),
            // then let every worker pull morsels from the queue and emit
            // its output chunks.  Each output row embeds its (distinct)
            // probe row, so chunks hold pairwise-distinct rows and
            // concatenate — in morsel order, reproducing the sequential
            // probe's output order — without a dedup pass.
            if G::ENABLED {
                // Charge the shared row-buffer clones (4 bytes per word).
                gov.approve_alloc((build.rows.len() + probe.rows.len()) as u64, 1)?;
            }
            let out_w = out.width();
            let bw = build.width();
            let pw = probe.width();
            let state = Arc::new((
                table,
                next,
                build.rows.clone(),
                probe.rows.clone(),
                queue,
                build_key,
                probe_key,
                sources,
            ));
            let (tx, rx) = channel();
            let jobs: Vec<Job> = (0..threads)
                .map(|_| {
                    let state = Arc::clone(&state);
                    let tx = tx.clone();
                    let gov = gov.clone();
                    Box::new(move || {
                        let (table, next, brows, prows, queue, build_key, probe_key, sources) =
                            &*state;
                        let mut keybuf = vec![0u32; k];
                        let mut rowbuf = vec![0u32; out_w];
                        let mut step = 0usize;
                        while let Some(range) = queue.next() {
                            let mut chunk: Vec<u32> = Vec::new();
                            let mut res = Ok(());
                            let mut charged = 0usize;
                            'rows: for pi in range.clone() {
                                let prow = row_of(prows, pw, pi as u32);
                                if G::ENABLED {
                                    step += 1;
                                    if step >= CHECK_BATCH {
                                        step = 0;
                                        let emitted = chunk.len() / out_w.max(1);
                                        res = gov.checkpoint().and_then(|()| {
                                            gov.approve_alloc((emitted - charged) as u64, out_w)
                                        });
                                        if res.is_err() {
                                            break 'rows;
                                        }
                                        charged = emitted;
                                    }
                                }
                                for (j, &p) in probe_key.iter().enumerate() {
                                    keybuf[j] = prow[p];
                                }
                                let head = table.find(hash_row(&keybuf), |id| {
                                    let b = row_of(brows, bw, id);
                                    build_key.iter().zip(&keybuf).all(|(&p, &v)| b[p] == v)
                                });
                                let Some(mut cur) = head else { continue };
                                loop {
                                    let brow = row_of(brows, bw, cur);
                                    for (c, &(from_probe, p)) in sources.iter().enumerate() {
                                        rowbuf[c] = if from_probe { prow[p] } else { brow[p] };
                                    }
                                    chunk.extend_from_slice(&rowbuf);
                                    if G::ENABLED {
                                        step += 1;
                                    }
                                    if next[cur as usize] == NO_HANDLE {
                                        break;
                                    }
                                    cur = next[cur as usize];
                                }
                            }
                            if G::ENABLED && res.is_ok() {
                                let emitted = chunk.len() / out_w.max(1);
                                if emitted > charged {
                                    res = gov.approve_alloc((emitted - charged) as u64, out_w);
                                }
                            }
                            let failed = res.is_err();
                            let _ = tx.send((range.start, res.map(|()| chunk)));
                            if failed {
                                break; // stop pulling; peers abort at their next checkpoint
                            }
                        }
                    }) as Job
                })
                .collect();
            drop(tx);
            probe_workers.run(jobs);
            let mut chunks: Vec<(usize, Vec<u32>)> = Vec::new();
            let mut first_err = None;
            for (start, chunk) in rx.try_iter() {
                match chunk {
                    Ok(chunk) => chunks.push((start, chunk)),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            chunks.sort_unstable_by_key(|&(start, _)| start);
            for (_, chunk) in &chunks {
                out.push_rows_unchecked(chunk);
            }
            return Ok((out, distinct));
        }
        // Probe and emit.  Governance runs at batch granularity: every
        // CHECK_BATCH probed/emitted rows the kernel checkpoints and charges
        // the output growth since the last charge against the budget.
        let mut keybuf = vec![0u32; k];
        let mut rowbuf = vec![0u32; out.width()];
        let mut step = 0usize;
        let mut charged = 0usize;
        for prow in probe.rows_iter() {
            if G::ENABLED {
                step += 1;
                if step >= CHECK_BATCH {
                    step = 0;
                    gov.checkpoint()?;
                    gov.approve_alloc((out.len - charged) as u64, out.width())?;
                    charged = out.len;
                }
            }
            for (j, &p) in probe_key.iter().enumerate() {
                keybuf[j] = prow[p];
            }
            let head = table.find(hash_row(&keybuf), |id| {
                let b = row_of(brows, bw, id);
                build_key.iter().zip(&keybuf).all(|(&p, &v)| b[p] == v)
            });
            let Some(mut cur) = head else { continue };
            loop {
                let brow = row_of(brows, bw, cur);
                for (c, &(from_probe, p)) in sources.iter().enumerate() {
                    rowbuf[c] = if from_probe { prow[p] } else { brow[p] };
                }
                out.insert_row(&rowbuf);
                if G::ENABLED {
                    step += 1;
                }
                if next[cur as usize] == NO_HANDLE {
                    break;
                }
                cur = next[cur as usize];
            }
        }
        if G::ENABLED && out.len > charged {
            gov.approve_alloc((out.len - charged) as u64, out.width())?;
        }
        Ok((out, distinct))
    }

    /// The sort-merge join kernel: sort row-id permutations of both sides
    /// by the shared key columns, then emit the cross product of every pair
    /// of equal-key runs.  Pools are already unified and `shared` is
    /// nonempty.  Also returns the number of sorted permutation entries
    /// built (both sides — the "built" metric).
    fn sort_merge_join_into<G: Governor>(
        &self,
        other: &Relation,
        shared: &NodeSet,
        mut out: Relation,
        gov: &G,
    ) -> Result<(Relation, usize), EngineError> {
        let keys = JoinKeys::for_unified(self, other, shared);
        let left_keys = keys.gather(self, &keys.left_pos);
        let right_keys = keys.gather(other, &keys.right_pos);
        let left_sorted = sort_ids_by_key(&left_keys, keys.k(), self.len);
        let right_sorted = sort_ids_by_key(&right_keys, keys.k(), other.len);
        // Where each output column comes from; shared columns read the left.
        let sources: Vec<(bool, usize)> = out
            .cols
            .iter()
            .map(|c| match self.col_pos(*c) {
                Some(p) => (true, p),
                None => (false, other.col_pos(*c).expect("union attr")),
            })
            .collect();
        let mut rowbuf = vec![0u32; out.width()];
        let k = keys.k();
        fn key_of(buf: &[u32], id: u32, k: usize) -> &[u32] {
            &buf[id as usize * k..(id as usize + 1) * k]
        }
        // Merge and emit, checkpointing/charging every CHECK_BATCH
        // merge-steps-or-emitted-rows (same batch discipline as the hash
        // kernel's probe loop).
        let mut step = 0usize;
        let mut charged = 0usize;
        let (mut li, mut ri) = (0usize, 0usize);
        while li < left_sorted.len() && ri < right_sorted.len() {
            if G::ENABLED && step >= CHECK_BATCH {
                step = 0;
                gov.checkpoint()?;
                gov.approve_alloc((out.len - charged) as u64, out.width())?;
                charged = out.len;
            }
            let lkey = key_of(&left_keys, left_sorted[li], k);
            let rkey = key_of(&right_keys, right_sorted[ri], k);
            match lkey.cmp(rkey) {
                std::cmp::Ordering::Less => {
                    li += 1;
                    step += 1;
                }
                std::cmp::Ordering::Greater => {
                    ri += 1;
                    step += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Bound the two equal-key runs, emit their cross product.
                    let lend = run_end(&left_keys, &left_sorted, li, k);
                    let rend = run_end(&right_keys, &right_sorted, ri, k);
                    for &lid in &left_sorted[li..lend] {
                        let lrow = self.row(lid as usize);
                        for &rid in &right_sorted[ri..rend] {
                            let rrow = other.row(rid as usize);
                            for (c, &(from_left, p)) in sources.iter().enumerate() {
                                rowbuf[c] = if from_left { lrow[p] } else { rrow[p] };
                            }
                            out.insert_row(&rowbuf);
                        }
                    }
                    step += (lend - li) * (rend - ri);
                    li = lend;
                    ri = rend;
                }
            }
        }
        if G::ENABLED && out.len > charged {
            gov.approve_alloc((out.len - charged) as u64, out.width())?;
        }
        let built = left_sorted.len() + right_sorted.len();
        Ok((out, built))
    }

    /// Resolves a [`JoinStrategy`] to a physical [`Kernel`] for a key over
    /// this relation's `pos` columns: under `Auto`, heavy key duplication
    /// (distinct-key ratio at or below `max_ratio`) favors sort-merge,
    /// anything else stays with hash.  Returns the sampled ratio alongside
    /// the kernel; a pinned strategy only pays for sampling when
    /// `sample_anyway` asks for it (the metrics path wants the ratio even
    /// when it doesn't decide anything).
    fn resolve_kernel(
        &self,
        strategy: JoinStrategy,
        pos: &[usize],
        max_ratio: f64,
        sample_anyway: bool,
    ) -> (Kernel, Option<f64>) {
        match strategy {
            JoinStrategy::Auto => {
                let ratio = self.estimate_distinct_key_ratio(pos);
                let kernel = if ratio <= max_ratio {
                    Kernel::SortMerge
                } else {
                    Kernel::Hash
                };
                (kernel, Some(ratio))
            }
            JoinStrategy::SortMerge => (
                Kernel::SortMerge,
                sample_anyway.then(|| self.estimate_distinct_key_ratio(pos)),
            ),
            JoinStrategy::Hash => (
                Kernel::Hash,
                sample_anyway.then(|| self.estimate_distinct_key_ratio(pos)),
            ),
        }
    }

    /// Estimated fraction of distinct keys among the rows, from a sample of
    /// up to 128 evenly spaced rows.  The rows themselves are distinct (the
    /// dedup index enforces set semantics), so duplication among the
    /// sampled key columns measures genuine key skew rather than duplicate
    /// tuples.
    fn estimate_distinct_key_ratio(&self, pos: &[usize]) -> f64 {
        let k = pos.len();
        if self.len == 0 || k == 0 {
            return 1.0;
        }
        if k == self.width() {
            return 1.0; // keys are whole rows, which are distinct by construction
        }
        let sample = self.len.min(128);
        let mut buf: Vec<u32> = Vec::with_capacity(sample * k);
        for s in 0..sample {
            // Spread the sample across the whole relation (integer-truncated
            // strides would only ever inspect a prefix).
            let row = self.row(s * self.len / sample);
            buf.extend(pos.iter().map(|&p| row[p]));
        }
        let mut ids = sort_ids_by_key(&buf, k, sample);
        ids.dedup_by(|a, b| {
            buf[*a as usize * k..(*a as usize + 1) * k]
                == buf[*b as usize * k..(*b as usize + 1) * k]
        });
        ids.len() as f64 / sample as f64
    }

    /// For each row of `self`, whether some row of `other` matches it on the
    /// shared attributes — the common kernel behind the semijoin family,
    /// parameterized by strategy and the probe-shard workers.  Alongside the
    /// mask, reports what the kernel did ([`MaskStats`]) so metered callers
    /// can record one semijoin [`OpMetrics`]; `sample_ratio` additionally
    /// samples the distinct-key ratio under pinned strategies (`Auto`
    /// samples regardless).
    #[allow(clippy::too_many_arguments)]
    fn semijoin_mask<G: Governor>(
        &self,
        other: &Relation,
        strategy: JoinStrategy,
        auto_ratio: f64,
        probe: &WorkerLease,
        morsel_rows: usize,
        sample_ratio: bool,
        gov: &G,
    ) -> Result<(Vec<bool>, MaskStats), EngineError> {
        if G::ENABLED {
            gov.at_semijoin()?;
        }
        let Some(keys) = JoinKeys::new(self, other) else {
            // π_∅(other) is {()} iff other is nonempty; every tuple matches.
            let mask = vec![!other.is_empty(); self.len];
            let stats = MaskStats {
                kernel: Kernel::Hash,
                built: 0,
                build_rows: other.len,
                ratio: None,
            };
            return Ok((mask, stats));
        };
        // Gather the (translated) key columns of `other` into one buffer.
        let other_keys = keys.gather_translated(other);
        let (kernel, ratio) =
            self.resolve_kernel(strategy, &keys.left_pos, auto_ratio, sample_ratio);
        let (mask, built) = match kernel {
            Kernel::SortMerge => self.sort_merge_mask(&keys, &other_keys, gov)?,
            Kernel::Hash => self.hash_mask(&keys, other_keys, probe, morsel_rows, gov)?,
        };
        let stats = MaskStats {
            kernel,
            built,
            build_rows: other.len,
            ratio,
        };
        Ok((mask, stats))
    }

    /// Hash flavor of the semijoin mask: index `other`'s distinct keys,
    /// probe every row of `self`.  With a multi-worker `probe` lease and
    /// more than one morsel of rows, the probe loop (embarrassingly
    /// parallel, read-only) runs morsel-driven: every worker pulls
    /// `morsel_rows`-row chunks from a shared [`MorselQueue`] until the
    /// range is drained, so an uneven probe cannot serialize on one
    /// pre-sliced shard — the intra-operator parallelism the
    /// level-synchronous reducer falls back to when a tree level has fewer
    /// targets than workers (e.g. chain schemas, whose levels are
    /// singletons).  Workers own a handle on the shared probe state (key
    /// table + gathered key columns + queue behind one [`Arc`]), so they
    /// run as ordinary owned pool jobs rather than scoped borrows.
    /// Returns the mask plus the number of distinct keys indexed (the
    /// "built" metric).
    fn hash_mask<G: Governor>(
        &self,
        keys: &JoinKeys,
        other_keys: Vec<u32>,
        probe: &WorkerLease,
        morsel_rows: usize,
        gov: &G,
    ) -> Result<(Vec<bool>, usize), EngineError> {
        let k = keys.k();
        let nkeys = other_keys.len() / k;
        let key_at = |id: u32| row_of(&other_keys, k, id);
        let mut table = RowTable::default();
        let mut distinct = 0usize;
        let mut step = 0usize;
        for i in 0..nkeys as u32 {
            if G::ENABLED {
                step += 1;
                if step >= CHECK_BATCH {
                    step = 0;
                    gov.checkpoint()?;
                }
            }
            let h = hash_row(key_at(i));
            table.reserve(distinct, |id| hash_row(key_at(id)));
            let (slot, occupied) = table.find_slot(h, |id| key_at(id) == key_at(i));
            if !occupied {
                table.set(slot, i);
                distinct += 1;
            }
        }
        let threads = probe.threads();
        let queue = MorselQueue::new(self.len, morsel_rows);
        if threads <= 1 || queue.morsels() <= 1 {
            let mut keybuf = vec![0u32; k];
            let mut mask = Vec::with_capacity(self.len);
            for row in self.rows_iter() {
                if G::ENABLED {
                    step += 1;
                    if step >= CHECK_BATCH {
                        step = 0;
                        gov.checkpoint()?;
                    }
                }
                for (j, &p) in keys.left_pos.iter().enumerate() {
                    keybuf[j] = row[p];
                }
                mask.push(probe_key(&table, &other_keys, k, &keybuf));
            }
            return Ok((mask, distinct));
        }
        // Morsel-driven probe: one job per worker, each pulling row chunks
        // from the shared queue and probing the gathered key columns
        // (shared read-only behind one Arc with the table and the queue),
        // sending each morsel's mask chunk back tagged with the range
        // start.  Workers carry their own governor handle and checkpoint
        // per batch; the first error anywhere aborts the whole mask.
        let my_keys = keys.gather(self, &keys.left_pos);
        let shared = Arc::new((table, other_keys, my_keys, queue));
        let (tx, rx) = channel();
        let jobs: Vec<Job> = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let gov = gov.clone();
                Box::new(move || {
                    let (table, other_keys, my_keys, queue) = &*shared;
                    let mut step = 0usize;
                    while let Some(range) = queue.next() {
                        let mut bits = Vec::with_capacity(range.len());
                        let mut res = Ok(());
                        for i in range.clone() {
                            if G::ENABLED {
                                step += 1;
                                if step >= CHECK_BATCH {
                                    step = 0;
                                    if let Err(e) = gov.checkpoint() {
                                        res = Err(e);
                                        break;
                                    }
                                }
                            }
                            bits.push(probe_key(
                                table,
                                other_keys,
                                k,
                                row_of(my_keys, k, i as u32),
                            ));
                        }
                        let failed = res.is_err();
                        let _ = tx.send((range.start, res.map(|()| bits)));
                        if failed {
                            break; // stop pulling; peers abort on their next checkpoint
                        }
                    }
                }) as Job
            })
            .collect();
        drop(tx);
        probe.run(jobs);
        let mut mask = vec![false; self.len];
        let mut first_err = None;
        for (start, bits) in rx.try_iter() {
            match bits {
                Ok(bits) => mask[start..start + bits.len()].copy_from_slice(&bits),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((mask, distinct)),
        }
    }

    /// Sort-merge flavor of the semijoin mask: sort a row-id permutation of
    /// `self` by the key columns (never the rows themselves), sort + dedup
    /// `other`'s keys, and mark equal-key runs in one merge walk.  Returns
    /// the mask plus the number of distinct other-side keys after dedup
    /// (the "built" metric).
    fn sort_merge_mask<G: Governor>(
        &self,
        keys: &JoinKeys,
        other_keys: &[u32],
        gov: &G,
    ) -> Result<(Vec<bool>, usize), EngineError> {
        let k = keys.k();
        let mut mask = vec![false; self.len];
        if other_keys.is_empty() || self.len == 0 {
            return Ok((mask, 0));
        }
        if G::ENABLED {
            gov.checkpoint()?;
        }
        let my_keys = keys.gather(self, &keys.left_pos);
        let mine = sort_ids_by_key(&my_keys, k, self.len);
        let mut others = sort_ids_by_key(other_keys, k, other_keys.len() / k);
        others.dedup_by(|a, b| {
            other_keys[*a as usize * k..(*a as usize + 1) * k]
                == other_keys[*b as usize * k..(*b as usize + 1) * k]
        });
        let my_key = |id: u32| &my_keys[id as usize * k..(id as usize + 1) * k];
        let other_key = |id: u32| &other_keys[id as usize * k..(id as usize + 1) * k];
        let mut oi = 0usize;
        let mut i = 0usize;
        let mut step = 0usize;
        while i < mine.len() && oi < others.len() {
            if G::ENABLED && step >= CHECK_BATCH {
                step = 0;
                gov.checkpoint()?;
            }
            let key = my_key(mine[i]);
            let end = run_end(&my_keys, &mine, i, k);
            while oi < others.len() && other_key(others[oi]) < key {
                oi += 1;
                step += 1;
            }
            if oi < others.len() && other_key(others[oi]) == key {
                for &id in &mine[i..end] {
                    mask[id as usize] = true;
                }
            }
            step += end - i;
            i = end;
        }
        Ok((mask, others.len()))
    }

    /// Semijoin: the tuples of `self` that join with at least one tuple of
    /// `other`.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        self.semijoin_with(other, JoinStrategy::Hash)
    }

    /// Semijoin under an explicit [`JoinStrategy`] — see
    /// [`Relation::join_with`] for the strategy semantics.
    pub fn semijoin_with(&self, other: &Relation, strategy: JoinStrategy) -> Relation {
        let (mask, _) = unfail(self.semijoin_mask(
            other,
            strategy,
            AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            &WorkerLease::inline(),
            DEFAULT_MORSEL_ROWS,
            false,
            &NoopGovernor,
        ));
        let mut out = Relation::with_pool(
            self.name.clone(),
            self.attributes.clone(),
            self.pool.clone(),
        );
        for (row, &keep) in self.rows_iter().zip(&mask) {
            if keep {
                out.insert_row(row);
            }
        }
        out
    }

    /// Number of tuples the semijoin with `other` would keep, without
    /// materializing it.
    pub fn semijoin_count(&self, other: &Relation) -> usize {
        unfail(self.semijoin_mask(
            other,
            JoinStrategy::Hash,
            AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            &WorkerLease::inline(),
            DEFAULT_MORSEL_ROWS,
            false,
            &NoopGovernor,
        ))
        .0
        .iter()
        .filter(|&&b| b)
        .count()
    }

    /// In-place semijoin with the default kernel — see
    /// [`Relation::retain_semijoin_with`].
    pub fn retain_semijoin(&mut self, other: &Relation) -> usize {
        self.retain_semijoin_with(other, JoinStrategy::Hash, 1)
    }

    /// In-place semijoin: removes the tuples of `self` that match no tuple
    /// of `other`, compacting the row buffer without reallocating.  Returns
    /// the number of tuples removed.
    ///
    /// The dedup index rebuild is deferred (marked stale) rather than done
    /// eagerly: the Yannakakis reducer semijoins the same relation several
    /// times in a row and never consults the index in between, so eager
    /// rebuilds were pure waste.  With `threads > 1` the hash probe loop is
    /// sharded across workers leased from the shared [`WorkerPool`].
    pub fn retain_semijoin_with(
        &mut self,
        other: &Relation,
        strategy: JoinStrategy,
        threads: usize,
    ) -> usize {
        let probe = if threads <= 1 {
            WorkerLease::inline()
        } else {
            WorkerPool::lease(threads)
        };
        unfail(self.retain_semijoin_impl(
            other,
            strategy,
            AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            &probe,
            DEFAULT_MORSEL_ROWS,
            &NoopMetrics,
            &NoopGovernor,
        ))
    }

    /// In-place semijoin under an [`ExecPolicy`] — like
    /// [`Relation::retain_semijoin_with`], with the policy supplying the
    /// strategy and the [`JoinStrategy::Auto`] threshold.  `probe` supplies
    /// the workers the hash probe loop is sharded across (the policy's own
    /// thread count governs level sharding in the reducer, not this
    /// intra-operator knob); pass [`WorkerLease::inline`] for a sequential
    /// probe.
    pub fn retain_semijoin_exec(
        &mut self,
        other: &Relation,
        policy: &ExecPolicy,
        probe: &WorkerLease,
    ) -> usize {
        self.retain_semijoin_metered(other, policy, probe, &NoopMetrics)
    }

    /// In-place semijoin under an [`ExecPolicy`], recording one semijoin
    /// [`OpMetrics`] record into `sink` — the metered form of
    /// [`Relation::retain_semijoin_exec`], which is this function
    /// monomorphized over [`NoopMetrics`].
    pub fn retain_semijoin_metered<M: MetricsSink>(
        &mut self,
        other: &Relation,
        policy: &ExecPolicy,
        probe: &WorkerLease,
        sink: &M,
    ) -> usize {
        unfail(self.retain_semijoin_impl(
            other,
            policy.strategy,
            policy.auto_semijoin_sortmerge_max_distinct_ratio,
            probe,
            policy.morsel_rows,
            sink,
            &NoopGovernor,
        ))
    }

    /// In-place semijoin under an [`ExecPolicy`] with governance
    /// checkpoints — the governed form of
    /// [`Relation::retain_semijoin_metered`] (which is this function
    /// monomorphized over [`NoopGovernor`]).
    ///
    /// All checkpoints fire during the read-only mask computation; the
    /// in-place compaction runs unconditionally after the mask is complete.
    /// An abort therefore returns `Err` with `self` exactly as it was — the
    /// rollback guarantee the governed reducer relies on.
    pub fn retain_semijoin_governed<M: MetricsSink, G: Governor>(
        &mut self,
        other: &Relation,
        policy: &ExecPolicy,
        probe: &WorkerLease,
        sink: &M,
        gov: &G,
    ) -> Result<usize, EngineError> {
        self.retain_semijoin_impl(
            other,
            policy.strategy,
            policy.auto_semijoin_sortmerge_max_distinct_ratio,
            probe,
            policy.morsel_rows,
            sink,
            gov,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn retain_semijoin_impl<M: MetricsSink, G: Governor>(
        &mut self,
        other: &Relation,
        strategy: JoinStrategy,
        auto_ratio: f64,
        probe: &WorkerLease,
        morsel_rows: usize,
        sink: &M,
        gov: &G,
    ) -> Result<usize, EngineError> {
        let probed = self.len;
        // Every governance checkpoint fires inside the mask computation,
        // which only reads `self`; an abort propagates here before any row
        // is moved, leaving the relation bit-identical.
        let (mask, stats) = self.semijoin_mask(
            other,
            strategy,
            auto_ratio,
            probe,
            morsel_rows,
            M::ENABLED,
            gov,
        )?;
        let removed = mask.iter().filter(|&&b| !b).count();
        if removed > 0 {
            let w = self.width();
            let mut write = 0usize;
            for (i, &keep) in mask.iter().enumerate() {
                if keep {
                    if write != i {
                        self.rows.copy_within(i * w..(i + 1) * w, write * w);
                    }
                    write += 1;
                }
            }
            self.rows.truncate(write * w);
            self.len = write;
            self.index_stale = true;
        }
        if M::ENABLED {
            sink.record_op(OpMetrics {
                kind: OpKind::Semijoin,
                kernel: stats.kernel,
                probed: probed as u64,
                kept: (probed - removed) as u64,
                built: stats.built as u64,
                build_rows: stats.build_rows as u64,
                distinct_ratio: stats.ratio,
            });
        }
        Ok(removed)
    }

    /// How many times this relation's dedup index has been rebuilt — the
    /// observability hook for the deferred-rebuild optimization.
    pub fn index_rebuild_count(&self) -> usize {
        self.index_rebuilds
    }

    /// A copy of the relation with every value re-interned into `pool`.
    ///
    /// Translation is lazy per distinct handle: only values the rows
    /// actually use enter `pool` (this relation's own pool may be a shared
    /// dictionary far larger than the relation).
    fn reintern_into(&self, pool: &ValuePool) -> Relation {
        let mut cache: Vec<u32> = vec![NO_HANDLE; self.pool.len()];
        let mut out = Relation::with_pool(self.name.clone(), self.attributes.clone(), pool.clone());
        let mut buf = vec![0u32; self.width()];
        for row in self.rows_iter() {
            for (j, &h) in row.iter().enumerate() {
                if cache[h as usize] == NO_HANDLE {
                    cache[h as usize] = pool.intern(&self.pool.value(h));
                }
                buf[j] = cache[h as usize];
            }
            out.insert_row(&buf);
        }
        out
    }

    /// True if the two relations hold exactly the same tuples over the same
    /// attributes (names are ignored).
    pub fn same_contents(&self, other: &Relation) -> bool {
        if self.attributes != other.attributes || self.len != other.len {
            return false;
        }
        if self.width() == 0 {
            return true; // equal row counts of the empty tuple
        }
        let trans = if self.pool.same_pool(&other.pool) {
            None
        } else {
            Some(other.pool.translation_to(&self.pool, false))
        };
        let w = self.width();
        // A stale index (deferred rebuild) is replaced by a transient table
        // for the duration of this comparison.
        let transient = self.index_stale.then(|| self.build_table());
        let index = transient.as_ref().unwrap_or(&self.index);
        let mut buf = vec![0u32; w];
        for row in other.rows_iter() {
            match &trans {
                None => buf.copy_from_slice(row),
                Some(table) => {
                    for (j, &h) in row.iter().enumerate() {
                        let t = table[h as usize];
                        if t == NO_HANDLE {
                            return false;
                        }
                        buf[j] = t;
                    }
                }
            }
            if index
                .find(hash_row(&buf), |id| row_of(&self.rows, w, id) == &buf[..])
                .is_none()
            {
                return false;
            }
        }
        true
    }

    /// Renders the relation as a small table using `universe` for names.
    pub fn display(&self, universe: &Universe) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} (", self.name));
        out.push_str(
            &self
                .cols
                .iter()
                .map(|a| universe.name(*a).to_owned())
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(&format!(") — {} tuples\n", self.len));
        let values = self.decode_snapshot(self.len * self.width());
        for row in self.rows_iter() {
            out.push_str("  ");
            out.push_str(
                &row.iter()
                    .map(|&h| self.decode_cell(&values, h).to_string())
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push('\n');
        }
        out
    }
}

impl PartialEq for Relation {
    /// Equal when name, attributes and tuple contents all agree.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.same_contents(other)
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.name, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Hypergraph;

    fn setup() -> (Hypergraph, Relation, Relation) {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1), (b, 10)]));
        r.insert(Tuple::from_pairs([(a, 2), (b, 20)]));
        r.insert(Tuple::from_pairs([(a, 3), (b, 10)]));
        let mut s = Relation::new("S", h.node_set(["B", "C"]).unwrap());
        s.insert(Tuple::from_pairs([(b, 10), (c, 100)]));
        s.insert(Tuple::from_pairs([(b, 10), (c, 200)]));
        s.insert(Tuple::from_pairs([(b, 30), (c, 300)]));
        (h, r, s)
    }

    #[test]
    fn tuple_projection_and_join() {
        let (h, _, _) = setup();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let t = Tuple::from_pairs([(a, 1), (b, 10)]);
        let u = Tuple::from_pairs([(b, 10), (c, 5)]);
        let v = Tuple::from_pairs([(b, 11), (c, 5)]);
        assert!(t.joinable(&u));
        assert!(!t.joinable(&v));
        let joined = t.join(&u).unwrap();
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(c), Some(&Value::Int(5)));
        assert_eq!(t.project(&h.node_set(["A"]).unwrap()).len(), 1);
        assert!(t.join(&v).is_none());
    }

    #[test]
    fn tuple_set_replaces_and_keeps_order() {
        let (h, _, _) = setup();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut t = Tuple::from_pairs([(b, 1), (a, 2), (b, 3)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b), Some(&Value::Int(3)));
        t.set(a, 9);
        assert_eq!(t.get(a), Some(&Value::Int(9)));
        let attrs: Vec<NodeId> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(attrs, vec![a, b]);
    }

    #[test]
    fn natural_join_matches_shared_attributes() {
        let (h, r, s) = setup();
        let j = r.join(&s);
        // Tuples with B=10 join: (1,10)×2, (3,10)×2 → 4; B=20/30 do not.
        assert_eq!(j.len(), 4);
        assert_eq!(j.attributes(), &h.node_set(["A", "B", "C"]).unwrap());
        for t in j.tuples() {
            assert_eq!(t.get(h.node("B").unwrap()), Some(&Value::Int(10)));
        }
    }

    #[test]
    fn join_is_commutative_on_contents() {
        let (_, r, s) = setup();
        assert!(r.join(&s).same_contents(&s.join(&r)));
    }

    #[test]
    fn projection_eliminates_duplicates() {
        let (h, r, _) = setup();
        let p = r.project(&h.node_set(["B"]).unwrap());
        assert_eq!(p.len(), 2); // values 10 and 20
    }

    #[test]
    fn projection_onto_nothing_yields_one_empty_tuple() {
        let (_, r, _) = setup();
        let p = r.project(&NodeSet::new());
        assert_eq!(p.len(), 1);
        assert!(p.attributes().is_empty());
        assert!(p.tuples().next().unwrap().is_empty());
    }

    #[test]
    fn selection_filters() {
        let (h, r, _) = setup();
        let sel = r.select_eq(h.node("B").unwrap(), &Value::Int(10));
        assert_eq!(sel.len(), 2);
        assert!(sel
            .tuples()
            .all(|t| t.get(h.node("B").unwrap()) == Some(&Value::Int(10))));
        // Unknown value or out-of-schema attribute: empty result.
        assert!(r
            .select_eq(h.node("B").unwrap(), &Value::Int(77))
            .is_empty());
        assert!(r
            .select_eq(h.node("C").unwrap(), &Value::Int(10))
            .is_empty());
    }

    #[test]
    fn semijoin_keeps_matching_tuples_only() {
        let (h, r, s) = setup();
        let sj = r.semijoin(&s);
        assert_eq!(sj.len(), 2); // A=1 and A=3 (B=10 matches), A=2 (B=20) dropped
        assert_eq!(sj.attributes(), &h.node_set(["A", "B"]).unwrap());
        assert_eq!(r.semijoin_count(&s), 2);
        // Semijoin against an empty relation empties the result.
        let empty = Relation::new("E", h.node_set(["B", "C"]).unwrap());
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    fn retain_semijoin_matches_semijoin() {
        let (_, mut r, s) = setup();
        let expected = r.semijoin(&s);
        let removed = r.retain_semijoin(&s);
        assert_eq!(removed, 1);
        assert!(r.same_contents(&expected));
        // Idempotent afterwards.
        assert_eq!(r.retain_semijoin(&s), 0);
    }

    #[test]
    fn cross_pool_operations_translate_handles() {
        // r and s are built independently, so they intern into different
        // pools; every kernel must still agree with the shared-pool result.
        let (h, r, s) = setup();
        assert!(!r.pool().same_pool(s.pool()));
        let mut s_shared = Relation::with_pool("S", s.attributes().clone(), r.pool().clone());
        for t in s.tuples() {
            s_shared.insert(t);
        }
        assert!(s.same_contents(&s_shared));
        assert!(r.join(&s).same_contents(&r.join(&s_shared)));
        assert!(r.semijoin(&s).same_contents(&r.semijoin(&s_shared)));
        let _ = h;
    }

    #[test]
    fn insert_values_matches_insert() {
        let (h, r, _) = setup();
        let mut v = Relation::new("V", h.node_set(["A", "B"]).unwrap());
        // Column order is ascending attribute id: A then B.
        assert_eq!(v.columns().len(), 2);
        assert!(v.insert_values([1i64, 10]));
        assert!(v.insert_values([2i64, 20]));
        assert!(v.insert_values([3i64, 10]));
        assert!(!v.insert_values([1i64, 10]));
        assert!(v.same_contents(&r));
    }

    #[test]
    #[should_panic(expected = "tuple attributes do not match")]
    fn schema_mismatch_panics() {
        let (h, mut r, _) = setup();
        let c = h.node("C").unwrap();
        r.insert(Tuple::from_pairs([(c, 1)]));
    }

    #[test]
    fn display_contains_rows() {
        let (h, r, _) = setup();
        let s = r.display(h.universe());
        assert!(s.contains("R (A, B)"));
        assert!(s.lines().count() >= 4);
        let t = r.tuples().next().unwrap();
        assert!(t.display(h.universe()).starts_with('('));
    }

    #[test]
    fn contains_and_tuple_roundtrip() {
        let (h, r, _) = setup();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        assert!(r.contains(&Tuple::from_pairs([(a, 1), (b, 10)])));
        assert!(!r.contains(&Tuple::from_pairs([(a, 1), (b, 11)])));
        assert!(!r.contains(&Tuple::from_pairs([(a, 1)])));
        for (i, t) in r.tuples().enumerate() {
            assert_eq!(r.tuple_at(i), t);
            assert!(r.contains(&t));
        }
    }

    #[test]
    fn join_with_disjoint_schemas_is_cross_product() {
        let h = Hypergraph::from_edges([vec!["A"], vec!["B"]]).unwrap();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut r = Relation::new("R", h.node_set(["A"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1)]));
        r.insert(Tuple::from_pairs([(a, 2)]));
        let mut s = Relation::new("S", h.node_set(["B"]).unwrap());
        s.insert(Tuple::from_pairs([(b, 7)]));
        s.insert(Tuple::from_pairs([(b, 8)]));
        s.insert(Tuple::from_pairs([(b, 9)]));
        assert_eq!(r.join(&s).len(), 6);
    }

    #[test]
    fn sort_merge_join_matches_hash_join() {
        let (_, r, s) = setup();
        let hash = r.join_with(&s, JoinStrategy::Hash);
        let sm = r.join_with(&s, JoinStrategy::SortMerge);
        assert!(hash.same_contents(&sm));
        // Also with the sides flipped and under Auto.
        assert!(s
            .join_with(&r, JoinStrategy::SortMerge)
            .same_contents(&hash));
        assert!(r.join_with(&s, JoinStrategy::Auto).same_contents(&hash));
    }

    #[test]
    fn sort_merge_semijoin_matches_hash_semijoin() {
        let (_, r, s) = setup();
        let hash = r.semijoin_with(&s, JoinStrategy::Hash);
        let sm = r.semijoin_with(&s, JoinStrategy::SortMerge);
        assert!(hash.same_contents(&sm));
        let empty = Relation::new("E", s.attributes().clone());
        assert!(r.semijoin_with(&empty, JoinStrategy::SortMerge).is_empty());
    }

    #[test]
    fn sort_merge_kernels_translate_across_pools() {
        let (_, r, s) = setup();
        assert!(!r.pool().same_pool(s.pool()));
        assert!(r
            .join_with(&s, JoinStrategy::SortMerge)
            .same_contents(&r.join(&s)));
        assert!(r
            .semijoin_with(&s, JoinStrategy::SortMerge)
            .same_contents(&r.semijoin(&s)));
    }

    #[test]
    fn multi_column_keys_sort_merge() {
        // Two shared attributes force the general (slice-compare) sort path.
        let h = Hypergraph::from_edges([vec!["A", "B", "C"], vec!["A", "B", "D"]]).unwrap();
        let (a, b, c, d) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
            h.node("D").unwrap(),
        );
        let mut r = Relation::new("R", h.node_set(["A", "B", "C"]).unwrap());
        let mut s =
            Relation::with_pool("S", h.node_set(["A", "B", "D"]).unwrap(), r.pool().clone());
        for i in 0..20i64 {
            r.insert(Tuple::from_pairs([(a, i % 3), (b, i % 4), (c, i)]));
            s.insert(Tuple::from_pairs([(a, i % 4), (b, i % 3), (d, i)]));
        }
        assert!(r
            .join_with(&s, JoinStrategy::SortMerge)
            .same_contents(&r.join_with(&s, JoinStrategy::Hash)));
        assert!(r
            .semijoin_with(&s, JoinStrategy::SortMerge)
            .same_contents(&r.semijoin_with(&s, JoinStrategy::Hash)));
    }

    #[test]
    fn select_eq_all_fuses_selections() {
        let (h, r, _) = setup();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let fused = r.select_eq_all(&[(a, Value::Int(1)), (b, Value::Int(10))]);
        let chained = r.select_eq(a, &Value::Int(1)).select_eq(b, &Value::Int(10));
        assert!(fused.same_contents(&chained));
        assert_eq!(fused.len(), 1);
        // Contradictory predicates on one attribute: empty.
        assert!(r
            .select_eq_all(&[(a, Value::Int(1)), (a, Value::Int(2))])
            .is_empty());
        // Unknown value: empty.
        assert!(r.select_eq_all(&[(a, Value::Int(777))]).is_empty());
        // No predicates: everything survives.
        assert_eq!(r.select_eq_all(&[]).len(), r.len());
    }

    #[test]
    fn retain_semijoin_defers_index_rebuild() {
        let (h, mut r, s) = setup();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        assert_eq!(r.index_rebuild_count(), 0);
        // Two consecutive in-place semijoins: the reducer's hot pattern.
        // Neither consults the index, so no rebuild happens.
        assert_eq!(r.retain_semijoin(&s), 1);
        assert!(r.index_stale);
        let mut t = Relation::with_pool("T", s.attributes().clone(), r.pool().clone());
        t.insert(Tuple::from_pairs([
            (h.node("B").unwrap(), 10),
            (h.node("C").unwrap(), 100),
        ]));
        r.retain_semijoin(&t);
        assert_eq!(
            r.index_rebuild_count(),
            0,
            "reducer passes must not rebuild"
        );
        // Read-only membership works off the stale index via a scan.
        assert!(r.contains(&Tuple::from_pairs([(a, 1), (b, 10)])));
        assert!(!r.contains(&Tuple::from_pairs([(a, 2), (b, 20)])));
        // The first mutation that needs the index rebuilds exactly once.
        r.insert(Tuple::from_pairs([(a, 9), (b, 9)]));
        assert_eq!(r.index_rebuild_count(), 1);
        assert!(!r.index_stale);
        // Dedup semantics survive the rebuild.
        assert!(!r.insert(Tuple::from_pairs([(a, 9), (b, 9)])));
    }

    #[test]
    fn same_contents_works_with_stale_index() {
        let (_, mut r, s) = setup();
        let expected = r.semijoin(&s);
        r.retain_semijoin(&s);
        assert!(r.index_stale);
        assert!(r.same_contents(&expected));
        assert!(expected.same_contents(&r));
        assert_eq!(
            r.index_rebuild_count(),
            0,
            "same_contents uses a transient table"
        );
    }

    #[test]
    fn distinct_key_ratio_reflects_duplication() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut dup = Relation::new("D", h.node_set(["A", "B"]).unwrap());
        let mut uniq = Relation::new("U", h.node_set(["A", "B"]).unwrap());
        for i in 0..500i64 {
            dup.insert(Tuple::from_pairs([(a, 7), (b, i)]));
            uniq.insert(Tuple::from_pairs([(a, i), (b, i)]));
        }
        // Column A: constant in `dup`, unique in `uniq`.
        assert!(dup.estimate_distinct_key_ratio(&[0]) < 0.05);
        assert!(uniq.estimate_distinct_key_ratio(&[0]) > 0.9);
        // Whole-row keys are distinct by construction.
        assert_eq!(dup.estimate_distinct_key_ratio(&[0, 1]), 1.0);
        // Auto resolves accordingly, against the calibrated join threshold,
        // reporting the ratio it sampled.
        let (kernel, ratio) = dup.resolve_kernel(
            JoinStrategy::Auto,
            &[0],
            AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            false,
        );
        assert_eq!(kernel, Kernel::SortMerge);
        assert!(ratio.unwrap() < 0.05);
        let (kernel, ratio) = uniq.resolve_kernel(
            JoinStrategy::Auto,
            &[0],
            AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            false,
        );
        assert_eq!(kernel, Kernel::Hash);
        assert!(ratio.unwrap() > 0.9);
        // Pinned strategies skip sampling unless asked for it.
        assert_eq!(
            dup.resolve_kernel(JoinStrategy::Hash, &[0], 1.0, false),
            (Kernel::Hash, None)
        );
        assert!(dup
            .resolve_kernel(JoinStrategy::SortMerge, &[0], 1.0, true)
            .1
            .is_some());
        // An ExecPolicy override moves the crossover: with a threshold of
        // 1.0 even unique keys resolve to sort-merge.
        let lenient = ExecPolicy {
            auto_sortmerge_max_distinct_ratio: 1.0,
            ..ExecPolicy::sequential(JoinStrategy::Auto)
        };
        assert!(uniq
            .join_with_exec(&dup, &lenient)
            .same_contents(&uniq.join(&dup)));
        assert_eq!(
            uniq.resolve_kernel(JoinStrategy::Auto, &[0], 1.0, false).0,
            Kernel::SortMerge
        );
    }

    #[test]
    fn parallel_hash_mask_matches_sequential() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        let mut s = Relation::with_pool("S", h.node_set(["B", "C"]).unwrap(), r.pool().clone());
        // Morsels smaller than the row count so the probe loop shards.
        for i in 0..3000i64 {
            r.insert(Tuple::from_pairs([(a, i), (b, i % 101)]));
            if i % 2 == 0 {
                s.insert(Tuple::from_pairs([(b, i % 101), (c, i)]));
            }
        }
        let (seq, seq_stats) = r
            .semijoin_mask(
                &s,
                JoinStrategy::Hash,
                AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
                &WorkerLease::inline(),
                256,
                false,
                &NoopGovernor,
            )
            .unwrap();
        let (par, par_stats) = r
            .semijoin_mask(
                &s,
                JoinStrategy::Hash,
                AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
                &WorkerPool::lease(4),
                256,
                false,
                &NoopGovernor,
            )
            .unwrap();
        assert_eq!(seq, par);
        // Both paths index the same distinct build keys.
        assert_eq!(seq_stats.built, par_stats.built);
        assert_eq!(seq_stats.kernel, Kernel::Hash);
        let mut r2 = r.clone();
        let removed_seq = r.retain_semijoin_with(&s, JoinStrategy::Hash, 1);
        let removed_par = r2.retain_semijoin_with(&s, JoinStrategy::Hash, 4);
        assert_eq!(removed_seq, removed_par);
        assert!(r.same_contents(&r2));
    }

    #[test]
    fn dedup_survives_many_inserts_and_growth() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        let (a, b) = (h.node("A").unwrap(), h.node("B").unwrap());
        let mut r = Relation::new("R", h.node_set(["A", "B"]).unwrap());
        for i in 0..1000i64 {
            assert!(r.insert(Tuple::from_pairs([(a, i), (b, i % 7)])));
        }
        for i in 0..1000i64 {
            assert!(!r.insert(Tuple::from_pairs([(a, i), (b, i % 7)])));
        }
        assert_eq!(r.len(), 1000);
    }

    /// The reference permutation the counting/radix single-key sort must
    /// reproduce bit-for-bit: the packed `(key, id)` comparison sort.
    fn packed_comparison_sort(keys: &[u32]) -> Vec<u32> {
        let mut packed: Vec<u64> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| (u64::from(key) << 32) | i as u64)
            .collect();
        packed.sort_unstable();
        packed
            .into_iter()
            .map(|p| (p & 0xffff_ffff) as u32)
            .collect()
    }

    mod sort_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Dense keys (the counting-sort regime: handles smaller than a
            /// few times the row count) sort exactly like the comparison
            /// sort, including the ascending-id tie rule.
            #[test]
            fn counting_sort_matches_comparison_sort(
                keys in proptest::collection::vec(0u32..200, 0..400),
            ) {
                let n = keys.len();
                prop_assert_eq!(sort_ids_by_key(&keys, 1, n), packed_comparison_sort(&keys));
            }

            /// Sparse keys below the radix floor (the packed fallback)
            /// agree with the comparison sort too.
            #[test]
            fn sparse_small_sort_matches_comparison_sort(
                keys in proptest::collection::vec(0u32..u32::MAX, 0..300),
            ) {
                let n = keys.len();
                prop_assert_eq!(sort_ids_by_key(&keys, 1, n), packed_comparison_sort(&keys));
            }

            /// The radix regime proper: sparse keys on inputs past the
            /// radix floor (seed-expanded so the case stays cheap to
            /// generate) match the comparison sort.
            #[test]
            fn radix_sort_matches_comparison_sort(seed in 0u64..5_000) {
                let n = SORT_RADIX_MIN_ROWS + (seed as usize % 100);
                let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                let keys: Vec<u32> = (0..n)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        (x >> 32) as u32
                    })
                    .collect();
                prop_assert_eq!(sort_ids_by_key(&keys, 1, n), packed_comparison_sort(&keys));
            }
        }
    }

    #[test]
    fn single_key_sort_covers_all_three_paths() {
        // Tiny input: packed comparison path.
        let tiny = [5u32, 1, 5, 0];
        assert_eq!(sort_ids_by_key(&tiny, 1, 4), vec![3, 1, 0, 2]);
        // Dense input past the tiny threshold: counting path.
        let dense: Vec<u32> = (0..200u32).map(|i| i % 9).collect();
        assert_eq!(
            sort_ids_by_key(&dense, 1, 200),
            packed_comparison_sort(&dense)
        );
        // Sparse input past the radix floor: radix path.
        let n = SORT_RADIX_MIN_ROWS + 13;
        let sparse: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        assert_eq!(
            sort_ids_by_key(&sparse, 1, n),
            packed_comparison_sort(&sparse)
        );
        // Sparse input below the radix floor: packed comparison path.
        let small_sparse: Vec<u32> = sparse[..200].to_vec();
        assert_eq!(
            sort_ids_by_key(&small_sparse, 1, 200),
            packed_comparison_sort(&small_sparse)
        );
        // Empty input.
        assert!(sort_ids_by_key(&[], 1, 0).is_empty());
    }
}
