//! A small declarative query layer over the universal-relation model.
//!
//! A [`Query`] names output attributes and equality selections — the
//! "tableau-expressible" queries the paper's §7 has in mind.  Planning picks
//! the objects in the canonical connection of every attribute the query
//! mentions (output and selections alike), and execution pushes the
//! selections below the join, runs the join over the chosen objects, and
//! projects.  [`Query::execute_naive`] evaluates the same query against the
//! full join of all objects, which is the correctness baseline used by the
//! tests and the query benchmark.

use crate::database::Database;
use crate::exec::{ExecPolicy, JoinStrategy};
use crate::govern::{contain_panics, EngineError, Governor};
use crate::hypertree::{yannakakis_join_any_governed, yannakakis_join_any_metered};
use crate::metrics::{MetricsSink, NoopMetrics};
use crate::relation::Relation;
use crate::universal::plan_connection;
use crate::value::Value;
use hypergraph::{NodeId, NodeSet};
use std::fmt;

/// An equality selection `attribute = value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// The attribute being constrained.
    pub attribute: NodeId,
    /// The required value.
    pub value: Value,
}

/// A universal-relation query: output attributes plus equality selections.
///
/// # Examples
///
/// ```
/// use hypergraph::{EdgeId, Hypergraph};
/// use reldb::{Database, Query, Tuple};
///
/// let schema = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
/// let (a, b, c) = (
///     schema.node("A").unwrap(),
///     schema.node("B").unwrap(),
///     schema.node("C").unwrap(),
/// );
/// let mut db = Database::empty(schema);
/// db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
/// db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 3)]));
/// db.insert(EdgeId(1), Tuple::from_pairs([(b, 2), (c, 4)]));
///
/// // π_A σ_{C=3}: plan over the canonical connection, push the selection
/// // below the join, project.
/// let q = Query::new().select(a).filter_eq(c, 3);
/// let answer = q.execute(&db);
/// assert_eq!(answer.len(), 1);
/// // The Yannakakis engine answers the same query over the join tree.
/// assert!(q.execute_yannakakis(&db).unwrap().same_contents(&answer));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Query {
    output: Vec<NodeId>,
    selections: Vec<Selection>,
    policy: ExecPolicy,
}

impl Query {
    /// Starts an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an output attribute.
    pub fn select(mut self, attribute: NodeId) -> Self {
        if !self.output.contains(&attribute) {
            self.output.push(attribute);
        }
        self
    }

    /// Adds several output attributes.
    pub fn select_all<I: IntoIterator<Item = NodeId>>(mut self, attributes: I) -> Self {
        for a in attributes {
            self = self.select(a);
        }
        self
    }

    /// Adds an equality selection.
    pub fn filter_eq(mut self, attribute: NodeId, value: impl Into<Value>) -> Self {
        self.selections.push(Selection {
            attribute,
            value: value.into(),
        });
        self
    }

    /// Pins the physical join strategy for every join and semijoin this
    /// query executes (default: [`JoinStrategy::Auto`], the cost-pick
    /// planner).  The explicit override exists for benchmarking and for
    /// workloads whose skew the sampler cannot see.
    pub fn with_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.policy.strategy = strategy;
        self
    }

    /// Replaces the whole execution policy — strategy, worker threads,
    /// sequential-fallback threshold, and the [`JoinStrategy::Auto`]
    /// distinct-key-ratio override — for every engine this query runs.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The query's join strategy.
    pub fn strategy(&self) -> JoinStrategy {
        self.policy.strategy
    }

    /// The query's execution policy.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// The output attributes as a node set.
    pub fn output_set(&self) -> NodeSet {
        self.output.iter().copied().collect()
    }

    /// Every attribute the query mentions (output and selections) — the set
    /// whose canonical connection decides which objects are joined.
    pub fn mentioned(&self) -> NodeSet {
        let mut s = self.output_set();
        for sel in &self.selections {
            s.insert(sel.attribute);
        }
        s
    }

    /// The selections.
    pub fn selections(&self) -> &[Selection] {
        &self.selections
    }

    /// Plans the query against `db`'s schema: the objects of the canonical
    /// connection of every mentioned attribute.
    pub fn plan(&self, db: &Database) -> QueryPlan {
        let plan = plan_connection(db.schema(), &self.mentioned());
        QueryPlan {
            objects: plan.objects,
            output: self.output_set(),
        }
    }

    /// The selections a relation's schema can evaluate, as `(attribute,
    /// value)` predicate pairs.
    fn applicable(&self, relation: &Relation) -> Vec<(NodeId, Value)> {
        self.selections
            .iter()
            .filter(|sel| relation.attributes().contains(sel.attribute))
            .map(|sel| (sel.attribute, sel.value.clone()))
            .collect()
    }

    /// Applies the selections that an object's schema can evaluate, all of
    /// them fused into a single row scan with one output build
    /// ([`Relation::select_eq_all`]) instead of materializing one
    /// intermediate relation per selection.
    fn filtered(&self, relation: &Relation) -> Relation {
        let preds = self.applicable(relation);
        if preds.is_empty() {
            return relation.clone();
        }
        relation.select_eq_all(&preds)
    }

    /// Executes via the canonical connection: filter each chosen object,
    /// join them, apply any remaining selections, project onto the output.
    pub fn execute(&self, db: &Database) -> Relation {
        self.execute_metered(db, &NoopMetrics)
    }

    /// The metered form of [`Query::execute`]: the same canonical-connection
    /// plan, with each join recording into `sink`.
    pub fn execute_metered<M: MetricsSink>(&self, db: &Database, sink: &M) -> Relation {
        let plan = self.plan(db);
        let mut acc: Option<Relation> = None;
        for &i in &plan.objects {
            let filtered = self.filtered(&db.relations()[i]);
            acc = Some(match acc {
                None => filtered,
                Some(a) => a.join_metered(&filtered, &self.policy, sink),
            });
        }
        let joined = acc.unwrap_or_else(|| Relation::new("∅", self.mentioned()));
        self.finish(joined)
    }

    /// The governed form of [`Query::execute`]: the same canonical-
    /// connection plan under a [`Governor`] — every join checkpointed for
    /// cancellation and deadline, output charged to the memory budget, and
    /// engine panics contained as [`EngineError::WorkerPanic`].
    pub fn execute_governed<M: MetricsSink, G: Governor>(
        &self,
        db: &Database,
        sink: &M,
        gov: &G,
    ) -> Result<Relation, EngineError> {
        contain_panics(|| {
            let plan = self.plan(db);
            let mut acc: Option<Relation> = None;
            for &i in &plan.objects {
                let filtered = self.filtered(&db.relations()[i]);
                acc = Some(match acc {
                    None => filtered,
                    Some(a) => a.join_governed(&filtered, &self.policy, sink, gov)?,
                });
            }
            let joined = acc.unwrap_or_else(|| Relation::new("∅", self.mentioned()));
            Ok(self.finish(joined))
        })
    }

    /// Executes with the Yannakakis algorithm: over the schema's join tree
    /// when it is acyclic, or transparently through the hypertree-
    /// decomposition pipeline (decompose → materialize bags → reduce → join,
    /// see [`crate::hypertree`]) when it is cyclic.  Selections are applied
    /// to the relevant relations before reduction either way, which is where
    /// pushing selections below semijoins (and below bag materialization)
    /// pays off.
    pub fn execute_yannakakis(&self, db: &Database) -> Result<Relation, EngineError> {
        self.execute_yannakakis_metered(db, &NoopMetrics)
    }

    /// The metered form of [`Query::execute_yannakakis`]: the same routed
    /// pipeline (join tree or hypertree decomposition), with every engine
    /// layer underneath recording into `sink` — this is what
    /// `hyperq query --metrics` runs.
    pub fn execute_yannakakis_metered<M: MetricsSink>(
        &self,
        db: &Database,
        sink: &M,
    ) -> Result<Relation, EngineError> {
        let filtered: Vec<Relation> = db.relations().iter().map(|r| self.filtered(r)).collect();
        let filtered_db = Database::new(db.schema().clone(), filtered)?;
        let joined =
            yannakakis_join_any_metered(&filtered_db, &self.mentioned(), &self.policy, sink)?;
        Ok(self.finish(joined))
    }

    /// The governed form of [`Query::execute_yannakakis`]: selections are
    /// pushed down exactly as in the metered form, then the routed pipeline
    /// runs under the [`Governor`] — level and kernel-batch checkpoints,
    /// memory-budget charges (and the cyclic path's degradation ladder),
    /// and panic containment.  An abort leaves `db` untouched: the pushdown
    /// filters into fresh relations and the engine below never mutates its
    /// input database.
    pub fn execute_yannakakis_governed<M: MetricsSink, G: Governor>(
        &self,
        db: &Database,
        sink: &M,
        gov: &G,
    ) -> Result<Relation, EngineError> {
        let filtered: Vec<Relation> = db.relations().iter().map(|r| self.filtered(r)).collect();
        let filtered_db = Database::new(db.schema().clone(), filtered)?;
        let joined =
            yannakakis_join_any_governed(&filtered_db, &self.mentioned(), &self.policy, sink, gov)?;
        Ok(self.finish(joined))
    }

    /// Executes against the full join of every object — the baseline.
    pub fn execute_naive(&self, db: &Database) -> Relation {
        self.finish(db.full_join())
    }

    /// Applies the remaining selections to a joined relation (fused into
    /// one scan) and projects.
    fn finish(&self, joined: Relation) -> Relation {
        let preds = self.applicable(&joined);
        let r = if preds.is_empty() {
            joined
        } else {
            joined.select_eq_all(&preds)
        };
        r.project(&self.output_set())
    }
}

/// The physical plan of a [`Query`]: which objects are joined and what is
/// projected at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Indices of the schema edges (objects) to join.
    pub objects: Vec<usize>,
    /// The output attributes.
    pub output: NodeSet,
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "join objects {:?} then project", self.objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::make_globally_consistent;
    use crate::relation::Tuple;
    use hypergraph::{EdgeId, Hypergraph};

    fn chain_db() -> Database {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let (a, b, c, d) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
            h.node("D").unwrap(),
        );
        let mut db = Database::empty(h);
        for i in 0..6i64 {
            db.insert(EdgeId(0), Tuple::from_pairs([(a, i), (b, i % 3)]));
            db.insert(EdgeId(1), Tuple::from_pairs([(b, i % 3), (c, i % 2)]));
            db.insert(EdgeId(2), Tuple::from_pairs([(c, i % 2), (d, i)]));
        }
        db
    }

    #[test]
    fn builder_accumulates_attributes_and_selections() {
        let db = chain_db();
        let a = db.schema().node("A").unwrap();
        let d = db.schema().node("D").unwrap();
        let q = Query::new().select(a).select(a).select(d).filter_eq(d, 3);
        assert_eq!(q.output_set().len(), 2);
        assert_eq!(q.mentioned().len(), 2);
        assert_eq!(q.selections().len(), 1);
    }

    #[test]
    fn connection_plan_uses_only_needed_objects() {
        let db = chain_db();
        let a = db.schema().node("A").unwrap();
        let b = db.schema().node("B").unwrap();
        // A query about {A, B} only needs the AB object.
        let q = Query::new().select(a).select(b);
        assert_eq!(q.plan(&db).objects, vec![0]);
        // A query about {A, D} needs the whole chain.
        let d = db.schema().node("D").unwrap();
        let q = Query::new().select(a).select(d);
        assert_eq!(q.plan(&db).objects, vec![0, 1, 2]);
    }

    #[test]
    fn execution_paths_agree_on_consistent_data() {
        let db = make_globally_consistent(&chain_db());
        let schema = db.schema().clone();
        let (a, c, d) = (
            schema.node("A").unwrap(),
            schema.node("C").unwrap(),
            schema.node("D").unwrap(),
        );
        for q in [
            Query::new().select(a).select(d),
            Query::new().select(a).select(d).filter_eq(c, 1),
            Query::new().select(a).filter_eq(d, 3),
            Query::new().select_all([a, c, d]),
        ] {
            let via_cc = q.execute(&db);
            let naive = q.execute_naive(&db);
            let yann = q.execute_yannakakis(&db).unwrap();
            assert!(via_cc.same_contents(&naive), "connection plan diverged");
            assert!(yann.same_contents(&naive), "yannakakis diverged");
        }
    }

    #[test]
    fn selections_filter_results() {
        let db = make_globally_consistent(&chain_db());
        let schema = db.schema().clone();
        let (a, b, d) = (
            schema.node("A").unwrap(),
            schema.node("B").unwrap(),
            schema.node("D").unwrap(),
        );
        let unfiltered = Query::new().select(a).execute(&db);
        assert_eq!(unfiltered.len(), 6);
        // Constraining B to a single value keeps only the A values paired
        // with it (a ∈ {1, 4} in this instance).
        let filtered = Query::new().select(a).filter_eq(b, 1).execute(&db);
        assert_eq!(filtered.len(), 2);
        // A selection on a far-away attribute still type-checks and agrees
        // with the naive evaluation.
        let far = Query::new().select(a).filter_eq(d, 0);
        assert!(far.execute(&db).same_contents(&far.execute_naive(&db)));
    }

    #[test]
    fn cyclic_schema_routes_through_the_decomposition_path() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        for v in 0..4i64 {
            db.insert(EdgeId(0), Tuple::from_pairs([(a, v), (b, v)]));
            db.insert(EdgeId(1), Tuple::from_pairs([(b, v), (c, v)]));
            db.insert(EdgeId(2), Tuple::from_pairs([(a, v), (c, v % 3)]));
        }
        // Output + selection queries agree with the naive full join.
        for q in [
            Query::new().select(a),
            Query::new().select(a).select(c).filter_eq(b, 1),
            Query::new().select_all([a, b, c]),
        ] {
            let yann = q.execute_yannakakis(&db).expect("cyclic schemas execute");
            let naive = q.execute_naive(&db);
            assert!(yann.same_contents(&naive), "decomposed query diverged");
        }
        // The connection path still works (it never needs a join tree).
        assert!(!Query::new().select(a).execute(&db).is_empty());
    }

    #[test]
    fn query_with_no_matching_objects_is_empty() {
        let db = chain_db();
        let q = Query::new();
        assert!(q.execute(&db).attributes().is_empty());
        assert_eq!(format!("{}", q.plan(&db)), "join objects [] then project");
    }
}
