//! Versioned binary snapshots of a [`Database`].
//!
//! Text data files re-parse, re-validate and re-intern every tuple on every
//! load; at 10⁶–10⁷ tuples that dominates end-to-end query time.  A
//! snapshot instead dumps the engine's in-memory representation almost
//! verbatim — the interning dictionaries and the fixed-width `u32`-handle
//! row buffers — so loading is a handful of bulk reads plus cheap
//! validation, and the dedup indexes are **not** stored or built at all:
//! rows written from a live relation are distinct by construction, so the
//! loader marks the row index stale ([`Relation`]'s usual deferred-rebuild
//! machinery), and each pool's intern index is likewise left empty for the
//! first `intern`/`get` to rebuild — queries that never intern never pay
//! for it.  Pool dictionaries are stored *sorted by value* with a handle
//! permutation alongside, so distinctness (the invariant handle equality
//! rests on) is validated by a sequential neighbour scan instead of a
//! 10⁶-probe hash-table build.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic      8 B   b"HQSNAP\r\n"   (the \r\n catches text-mode mangling)
//! version    u32   bumped on any incompatible change; readers reject
//!                  other versions with a structured error
//! schema     node_count u32, then node names in id order (u32 len + UTF-8);
//!            edge_count u32, then per edge: label (u32 len + UTF-8),
//!            node_count u32, node ids (u32 each)
//! pools      pool_count u32, then per pool: value_count u32, then the
//!            dictionary values in strictly ascending value order (tag u8:
//!            0 = Int + i64, 1 = Str + u32 len + UTF-8) — strict order
//!            doubles as the distinctness check — then value_count × u32:
//!            the pool handle of each sorted value (a permutation; the
//!            loader scatters values back into handle order)
//! relations  one per schema edge, in edge order: pool index u32,
//!            row count u64, then row_count × width u32 handles
//! ```
//!
//! Databases whose relations live in different [`ValuePool`]s (cross-pool
//! joins translate lazily) are preserved as-is: each distinct pool is
//! dumped once and relations reference it by index, so a round trip
//! changes neither contents nor pool sharing structure.
//!
//! # Failure semantics
//!
//! Corruption never panics.  Every read is bounds-checked and every
//! structural invariant (handle ranges, row-buffer sizes, schema
//! consistency) is validated before a [`Database`] is assembled, so a
//! truncated, bit-flipped, wrong-version or wrong-magic file yields
//! [`EngineError::Parse`] — with the byte offset in the `line` field — or
//! [`EngineError::Io`], and the caller's existing state is untouched (the
//! loader only ever builds a fresh database).

use crate::database::Database;
use crate::govern::EngineError;
use crate::pool::ValuePool;
use crate::relation::Relation;
use crate::value::Value;
use hypergraph::{Hypergraph, HypergraphBuilder};
use std::path::Path;

/// The 8-byte file signature. `\r\n` at the end catches accidental newline
/// translation, the same trick as PNG's signature.
pub(crate) const MAGIC: [u8; 8] = *b"HQSNAP\r\n";

/// Current snapshot format version. Bumped on any incompatible layout
/// change; readers reject every other version with a structured error.
pub(crate) const FORMAT_VERSION: u32 = 1;

/// Whether `bytes` starts with the snapshot signature — the sniff the CLI
/// uses to accept a snapshot anywhere a text data file is accepted.
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

fn corrupt(at: usize, message: impl Into<String>) -> EngineError {
    EngineError::Parse {
        line: at,
        message: message.into(),
    }
}

// ---------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Serializes `db` into the version-1 snapshot byte layout.
pub(crate) fn encode(db: &Database) -> Vec<u8> {
    let schema = db.schema();
    // Distinct pools in first-use order: the database's own pool first,
    // then any relation pools not identical to one already collected.
    let mut pools: Vec<ValuePool> = vec![db.pool().clone()];
    let pool_index: Vec<u32> = db
        .relations()
        .iter()
        .map(|r| match pools.iter().position(|p| p.same_pool(r.pool())) {
            Some(i) => i as u32,
            None => {
                pools.push(r.pool().clone());
                (pools.len() - 1) as u32
            }
        })
        .collect();

    let mut out = Vec::with_capacity(64 + db.tuple_count() * 16);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);

    // Schema: node names in id order fix the numbering, then labeled edges.
    put_u32(&mut out, schema.node_count() as u32);
    for n in schema.nodes().iter() {
        put_str(&mut out, schema.universe().name(n));
    }
    put_u32(&mut out, schema.edge_count() as u32);
    for e in schema.edges() {
        put_str(&mut out, &e.label);
        put_u32(&mut out, e.nodes.len() as u32);
        for n in e.nodes.iter() {
            put_u32(&mut out, n.0);
        }
    }

    // Pools: each dictionary sorted by value, then the handle of each
    // sorted value.  Saving pays an O(n log n) sort once so that every
    // load can validate distinctness with a sequential neighbour scan
    // and skip building the intern index entirely.
    put_u32(&mut out, pools.len() as u32);
    for p in &pools {
        let values = p.snapshot();
        let mut order: Vec<u32> = (0..values.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| values[a as usize].cmp(&values[b as usize]));
        put_u32(&mut out, values.len() as u32);
        for &h in &order {
            put_value(&mut out, &values[h as usize]);
        }
        for &h in &order {
            put_u32(&mut out, h);
        }
    }

    // Relations: raw fixed-width handle rows, in schema-edge order.
    for (r, &pi) in db.relations().iter().zip(&pool_index) {
        put_u32(&mut out, pi);
        put_u64(&mut out, r.len() as u64);
        for &h in r.raw_rows() {
            put_u32(&mut out, h);
        }
    }
    out
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked cursor over the snapshot buffer; every failure reports
/// the byte offset it happened at.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], EngineError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(corrupt(
                self.at,
                format!("truncated snapshot: {n} byte(s) of {what} missing"),
            )),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, EngineError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> Result<i64, EngineError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<&'a str, EngineError> {
        let at = self.at;
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|e| corrupt(at, format!("{what} is not UTF-8: {e}")))
    }

    /// A length prefix for `per`-byte-sized items must leave the remaining
    /// buffer plausible — this turns absurd (bit-flipped) counts into a
    /// structured error instead of an out-of-memory allocation attempt.
    fn checked_count(&self, n: u64, per: usize, what: &str) -> Result<usize, EngineError> {
        let remaining = (self.buf.len() - self.at) as u64;
        if n.saturating_mul(per as u64) > remaining {
            return Err(corrupt(
                self.at,
                format!("{what} count {n} exceeds the remaining {remaining} byte(s)"),
            ));
        }
        Ok(n as usize)
    }
}

/// Reassembles a [`Database`] from snapshot bytes. See the module docs for
/// the layout and failure semantics.
pub(crate) fn decode(buf: &[u8]) -> Result<Database, EngineError> {
    let mut r = Reader { buf, at: 0 };
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(corrupt(0, "not a snapshot: bad magic bytes"));
    }
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(corrupt(
            MAGIC.len(),
            format!("unsupported snapshot format version {version} (expected {FORMAT_VERSION})"),
        ));
    }

    // Schema.
    let raw_nodes: u64 = r.u32("node count")?.into();
    let node_count = r.checked_count(raw_nodes, 5, "node")?;
    let mut builder = HypergraphBuilder::new();
    let mut names: Vec<String> = Vec::with_capacity(node_count);
    for i in 0..node_count {
        let name = r.str("node name")?;
        if names.iter().any(|n| n == name) {
            return Err(corrupt(r.at, format!("duplicate node name {name:?}")));
        }
        builder = builder.node(name);
        names.push(name.to_owned());
        let _ = i;
    }
    let raw_edges: u64 = r.u32("edge count")?.into();
    let edge_count = r.checked_count(raw_edges, 8, "edge")?;
    for _ in 0..edge_count {
        let at = r.at;
        let label = r.str("edge label")?.to_owned();
        let raw_n: u64 = r.u32("edge node count")?.into();
        let n = r.checked_count(raw_n, 4, "edge node")?;
        let mut edge_nodes: Vec<&str> = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u32("edge node id")? as usize;
            let name = names
                .get(id)
                .ok_or_else(|| corrupt(at, format!("edge {label:?} references node id {id}")))?;
            edge_nodes.push(name);
        }
        builder = builder.edge(label, edge_nodes);
    }
    let schema: Hypergraph = builder
        .build()
        .map_err(|e| corrupt(r.at, format!("invalid snapshot schema: {e}")))?;
    if schema.node_count() != node_count {
        return Err(corrupt(r.at, "schema node numbering is not dense"));
    }

    // Pools: values arrive sorted, so distinctness — the invariant handle
    // equality rests on — is a neighbour comparison per value; the
    // permutation scatters them back into handle order, and the intern
    // index is left for the first `intern`/`get` to rebuild lazily.
    let raw_pools: u64 = r.u32("pool count")?.into();
    let pool_count = r.checked_count(raw_pools, 4, "pool")?;
    if pool_count == 0 {
        return Err(corrupt(r.at, "snapshot declares zero value pools"));
    }
    let mut pools: Vec<ValuePool> = Vec::with_capacity(pool_count);
    for _ in 0..pool_count {
        let raw_n: u64 = r.u32("pool value count")?.into();
        // ≥ 9 bytes per value: tag + payload is at least 5, the
        // permutation entry another 4.
        let n = r.checked_count(raw_n, 9, "pool value")?;
        let mut sorted: Vec<Value> = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.at;
            let v = match r.u8("value tag")? {
                0 => Value::Int(r.i64("integer value")?),
                1 => Value::Str(r.str("string value")?.to_owned()),
                t => return Err(corrupt(at, format!("unknown value tag {t}"))),
            };
            if let Some(prev) = sorted.last() {
                if *prev >= v {
                    return Err(corrupt(
                        at,
                        format!("pool dictionary not strictly ascending ({prev} then {v})"),
                    ));
                }
            }
            sorted.push(v);
        }
        let perm_at = r.at;
        let perm = r.take(n * 4, "pool handle permutation")?;
        let mut dict: Vec<Value> = vec![Value::Int(0); n];
        let mut seen = vec![false; n];
        for (v, c) in sorted.into_iter().zip(perm.chunks_exact(4)) {
            let h = u32::from_le_bytes(c.try_into().unwrap()) as usize;
            if h >= n || seen[h] {
                return Err(corrupt(
                    perm_at,
                    format!("pool handle permutation is invalid at handle {h}"),
                ));
            }
            seen[h] = true;
            dict[h] = v;
        }
        pools.push(ValuePool::from_dense_values(dict));
    }

    // Relations, one per schema edge in edge order.
    let mut relations: Vec<Relation> = Vec::with_capacity(schema.edge_count());
    for e in schema.edges() {
        let at = r.at;
        let pi = r.u32("relation pool index")? as usize;
        let pool = pools
            .get(pi)
            .ok_or_else(|| corrupt(at, format!("relation {:?} references pool {pi}", e.label)))?
            .clone();
        let width = e.nodes.len();
        let raw_len = r.u64("relation row count")?;
        let len = r.checked_count(raw_len, width * 4, "row")?;
        let mut rows: Vec<u32> = Vec::with_capacity(len * width);
        let bytes = r.take(len * width * 4, "row data")?;
        rows.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        let rel = Relation::from_raw_parts(e.label.clone(), e.nodes.clone(), pool, rows, len)
            .map_err(|m| corrupt(at, format!("relation {:?}: {m}", e.label)))?;
        relations.push(rel);
    }
    if r.at != r.buf.len() {
        return Err(corrupt(
            r.at,
            format!(
                "{} trailing byte(s) after the last relation",
                r.buf.len() - r.at
            ),
        ));
    }
    Database::new(schema, relations).map_err(|e| {
        corrupt(
            0,
            format!("snapshot assembles an inconsistent database: {e}"),
        )
    })
}

// ------------------------------------------------------------- public API

impl Database {
    /// Serializes the database into the versioned binary snapshot format
    /// (see the [module docs](self) for the layout) and writes it to
    /// `path`.  I/O failures surface as [`EngineError::Io`].
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        let path = path.as_ref();
        std::fs::write(path, encode(self))
            .map_err(|e| EngineError::Io(format!("cannot write snapshot {}: {e}", path.display())))
    }

    /// The snapshot byte image [`save_snapshot`](Database::save_snapshot)
    /// writes — for callers managing their own I/O.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        encode(self)
    }

    /// Loads a database from a snapshot file written by
    /// [`save_snapshot`](Database::save_snapshot).
    ///
    /// Corruption in any form — wrong magic, unsupported version,
    /// truncation, out-of-range handles or counts — yields a structured
    /// [`EngineError::Parse`] (whose `line` field carries the byte offset)
    /// and never panics; I/O failures yield [`EngineError::Io`].  The
    /// loader only ever constructs a fresh database, so a failed load
    /// cannot disturb existing state.
    ///
    /// # Examples
    ///
    /// ```
    /// use hypergraph::{EdgeId, Hypergraph};
    /// use reldb::{Database, Tuple};
    ///
    /// let schema = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
    /// let (a, b) = (schema.node("A").unwrap(), schema.node("B").unwrap());
    /// let mut db = Database::empty(schema);
    /// db.insert(EdgeId(0), Tuple::from_pairs([(a, 1), (b, 2)]));
    ///
    /// let path = std::env::temp_dir().join("hq-snapshot-doc.hqs");
    /// db.save_snapshot(&path).unwrap();
    /// let loaded = Database::load_snapshot(&path).unwrap();
    /// assert_eq!(loaded.tuple_count(), 1);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Database, EngineError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| {
            EngineError::Io(format!("cannot read snapshot {}: {e}", path.display()))
        })?;
        Self::from_snapshot_bytes(&bytes)
    }

    /// Reassembles a database from in-memory snapshot bytes — the
    /// file-free core of [`load_snapshot`](Database::load_snapshot), with
    /// the same failure semantics.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Database, EngineError> {
        decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use hypergraph::EdgeId;

    fn sample_db() -> Database {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut db = Database::empty(h);
        for i in 0..50i64 {
            db.insert(EdgeId(0), Tuple::from_pairs([(a, i), (b, i % 7)]));
            db.insert(
                EdgeId(1),
                Tuple::from_pairs([(b, Value::Int(i % 7)), (c, Value::str(format!("v{i}")))]),
            );
        }
        db
    }

    fn same_database(x: &Database, y: &Database) -> bool {
        x.schema().same_edge_sets(y.schema())
            && x.relations().len() == y.relations().len()
            && x.relations()
                .iter()
                .zip(y.relations())
                .all(|(a, b)| a.same_contents(b))
    }

    #[test]
    fn round_trip_preserves_contents() {
        let db = sample_db();
        let loaded = Database::from_snapshot_bytes(&db.to_snapshot_bytes()).unwrap();
        assert!(same_database(&db, &loaded));
        // One shared pool in, one shared pool out.
        assert!(loaded.relations()[0]
            .pool()
            .same_pool(loaded.relations()[1].pool()));
    }

    #[test]
    fn round_trip_preserves_cross_pool_structure() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"]]).unwrap();
        let (a, b, c) = (
            h.node("A").unwrap(),
            h.node("B").unwrap(),
            h.node("C").unwrap(),
        );
        let mut r = Relation::new("e0", h.node_set(["A", "B"]).unwrap());
        let mut s = Relation::new("e1", h.node_set(["B", "C"]).unwrap());
        r.insert(Tuple::from_pairs([(a, 1), (b, 2)]));
        s.insert(Tuple::from_pairs([(b, 2), (c, 3)]));
        let db = Database::new(h, vec![r, s]).unwrap();
        assert!(!db.relations()[0].pool().same_pool(db.relations()[1].pool()));
        let loaded = Database::from_snapshot_bytes(&db.to_snapshot_bytes()).unwrap();
        assert!(same_database(&db, &loaded));
        assert!(!loaded.relations()[0]
            .pool()
            .same_pool(loaded.relations()[1].pool()));
    }

    #[test]
    fn empty_database_round_trips() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        let db = Database::empty(h);
        let loaded = Database::from_snapshot_bytes(&db.to_snapshot_bytes()).unwrap();
        assert!(same_database(&db, &loaded));
        assert_eq!(loaded.tuple_count(), 0);
    }

    #[test]
    fn wrong_magic_is_a_structured_error() {
        let mut bytes = sample_db().to_snapshot_bytes();
        bytes[0] = b'X';
        match Database::from_snapshot_bytes(&bytes) {
            Err(EngineError::Parse { line: 0, message }) => {
                assert!(message.contains("magic"), "{message}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_a_structured_error() {
        let mut bytes = sample_db().to_snapshot_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        match Database::from_snapshot_bytes(&bytes) {
            Err(EngineError::Parse { message, .. }) => {
                assert!(message.contains("version 99"), "{message}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_every_prefix_never_panics() {
        let bytes = sample_db().to_snapshot_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    Database::from_snapshot_bytes(&bytes[..cut]),
                    Err(EngineError::Parse { .. })
                ),
                "prefix of {cut} byte(s) must fail structurally"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_db().to_snapshot_bytes();
        bytes.push(0);
        assert!(matches!(
            Database::from_snapshot_bytes(&bytes),
            Err(EngineError::Parse { .. })
        ));
    }

    /// A minimal hand-built image — schema `R(A)`, one pool with the given
    /// sorted-value section and handle permutation, zero rows — for
    /// exercising the pool-section validators directly.
    fn image_with_pool(sorted: &[Value], perm: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, 1); // node count
        put_str(&mut out, "A");
        put_u32(&mut out, 1); // edge count
        put_str(&mut out, "R");
        put_u32(&mut out, 1); // edge width
        put_u32(&mut out, 0); // node id
        put_u32(&mut out, 1); // pool count
        put_u32(&mut out, sorted.len() as u32);
        for v in sorted {
            put_value(&mut out, v);
        }
        for &h in perm {
            put_u32(&mut out, h);
        }
        put_u32(&mut out, 0); // relation pool index
        put_u64(&mut out, 0); // row count
        out
    }

    #[test]
    fn pool_permutation_scatters_values_back_into_handle_order() {
        let ok = image_with_pool(&[Value::Int(1), Value::Int(2)], &[1, 0]);
        let db = Database::from_snapshot_bytes(&ok).unwrap();
        let pool = db.relations()[0].pool();
        assert_eq!(pool.value(0), Value::Int(2));
        assert_eq!(pool.value(1), Value::Int(1));
        // The lazily rebuilt intern index agrees with the dictionary.
        assert_eq!(pool.get(&Value::Int(1)), Some(1));
    }

    #[test]
    fn duplicate_or_disordered_pool_values_are_rejected() {
        for sorted in [
            [Value::Int(1), Value::Int(1)], // duplicate
            [Value::Int(2), Value::Int(1)], // out of order
        ] {
            let bytes = image_with_pool(&sorted, &[0, 1]);
            match Database::from_snapshot_bytes(&bytes) {
                Err(EngineError::Parse { message, .. }) => {
                    assert!(message.contains("ascending"), "{message}")
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_pool_permutations_are_rejected() {
        for perm in [[0u32, 0], [0, 5]] {
            let bytes = image_with_pool(&[Value::Int(1), Value::Int(2)], &perm);
            match Database::from_snapshot_bytes(&bytes) {
                Err(EngineError::Parse { message, .. }) => {
                    assert!(message.contains("permutation"), "{message}")
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_file_is_io_not_panic() {
        match Database::load_snapshot("/nonexistent/dir/x.hqs") {
            Err(EngineError::Io(m)) => assert!(m.contains("cannot read")),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
