//! Execution policy: join-strategy selection and parallelism knobs.
//!
//! The columnar kernels come in two physical flavors — hash (build the
//! smaller side, probe the larger) and sort-merge (sort row-id permutations
//! by the key columns, merge equal-key runs).  Hash wins on near-unique
//! keys; sort-merge wins when keys are heavily duplicated (skewed data),
//! where the pattern-defeating sort degenerates towards linear and the merge
//! replaces per-row hashing.  [`JoinStrategy::Auto`] picks per operation
//! from an estimated distinct-key ratio (the rows themselves are distinct —
//! the relation's dedup index guarantees that — so sampled key duplication
//! measures genuine key skew).
//!
//! [`ExecPolicy`] bundles the strategy with the parallelism knobs used by
//! the level-synchronous Yannakakis reducer
//! ([`full_reduce_with`](crate::full_reduce_with)): how many scoped worker
//! threads to use and the total-tuple threshold below which spawning threads
//! costs more than it saves.

/// Which physical join/semijoin kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Hash build + probe (the columnar default).
    Hash,
    /// Sort row-id permutations by the key columns and merge.
    SortMerge,
    /// Pick per operation from the estimated distinct-key ratio.
    #[default]
    Auto,
}

impl JoinStrategy {
    /// Parses a CLI spelling (`hash`, `sortmerge`/`sort-merge`, `auto`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(Self::Hash),
            "sortmerge" | "sort-merge" => Ok(Self::SortMerge),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown join strategy {other:?} (expected hash, sortmerge or auto)"
            )),
        }
    }
}

/// Keys with a distinct-key ratio at or below this are considered skewed
/// enough for sort-merge under [`JoinStrategy::Auto`].
pub(crate) const AUTO_SORTMERGE_MAX_DISTINCT_RATIO: f64 = 0.05;

/// How the Yannakakis reducer and join execute: join strategy plus the
/// scoped-thread parallelism knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Physical kernel selection for every join/semijoin.
    pub strategy: JoinStrategy,
    /// Worker threads for the level-synchronous reducer passes; `0` means
    /// auto-detect ([`std::thread::available_parallelism`]).
    pub threads: usize,
    /// Total database tuples below which the reducer stays sequential even
    /// when `threads > 1` (thread spawning would dominate).
    pub parallel_threshold: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            strategy: JoinStrategy::Auto,
            threads: 0,
            parallel_threshold: 4096,
        }
    }
}

impl ExecPolicy {
    /// A fully sequential policy with an explicit strategy — what the
    /// benchmarks use to isolate one kernel.
    pub fn sequential(strategy: JoinStrategy) -> Self {
        Self {
            strategy,
            threads: 1,
            parallel_threshold: usize::MAX,
        }
    }

    /// A parallel policy pinned to `threads` workers that always engages
    /// (no tuple threshold) — what the benchmarks and CI use for
    /// reproducible worker counts.
    pub fn parallel(strategy: JoinStrategy, threads: usize) -> Self {
        Self {
            strategy,
            threads: threads.max(1),
            parallel_threshold: 0,
        }
    }

    /// The worker count to actually use for a workload of `total_tuples`:
    /// resolves `threads == 0` to the machine's available parallelism and
    /// applies the sequential-fallback threshold.
    pub fn effective_threads(&self, total_tuples: usize) -> usize {
        if total_tuples < self.parallel_threshold {
            return 1;
        }
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parses_cli_spellings() {
        assert_eq!(JoinStrategy::parse("hash"), Ok(JoinStrategy::Hash));
        assert_eq!(
            JoinStrategy::parse("sortmerge"),
            Ok(JoinStrategy::SortMerge)
        );
        assert_eq!(
            JoinStrategy::parse("sort-merge"),
            Ok(JoinStrategy::SortMerge)
        );
        assert_eq!(JoinStrategy::parse("auto"), Ok(JoinStrategy::Auto));
        assert!(JoinStrategy::parse("quantum").is_err());
    }

    #[test]
    fn effective_threads_applies_threshold_and_pin() {
        let p = ExecPolicy::parallel(JoinStrategy::Hash, 4);
        assert_eq!(p.effective_threads(0), 4);
        assert_eq!(p.effective_threads(1_000_000), 4);
        let s = ExecPolicy::sequential(JoinStrategy::Hash);
        assert_eq!(s.effective_threads(1_000_000), 1);
        let auto = ExecPolicy::default();
        assert_eq!(
            auto.effective_threads(10),
            1,
            "below threshold stays sequential"
        );
        assert!(auto.effective_threads(1_000_000) >= 1);
    }
}
