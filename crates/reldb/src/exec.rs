//! Execution policy and worker pool: join-strategy selection, parallelism
//! knobs, and the leased worker threads behind the level-synchronous
//! Yannakakis engine.
//!
//! The columnar kernels come in two physical flavors — hash (build the
//! smaller side, probe the larger) and sort-merge (sort row-id permutations
//! by the key columns, merge equal-key runs).  Hash wins on near-unique
//! keys; sort-merge wins when keys are heavily duplicated (skewed data),
//! where the pattern-defeating sort degenerates towards linear and the merge
//! replaces per-row hashing.  [`JoinStrategy::Auto`] picks per operation
//! from an estimated distinct-key ratio (the rows themselves are distinct —
//! the relation's dedup index guarantees that — so sampled key duplication
//! measures genuine key skew).
//!
//! [`ExecPolicy`] bundles the strategy with the parallelism knobs used by
//! the level-synchronous Yannakakis reducer and bottom-up join
//! ([`full_reduce_with`](crate::full_reduce_with),
//! [`yannakakis_join_with`](crate::yannakakis_join_with)): how many worker
//! threads to use, the total-tuple threshold below which parallel execution
//! costs more than it saves, whether workers are leased from the shared
//! [`WorkerPool`] or spawned fresh, and the [`JoinStrategy::Auto`]
//! distinct-key-ratio threshold.
//!
//! # The worker pool
//!
//! Per-level `std::thread::scope` spawning dominates small tree levels (the
//! common case: a chain's levels are singletons and a star has exactly two),
//! so the parallel engine does not spawn per level.  Instead it leases
//! workers once per reducer/join call from a process-wide [`WorkerPool`] of
//! long-lived threads, feeds every level's jobs to them through channels,
//! and returns the workers when the call ends ([`WorkerLease`] returns them
//! on drop).  Jobs own their data (`'static` closures), which is what lets
//! safe Rust hand them to threads that outlive any one call.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

/// Which physical join/semijoin kernel to run.
///
/// # Examples
///
/// ```
/// use reldb::JoinStrategy;
///
/// // The CLI spellings round-trip; `Auto` is the default cost-pick planner.
/// assert_eq!(JoinStrategy::parse("sort-merge"), Ok(JoinStrategy::SortMerge));
/// assert_eq!(JoinStrategy::default(), JoinStrategy::Auto);
/// assert!(JoinStrategy::parse("quantum").is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Hash build + probe (the columnar default).
    Hash,
    /// Sort row-id permutations by the key columns and merge.
    SortMerge,
    /// Pick per operation from the estimated distinct-key ratio: sort-merge
    /// at or below the operator's calibrated crossover
    /// ([`AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO`] for joins,
    /// [`AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO`] for semijoins, both
    /// overridable via [`ExecPolicy`]), hash otherwise.
    #[default]
    Auto,
}

impl JoinStrategy {
    /// Parses a CLI spelling (`hash`, `sortmerge`/`sort-merge`, `auto`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(Self::Hash),
            "sortmerge" | "sort-merge" => Ok(Self::SortMerge),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown join strategy {other:?} (expected hash, sortmerge or auto)"
            )),
        }
    }
}

/// The original one-size-fits-all [`JoinStrategy::Auto`] crossover guess:
/// keys with an estimated distinct-key ratio at or below this were
/// considered skewed enough for sort-merge, for joins and semijoins alike.
///
/// Superseded by the per-operator calibrated defaults
/// [`AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO`] and
/// [`AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO`]; kept so benchmarks can
/// measure the calibrated policy against the guess it replaced
/// (`columnar-auto` vs. `columnar-auto-guess` rows in `hyperq bench`).
pub const AUTO_SORTMERGE_MAX_DISTINCT_RATIO: f64 = 0.05;

/// Distinct-key-ratio crossover for **joins** under [`JoinStrategy::Auto`]:
/// at or below this *sampled* ratio (the estimator samples ≤128 evenly
/// spaced rows) the sort-merge kernel is picked over hash build + probe.
///
/// Calibrated with `hyperq bench --calibrate`, which sweeps two-relation
/// join workloads across distinct-key counts and relation sizes and times
/// both kernels; the metrics layer ([`crate::metrics`]) reports the
/// engine's own sampled ratio per cell, so the crossover is expressed in
/// the units the planner actually compares.  Measured (4-core-class x86,
/// single-column keys): at 4000 rows/side sort-merge won every swept cell
/// (5–21%); at 1000 rows the kernels sat within noise below sampled ≈0.55
/// and hash pulled slightly ahead above it.  0.55 keeps sort-merge where
/// key duplication is real and leaves near-unique joins — the hash build's
/// cheapest regime — on hash.  The old one-size 0.05 guess starved joins of
/// sort-merge wins an order of magnitude wide; see README "Observability".
pub const AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO: f64 = 0.55;

/// Distinct-key-ratio crossover for **semijoins** under
/// [`JoinStrategy::Auto`]: at or below this sampled ratio the sort-merge
/// mask kernel is picked over the hash mask.
///
/// Calibrated separately from joins (same `hyperq bench --calibrate`
/// sweep), and the measurement was one-sided: the hash mask never won a
/// single swept cell at any ratio or size (sort-merge margins 20–45%), and
/// the pipeline-level bench rows agree (`full_reduce` under the pinned
/// sort-merge engine beats the pinned hash engine 1.5–2.2× on every
/// workload).  Sorting interned `u32` key handles is simply cheaper than
/// per-row hashing here, so `Auto` semijoins always take sort-merge: the
/// threshold is 1.0 and the [`ExecPolicy`] field is the opt-out for
/// hardware where the trade-off measures differently.
pub const AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO: f64 = 1.0;

/// Default morsel size for [`ExecPolicy::morsel_rows`]: the number of rows
/// one worker claims from a [`MorselQueue`] per pull.
///
/// Chosen so a morsel's row span (tens of KiB of handles at typical widths)
/// stays cache-friendly while keeping the queue's atomic traffic far below
/// per-row cost: a 10⁷-row probe is ~600 pulls, a 10⁵-row probe still
/// splits into enough morsels to balance a handful of workers.
pub const DEFAULT_MORSEL_ROWS: usize = 16_384;

/// A shared work queue over the row range `0..total`, handing out
/// fixed-size chunks ("morsels") to whoever asks next.
///
/// This is the engine's work-stealing primitive: instead of pre-slicing a
/// row range into one shard per worker (which serializes on the slowest
/// shard when selectivity is uneven), every worker loops
/// `while let Some(range) = queue.next()` and pulls the next unclaimed
/// morsel.  The cursor is a single atomic fetch-add, so claiming a morsel
/// is contention-free in practice at [`DEFAULT_MORSEL_ROWS`] granularity.
///
/// # Examples
///
/// ```
/// use reldb::exec::MorselQueue;
///
/// let q = MorselQueue::new(10, 4);
/// assert_eq!(q.morsels(), 3);
/// assert_eq!(q.next(), Some(0..4));
/// assert_eq!(q.next(), Some(4..8));
/// assert_eq!(q.next(), Some(8..10)); // final partial morsel
/// assert_eq!(q.next(), None);
/// ```
#[derive(Debug)]
pub struct MorselQueue {
    cursor: AtomicUsize,
    total: usize,
    morsel: usize,
}

impl MorselQueue {
    /// A queue over `0..total` rows in chunks of `morsel_rows` (clamped to
    /// at least 1).
    pub fn new(total: usize, morsel_rows: usize) -> Self {
        Self {
            cursor: AtomicUsize::new(0),
            total,
            morsel: morsel_rows.max(1),
        }
    }

    /// Claims the next unclaimed morsel, or `None` when the range is
    /// exhausted.  Safe to call from any number of threads; every row is
    /// handed out exactly once.
    pub fn next(&self) -> Option<Range<usize>> {
        let start = self.cursor.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..self.total.min(start + self.morsel))
    }

    /// Total rows the queue spans.
    pub fn total(&self) -> usize {
        self.total
    }

    /// How many morsels the range splits into.
    pub fn morsels(&self) -> usize {
        self.total.div_ceil(self.morsel)
    }
}

/// How the Yannakakis reducer and join execute: join strategy plus the
/// worker-thread parallelism knobs.
///
/// # Examples
///
/// ```
/// use reldb::{ExecPolicy, JoinStrategy};
///
/// // The default policy: auto strategy, auto-detected worker count,
/// // sequential below the tuple threshold, leased pool workers.
/// let policy = ExecPolicy::default();
/// assert_eq!(policy.strategy, JoinStrategy::Auto);
/// assert!(policy.reuse_pool);
/// assert_eq!(policy.effective_threads(16), 1); // small input stays sequential
///
/// // A pinned policy for reproducible measurements, with the Auto
/// // sort-merge threshold overridden.
/// let pinned = ExecPolicy {
///     auto_sortmerge_max_distinct_ratio: 0.2,
///     ..ExecPolicy::parallel(JoinStrategy::Auto, 2)
/// };
/// assert_eq!(pinned.effective_threads(1_000_000), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPolicy {
    /// Physical kernel selection for every join/semijoin.
    pub strategy: JoinStrategy,
    /// Worker threads for the level-synchronous reducer and join passes;
    /// `0` means auto-detect ([`std::thread::available_parallelism`]).
    pub threads: usize,
    /// Total database tuples below which execution stays sequential even
    /// when `threads > 1` (worker hand-off would dominate).
    pub parallel_threshold: usize,
    /// Distinct-key-ratio threshold at or below which [`JoinStrategy::Auto`]
    /// picks sort-merge for **joins**.  Defaults to the calibrated
    /// [`AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO`].
    pub auto_sortmerge_max_distinct_ratio: f64,
    /// Distinct-key-ratio threshold at or below which [`JoinStrategy::Auto`]
    /// picks sort-merge for **semijoins**.  Defaults to the calibrated
    /// [`AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO`].
    pub auto_semijoin_sortmerge_max_distinct_ratio: f64,
    /// Lease long-lived workers from the shared [`WorkerPool`] (`true`, the
    /// default) instead of spawning fresh threads per call (`false`, kept
    /// for benchmarking the pool against the spawn overhead it removes).
    pub reuse_pool: bool,
    /// Rows per morsel for the work-pulling parallel paths (join probe
    /// sharding, level-wide reduction, bag materialization): workers claim
    /// chunks of this many rows from a shared [`MorselQueue`] instead of
    /// receiving one pre-sliced shard each.  Inputs smaller than one morsel
    /// fall back to the sequential kernel.  Defaults to
    /// [`DEFAULT_MORSEL_ROWS`]; `0` is treated as `1`.
    pub morsel_rows: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            strategy: JoinStrategy::Auto,
            threads: 0,
            parallel_threshold: 4096,
            auto_sortmerge_max_distinct_ratio: AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            auto_semijoin_sortmerge_max_distinct_ratio: AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO,
            reuse_pool: true,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

impl ExecPolicy {
    /// A fully sequential policy with an explicit strategy — what the
    /// benchmarks use to isolate one kernel.
    pub fn sequential(strategy: JoinStrategy) -> Self {
        Self {
            strategy,
            threads: 1,
            parallel_threshold: usize::MAX,
            ..Self::default()
        }
    }

    /// A parallel policy pinned to `threads` pool workers that always
    /// engages (no tuple threshold) — what the benchmarks and CI use for
    /// reproducible worker counts.
    pub fn parallel(strategy: JoinStrategy, threads: usize) -> Self {
        Self {
            strategy,
            threads: threads.max(1),
            parallel_threshold: 0,
            ..Self::default()
        }
    }

    /// The worker count to actually use for a workload of `total_tuples`:
    /// resolves `threads == 0` to the machine's available parallelism and
    /// applies the sequential-fallback threshold.
    pub fn effective_threads(&self, total_tuples: usize) -> usize {
        if total_tuples < self.parallel_threshold {
            return 1;
        }
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
    }

    /// The morsel queue this policy prescribes for a scan of `rows` rows.
    pub fn morsels(&self, rows: usize) -> MorselQueue {
        MorselQueue::new(rows, self.morsel_rows)
    }

    /// Acquires the workers this policy wants for a workload of
    /// `total_tuples`: an inline (sequential) lease below the threshold,
    /// leased [`WorkerPool`] threads when `reuse_pool` is set, fresh
    /// spawn-per-batch threads otherwise.
    pub fn lease(&self, total_tuples: usize) -> WorkerLease {
        let threads = self.effective_threads(total_tuples);
        if threads <= 1 {
            WorkerLease::inline()
        } else if self.reuse_pool {
            WorkerPool::lease(threads)
        } else {
            WorkerLease::spawning(threads)
        }
    }
}

/// A unit of work handed to a worker thread: an owned closure.  Jobs carry
/// their data (`'static`) so they can outlive the call that created them —
/// results travel back through channels the job captures.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// What one job's completion reports back: `Ok` on success, or the caught
/// panic payload so the lease can re-raise it verbatim on the caller.
type JobResult = Result<(), Box<dyn Any + Send>>;

/// What a pool worker receives: a job plus the completion channel for the
/// batch it belongs to.
type WorkerMsg = (Job, Sender<JobResult>);

/// One long-lived pool thread, addressed by its private job channel.
struct PoolWorker {
    tx: Sender<WorkerMsg>,
    /// Set by the worker loop when a job panicked on this thread.  The loop
    /// itself survives the unwind and keeps serving the rest of the batch,
    /// but a thread that has unwound once is treated as suspect (thread-
    /// locals and any state a job leaked are in an unknown condition), so
    /// the lease retires it on return and spawns a replacement —
    /// self-healing instead of slow pool decay.
    poisoned: Arc<AtomicBool>,
}

impl PoolWorker {
    fn spawn() -> Self {
        let (tx, rx) = channel::<WorkerMsg>();
        let poisoned = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&poisoned);
        std::thread::Builder::new()
            .name("reldb-worker".to_owned())
            .spawn(move || Self::work(rx, flag))
            .expect("spawn pool worker");
        Self { tx, poisoned }
    }

    /// The worker loop: run jobs until the pool drops the channel.  A
    /// panicking job is caught and its payload shipped through the batch's
    /// completion channel so the lease can re-raise it on the caller's
    /// thread instead of deadlocking the batch; the worker marks itself
    /// poisoned so the lease can retire it afterwards.
    fn work(rx: Receiver<WorkerMsg>, poisoned: Arc<AtomicBool>) {
        while let Ok((job, done)) = rx.recv() {
            let result = catch_unwind(AssertUnwindSafe(job));
            if result.is_err() {
                poisoned.store(true, Ordering::Relaxed);
            }
            let _ = done.send(result);
        }
    }
}

/// The process-wide pool of long-lived worker threads behind the parallel
/// Yannakakis engine.
///
/// Threads are created lazily on first lease, handed out in batches
/// ([`WorkerPool::lease`]), and returned to the free list when the
/// [`WorkerLease`] drops — so repeated reducer/join calls (and every level
/// within one call) reuse the same threads instead of paying a spawn per
/// level.  Idle workers block on their channel and cost nothing.
pub struct WorkerPool;

fn free_workers() -> &'static Mutex<Vec<PoolWorker>> {
    static FREE: OnceLock<Mutex<Vec<PoolWorker>>> = OnceLock::new();
    FREE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Total pool workers retired-and-replaced after a panicking job poisoned
/// them — the deterministic observability hook behind the self-healing
/// tests.
static RESPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total worker threads spawned at lease time because the free list could
/// not cover the request — the "pool lease wait" signal `hyperqd`'s stats
/// registry exposes (a warm pool keeps this flat; growth under steady load
/// means leases are contending for workers).
static LEASE_SPAWNED: AtomicUsize = AtomicUsize::new(0);

impl WorkerPool {
    /// Leases `threads` workers from the pool, spawning new threads only if
    /// the free list cannot cover the request.  The workers are returned
    /// when the lease drops.
    pub fn lease(threads: usize) -> WorkerLease {
        if threads <= 1 {
            return WorkerLease::inline();
        }
        let mut workers = {
            let mut free = free_workers().lock().expect("worker pool lock");
            let at = free.len() - free.len().min(threads);
            free.split_off(at)
        };
        while workers.len() < threads {
            workers.push(PoolWorker::spawn());
            LEASE_SPAWNED.fetch_add(1, Ordering::Relaxed);
        }
        WorkerLease {
            mode: LeaseMode::Pooled(workers),
        }
    }

    /// Number of idle workers currently parked in the pool — observability
    /// for the lease/return cycle (tests assert workers come back).
    pub fn idle_workers() -> usize {
        free_workers().lock().expect("worker pool lock").len()
    }

    /// Process-lifetime count of pool workers that were retired after a
    /// panicking job and replaced with fresh threads at lease return —
    /// observability for the pool's self-healing (a healthy process keeps
    /// this at `0`).
    pub fn respawned_workers() -> usize {
        RESPAWNED.load(Ordering::Relaxed)
    }

    /// Process-lifetime count of worker threads spawned at lease time
    /// because the free list could not cover the request — the lease-wait
    /// counter behind the server stats registry.  Flat under steady load;
    /// growing means concurrent leases exceed the pool's high-water mark.
    pub fn lease_spawned_workers() -> usize {
        LEASE_SPAWNED.load(Ordering::Relaxed)
    }
}

enum LeaseMode {
    /// No workers: run batches inline on the caller thread.
    Inline,
    /// Spawn fresh threads per batch (the pre-pool behavior, kept so the
    /// benchmarks can measure what the pool saves).
    Spawn(usize),
    /// Leased long-lived pool threads.
    Pooled(Vec<PoolWorker>),
}

/// A batch executor over some worker threads, handed out by
/// [`WorkerPool::lease`] (or the spawn/inline constructors via
/// [`ExecPolicy::lease`]).  Dropping a pooled lease returns its workers to
/// the pool.
pub struct WorkerLease {
    mode: LeaseMode,
}

impl WorkerLease {
    /// A lease with no workers: [`WorkerLease::run`] executes inline.
    pub fn inline() -> Self {
        Self {
            mode: LeaseMode::Inline,
        }
    }

    /// A lease that spawns `threads` fresh threads per batch instead of
    /// using pool workers.
    pub fn spawning(threads: usize) -> Self {
        if threads <= 1 {
            return Self::inline();
        }
        Self {
            mode: LeaseMode::Spawn(threads),
        }
    }

    /// How many workers batches are spread across (`1` = inline).
    pub fn threads(&self) -> usize {
        match &self.mode {
            LeaseMode::Inline => 1,
            LeaseMode::Spawn(t) => *t,
            LeaseMode::Pooled(w) => w.len(),
        }
    }

    /// Runs a batch of jobs to completion.  Jobs are distributed round-robin
    /// across the leased workers; the call returns only after every job has
    /// finished, so borrow-free batches can be sequenced safely.
    ///
    /// # Panics
    /// If a job panicked, its payload is re-raised on the calling thread —
    /// after the whole batch has finished, so no job is left running
    /// through the caller's unwind.
    pub fn run(&self, jobs: Vec<Job>) {
        match &self.mode {
            LeaseMode::Inline => {
                for job in jobs {
                    job();
                }
            }
            LeaseMode::Spawn(threads) => {
                let per = jobs.len().div_ceil(*threads).max(1);
                let mut jobs = jobs;
                let mut handles = Vec::new();
                while !jobs.is_empty() {
                    let batch: Vec<Job> = jobs.drain(..per.min(jobs.len())).collect();
                    handles.push(std::thread::spawn(move || {
                        for job in batch {
                            job();
                        }
                    }));
                }
                // Join every handle before re-raising, preserving the first
                // panic's payload.
                let mut first_panic = None;
                for h in handles {
                    if let Err(payload) = h.join() {
                        first_panic.get_or_insert(payload);
                    }
                }
                if let Some(payload) = first_panic {
                    resume_unwind(payload);
                }
            }
            LeaseMode::Pooled(workers) => {
                let (done_tx, done_rx) = channel();
                let mut dispatched = 0usize;
                let mut first_panic: Option<Box<dyn Any + Send>> = None;
                for (i, job) in jobs.into_iter().enumerate() {
                    match workers[i % workers.len()].tx.send((job, done_tx.clone())) {
                        Ok(()) => dispatched += 1,
                        // The worker thread is gone (job panics are caught,
                        // so this means the thread itself died).  Run the
                        // job inline rather than losing it or unwinding
                        // with jobs undispatched.
                        Err(send_err) => {
                            let (job, _) = send_err.0;
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                                first_panic.get_or_insert(payload);
                            }
                        }
                    }
                }
                drop(done_tx);
                // Drain the whole batch before re-raising, preserving the
                // first panic's payload.
                for _ in 0..dispatched {
                    match done_rx.recv() {
                        Ok(Ok(())) => {}
                        Ok(Err(payload)) => {
                            first_panic.get_or_insert(payload);
                        }
                        // Every completion sender is gone with jobs still
                        // pending: a worker died mid-job.  Surface it as a
                        // panic payload instead of unwinding the runtime
                        // with an expect.
                        Err(_) => {
                            first_panic.get_or_insert(Box::new(
                                "pool worker died with jobs pending".to_owned(),
                            )
                                as Box<dyn Any + Send>);
                            break;
                        }
                    }
                }
                if let Some(payload) = first_panic {
                    resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        if let LeaseMode::Pooled(workers) = &mut self.mode {
            // Self-healing: poisoned workers (a job panicked on them) are
            // retired here — dropping the handle closes the channel and the
            // old thread exits — and replaced with fresh spawns, so the
            // pool returns to full strength instead of accumulating suspect
            // threads.
            let mut returned: Vec<PoolWorker> = workers
                .drain(..)
                .map(|w| {
                    if w.poisoned.load(Ordering::Relaxed) {
                        RESPAWNED.fetch_add(1, Ordering::Relaxed);
                        drop(w);
                        PoolWorker::spawn()
                    } else {
                        w
                    }
                })
                .collect();
            free_workers()
                .lock()
                .expect("worker pool lock")
                .append(&mut returned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn strategy_parses_cli_spellings() {
        assert_eq!(JoinStrategy::parse("hash"), Ok(JoinStrategy::Hash));
        assert_eq!(
            JoinStrategy::parse("sortmerge"),
            Ok(JoinStrategy::SortMerge)
        );
        assert_eq!(
            JoinStrategy::parse("sort-merge"),
            Ok(JoinStrategy::SortMerge)
        );
        assert_eq!(JoinStrategy::parse("auto"), Ok(JoinStrategy::Auto));
        assert!(JoinStrategy::parse("quantum").is_err());
    }

    #[test]
    fn effective_threads_applies_threshold_and_pin() {
        let p = ExecPolicy::parallel(JoinStrategy::Hash, 4);
        assert_eq!(p.effective_threads(0), 4);
        assert_eq!(p.effective_threads(1_000_000), 4);
        let s = ExecPolicy::sequential(JoinStrategy::Hash);
        assert_eq!(s.effective_threads(1_000_000), 1);
        let auto = ExecPolicy::default();
        assert_eq!(
            auto.effective_threads(10),
            1,
            "below threshold stays sequential"
        );
        assert!(auto.effective_threads(1_000_000) >= 1);
    }

    #[test]
    fn policy_carries_auto_ratio_overrides() {
        let d = ExecPolicy::default();
        assert!(
            (d.auto_sortmerge_max_distinct_ratio - AUTO_JOIN_SORTMERGE_MAX_DISTINCT_RATIO).abs()
                < 1e-12
        );
        assert!(
            (d.auto_semijoin_sortmerge_max_distinct_ratio
                - AUTO_SEMIJOIN_SORTMERGE_MAX_DISTINCT_RATIO)
                .abs()
                < 1e-12
        );
        let p = ExecPolicy {
            auto_sortmerge_max_distinct_ratio: 0.07,
            auto_semijoin_sortmerge_max_distinct_ratio: 0.03,
            ..ExecPolicy::sequential(JoinStrategy::Auto)
        };
        assert!((p.auto_sortmerge_max_distinct_ratio - 0.07).abs() < 1e-12);
        assert!((p.auto_semijoin_sortmerge_max_distinct_ratio - 0.03).abs() < 1e-12);
        assert!(
            (p.auto_sortmerge_max_distinct_ratio - d.auto_sortmerge_max_distinct_ratio).abs()
                > 1e-12
        );
        assert!(
            (p.auto_semijoin_sortmerge_max_distinct_ratio
                - d.auto_semijoin_sortmerge_max_distinct_ratio)
                .abs()
                > 1e-12
        );
    }

    #[test]
    fn morsel_queue_covers_range_exactly_once() {
        let q = MorselQueue::new(100, 32);
        assert_eq!(q.total(), 100);
        assert_eq!(q.morsels(), 4);
        let mut seen = [false; 100];
        while let Some(r) = q.next() {
            for i in r {
                assert!(!seen[i], "row {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "queue skipped rows");
        assert_eq!(q.next(), None, "exhausted queue stays exhausted");
        // Degenerate shapes.
        assert_eq!(MorselQueue::new(0, 8).next(), None);
        assert_eq!(MorselQueue::new(5, 0).next(), Some(0..1)); // clamped to 1
        assert_eq!(MorselQueue::new(3, 100).next(), Some(0..3));
    }

    /// Concurrent pullers partition the range: no row is claimed twice and
    /// none is dropped, whatever the interleaving.
    #[test]
    fn morsel_queue_is_safe_under_concurrent_pull() {
        let q = Arc::new(MorselQueue::new(10_000, 7));
        let claimed = Arc::new(AtomicUsize::new(0));
        let lease = WorkerPool::lease(4);
        let jobs: Vec<Job> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let claimed = Arc::clone(&claimed);
                Box::new(move || {
                    while let Some(r) = q.next() {
                        claimed.fetch_add(r.len(), Ordering::SeqCst);
                    }
                }) as Job
            })
            .collect();
        lease.run(jobs);
        assert_eq!(claimed.load(Ordering::SeqCst), 10_000);
        assert_eq!(q.next(), None);
    }

    #[test]
    fn policy_carries_morsel_rows() {
        assert_eq!(ExecPolicy::default().morsel_rows, DEFAULT_MORSEL_ROWS);
        let p = ExecPolicy {
            morsel_rows: 64,
            ..ExecPolicy::parallel(JoinStrategy::Hash, 2)
        };
        let q = p.morsels(130);
        assert_eq!(q.morsels(), 3);
    }

    /// Every lease mode runs every job exactly once and waits for all of
    /// them before returning.
    #[test]
    fn leases_run_all_jobs_to_completion() {
        for lease in [
            WorkerLease::inline(),
            WorkerLease::spawning(3),
            WorkerPool::lease(3),
        ] {
            let counter = Arc::new(AtomicUsize::new(0));
            let jobs: Vec<Job> = (0..17)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job
                })
                .collect();
            lease.run(jobs);
            assert_eq!(counter.load(Ordering::SeqCst), 17);
            // A second batch on the same lease works too (reuse in one call).
            let c = Arc::clone(&counter);
            lease.run(vec![Box::new(move || {
                c.fetch_add(10, Ordering::SeqCst);
            })]);
            assert_eq!(counter.load(Ordering::SeqCst), 27);
        }
    }

    /// Dropping a pooled lease returns its workers: a subsequent lease can
    /// be served and the free list refills.
    #[test]
    fn pooled_workers_are_returned_on_drop() {
        // Two overlapping leases force distinct worker sets to exist.
        let a = WorkerPool::lease(3);
        let b = WorkerPool::lease(2);
        assert_eq!(a.threads(), 3);
        assert_eq!(b.threads(), 2);
        drop(a);
        drop(b);
        // The free list is process-wide and other tests lease from it
        // concurrently, so poll instead of asserting a snapshot: the five
        // returned workers cannot all stay leased-out forever.
        for _ in 0..200 {
            if WorkerPool::idle_workers() >= 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("dropped lease never returned workers to the pool");
    }

    #[test]
    fn policy_lease_respects_threshold_mode_and_pool_flag() {
        let seq = ExecPolicy::sequential(JoinStrategy::Hash);
        assert_eq!(seq.lease(1_000_000).threads(), 1);
        let pooled = ExecPolicy::parallel(JoinStrategy::Hash, 2);
        assert_eq!(pooled.lease(0).threads(), 2);
        let spawn = ExecPolicy {
            reuse_pool: false,
            ..ExecPolicy::parallel(JoinStrategy::Hash, 2)
        };
        assert_eq!(spawn.lease(0).threads(), 2);
        // Below the threshold every mode degrades to inline.
        let auto = ExecPolicy::default();
        assert_eq!(auto.lease(1).threads(), 1);
    }

    /// A panicking job surfaces as a panic on the calling thread for both
    /// thread-backed modes (the pool must not deadlock on a lost job), and
    /// the original payload survives the trip — a parallel-only failure
    /// must be as debuggable as a sequential one.
    #[test]
    fn panicking_jobs_propagate_with_payload() {
        for lease in [WorkerLease::spawning(2), WorkerPool::lease(2)] {
            let boom = catch_unwind(AssertUnwindSafe(|| {
                lease.run(vec![
                    Box::new(|| {}) as Job,
                    Box::new(|| panic!("boom in job")) as Job,
                ]);
            }));
            let payload = boom.expect_err("job panic must propagate");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| payload.downcast_ref::<String>().cloned());
            assert_eq!(msg.as_deref(), Some("boom in job"));
            // The lease stays usable afterwards.
            lease.run(vec![Box::new(|| {}) as Job]);
        }
    }

    /// A panicking job poisons its pool worker; returning the lease retires
    /// that worker and spawns a replacement, so the pool recovers to full
    /// strength — `idle_workers` refills and later leases run fine.
    #[test]
    fn pool_recovers_full_strength_after_a_panic() {
        let lease = WorkerPool::lease(2);
        let respawned_before = WorkerPool::respawned_workers();
        let boom = catch_unwind(AssertUnwindSafe(|| {
            lease.run(vec![Box::new(|| panic!("poison the worker")) as Job]);
        }));
        assert!(boom.is_err(), "the job panic must propagate");
        drop(lease); // retires the poisoned worker, spawns its replacement
        assert!(
            WorkerPool::respawned_workers() > respawned_before,
            "returning a lease with a poisoned worker must respawn it"
        );
        // Both leased workers come back (the survivor plus the fresh
        // replacement).  The free list is process-wide and other tests
        // lease from it concurrently, so poll rather than snapshotting.
        for _ in 0..200 {
            if WorkerPool::idle_workers() >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(
            WorkerPool::idle_workers() >= 2,
            "pool never recovered to full strength after the panic"
        );
        // And the recovered pool is healthy: a fresh lease runs a batch.
        let counter = Arc::new(AtomicUsize::new(0));
        let fresh = WorkerPool::lease(2);
        let jobs: Vec<Job> = (0..8)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        fresh.run(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
