//! Experiment B2 — acyclicity testing: GYO reduction vs. the
//! maximum-cardinality-search (chordality + conformality) test vs. the naive
//! definition-based baseline, across acyclic and cyclic families and sizes.
//!
//! The printed table is the row format recorded in EXPERIMENTS.md; Criterion
//! then measures the headline comparisons precisely.

use acyclic::{is_acyclic_mcs, AcyclicityExt};
use bench_suite::{mean_time_us, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::Hypergraph;
use std::time::Duration;
use workload::{chain, random_acyclic, ring, star, AcyclicParams};

fn workloads() -> Vec<(String, Hypergraph)> {
    let mut out = Vec::new();
    for &n in &[8usize, 32, 128] {
        out.push((format!("chain-{n}"), chain(n, 3, 1)));
        out.push((format!("star-{n}"), star(n, 3)));
        out.push((
            format!("rand-acyclic-{n}"),
            random_acyclic(AcyclicParams::with_edges(n), 42),
        ));
        out.push((format!("ring-{n}"), ring(n)));
    }
    out
}

fn print_table() {
    let mut table = Table::new([
        "workload", "edges", "acyclic", "gyo_us", "mcs_us", "naive_us",
    ]);
    for (name, h) in workloads() {
        let gyo = mean_time_us(5, || h.is_acyclic());
        let mcs = mean_time_us(5, || is_acyclic_mcs(&h));
        // The definition-based baseline enumerates 2^n node subsets; only
        // feasible for tiny instances.
        let naive = if h.node_count() <= 14 {
            format!("{:.1}", mean_time_us(1, || h.is_acyclic_by_definition()))
        } else {
            "-".to_owned()
        };
        table.row([
            name,
            h.edge_count().to_string(),
            h.is_acyclic().to_string(),
            format!("{gyo:.1}"),
            format!("{mcs:.1}"),
            naive,
        ]);
    }
    table.print("B2: acyclicity testing (GYO vs MCS vs definition)");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("acyclicity");
    for &n in &[32usize, 128] {
        let h = random_acyclic(AcyclicParams::with_edges(n), 7);
        group.bench_with_input(BenchmarkId::new("gyo", n), &h, |b, h| {
            b.iter(|| h.is_acyclic())
        });
        group.bench_with_input(BenchmarkId::new("mcs", n), &h, |b, h| {
            b.iter(|| is_acyclic_mcs(h))
        });
        let r = ring(n);
        group.bench_with_input(BenchmarkId::new("gyo-cyclic", n), &r, |b, h| {
            b.iter(|| h.is_acyclic())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
