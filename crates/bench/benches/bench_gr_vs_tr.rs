//! Experiment B1 — Graham reduction vs. tableau reduction (the Theorem 3.5
//! ablation): both compute the canonical connection on acyclic hypergraphs;
//! the table reports their cost and double-checks their agreement on every
//! instance, plus the cyclic counterexample row where they differ.

use acyclic::{graham_equals_tableau, graham_reduction};
use bench_suite::{mean_time_us, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::{Hypergraph, NodeSet};
use std::time::Duration;
use tableau::tableau_reduction;
use workload::{chain, paper, random_acyclic, star, AcyclicParams};

/// A deterministic two-node sacred set: the first node of the first edge and
/// the last node of the last edge (the "far apart" query).
fn far_apart_sacred(h: &Hypergraph) -> NodeSet {
    let first = h.edges()[0].nodes.first().expect("nonempty");
    let last = h.edges()[h.edge_count() - 1]
        .nodes
        .iter()
        .last()
        .expect("nonempty");
    NodeSet::from_ids([first, last])
}

fn workloads() -> Vec<(String, Hypergraph, NodeSet)> {
    let mut out = Vec::new();
    for &n in &[4usize, 8, 16, 32] {
        let c = chain(n, 3, 1);
        let x = far_apart_sacred(&c);
        out.push((format!("chain-{n}"), c, x));
        let s = star(n, 3);
        let x = far_apart_sacred(&s);
        out.push((format!("star-{n}"), s, x));
        let r = random_acyclic(AcyclicParams::with_edges(n), 11);
        let x = far_apart_sacred(&r);
        out.push((format!("rand-acyclic-{n}"), r, x));
    }
    let (counter, d) = paper::counterexample_after_theorem_3_5();
    out.push(("cyclic-counterexample".to_owned(), counter, d));
    out
}

fn print_table() {
    let mut table = Table::new(["workload", "edges", "gr_us", "tr_us", "gr==tr"]);
    for (name, h, x) in workloads() {
        let gr = mean_time_us(5, || graham_reduction(&h, &x));
        let tr = mean_time_us(3, || tableau_reduction(&h, &x));
        table.row([
            name,
            h.edge_count().to_string(),
            format!("{gr:.1}"),
            format!("{tr:.1}"),
            graham_equals_tableau(&h, &x).to_string(),
        ]);
    }
    table.print("B1: canonical connection — Graham reduction vs tableau reduction");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("gr_vs_tr");
    for &n in &[8usize, 32] {
        let h = random_acyclic(AcyclicParams::with_edges(n), 11);
        let x = far_apart_sacred(&h);
        group.bench_with_input(BenchmarkId::new("graham", n), &(&h, &x), |b, (h, x)| {
            b.iter(|| graham_reduction(h, x))
        });
        group.bench_with_input(BenchmarkId::new("tableau", n), &(&h, &x), |b, (h, x)| {
            b.iter(|| tableau_reduction(h, x))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
