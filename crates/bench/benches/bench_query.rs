//! Experiment B4 — the database payoff: answering universal-relation queries
//! with the Yannakakis algorithm over the join tree vs. the naive
//! join-everything plan, on chain and star schemas with increasing data
//! sizes (dangling tuples included, which is where the full reducer wins).
//!
//! Since the columnar rewrite the table also times the retained naive
//! reference engine (`reldb::reference`, the pre-rewrite implementation) on
//! the same pipeline, so the speedup of the flat interned-row kernels is
//! re-measured on every run instead of being folklore.

use acyclic::join_tree;
use bench_suite::{mean_time_us, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::Hypergraph;
use reldb::reference::{naive_full_reduce, naive_yannakakis_join};
use reldb::{full_reduce, query_via_connection, query_via_full_join, yannakakis_join, Database};
use std::time::Duration;
use workload::{chain, far_apart, random_database, star, DataParams};

fn make_db(schema: &Hypergraph, tuples: usize, domain: i64, seed: u64) -> Database {
    random_database(
        schema,
        DataParams {
            tuples_per_relation: tuples,
            domain,
            skew: 0.0,
            key_cap: 0,
        },
        seed,
    )
}

fn print_table() {
    let mut table = Table::new([
        "schema",
        "relations",
        "tuples",
        "answer",
        "yannakakis_us",
        "reference_us",
        "connection_us",
        "naive_us",
        "speedup",
    ]);
    let schemas: Vec<(String, Hypergraph)> = vec![
        ("chain-4".into(), chain(4, 2, 1)),
        ("chain-8".into(), chain(8, 2, 1)),
        ("star-6".into(), star(6, 2)),
    ];
    for (name, schema) in schemas {
        for &tuples in &[100usize, 400] {
            // Domain ~ half the relation size gives an expected fan-out of two
            // per join: enough dangling tuples and intermediate growth to see
            // the Yannakakis shape without unbounded naive-join blow-up.
            let db = make_db(&schema, tuples, (tuples as i64 / 2).max(2), 9);
            let tree = join_tree(&schema).expect("acyclic schema");
            let x = far_apart(&schema);
            let answer = yannakakis_join(&db, &tree, &x);
            let t_yann = mean_time_us(3, || yannakakis_join(&db, &tree, &x));
            let t_ref = mean_time_us(3, || naive_yannakakis_join(&db, &tree, &x));
            let t_conn = mean_time_us(3, || query_via_connection(&db, &x));
            let t_naive = mean_time_us(3, || query_via_full_join(&db, &x));
            table.row([
                name.clone(),
                schema.edge_count().to_string(),
                db.tuple_count().to_string(),
                answer.len().to_string(),
                format!("{t_yann:.0}"),
                format!("{t_ref:.0}"),
                format!("{t_conn:.0}"),
                format!("{t_naive:.0}"),
                format!("{:.1}x", t_ref / t_yann.max(f64::EPSILON)),
            ]);
        }
    }
    table.print(
        "B4: universal-relation queries — columnar Yannakakis vs reference engine vs connection/naive join",
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("query");
    let schema = chain(6, 2, 1);
    let db = make_db(&schema, 200, 100, 3);
    let tree = join_tree(&schema).expect("acyclic");
    let x = far_apart(&schema);
    group.bench_with_input(BenchmarkId::new("yannakakis", 200), &db, |b, db| {
        b.iter(|| yannakakis_join(db, &tree, &x))
    });
    group.bench_with_input(
        BenchmarkId::new("yannakakis_reference", 200),
        &db,
        |b, db| b.iter(|| naive_yannakakis_join(db, &tree, &x)),
    );
    group.bench_with_input(BenchmarkId::new("full_reduce", 200), &db, |b, db| {
        b.iter(|| full_reduce(db, &tree))
    });
    group.bench_with_input(
        BenchmarkId::new("full_reduce_reference", 200),
        &db,
        |b, db| b.iter(|| naive_full_reduce(db, &tree)),
    );
    group.bench_with_input(BenchmarkId::new("naive", 200), &db, |b, db| {
        b.iter(|| query_via_full_join(db, &x))
    });
    group.bench_with_input(BenchmarkId::new("connection", 200), &db, |b, db| {
        b.iter(|| query_via_connection(db, &x))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = bench
}
criterion_main!(benches);
