//! Experiment E7/B2 — Theorem 6.1 certificates: cost of classifying a
//! hypergraph and extracting the witness (a join tree on acyclic inputs, a
//! verified independent path on cyclic inputs) across families and sizes.

use acyclic::{classify, find_independent_path, join_tree, Classification};
use bench_suite::{mean_time_us, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::Hypergraph;
use std::time::Duration;
use workload::{grid, hyper_ring, random_acyclic, ring, AcyclicParams};

fn workloads() -> Vec<(String, Hypergraph)> {
    vec![
        ("ring-4".into(), ring(4)),
        ("ring-8".into(), ring(8)),
        ("ring-16".into(), ring(16)),
        ("hyper-ring-8x3".into(), hyper_ring(8, 3)),
        ("grid-3x3".into(), grid(3, 3)),
        ("grid-4x4".into(), grid(4, 4)),
        (
            "rand-acyclic-16".into(),
            random_acyclic(AcyclicParams::with_edges(16), 13),
        ),
        (
            "rand-acyclic-64".into(),
            random_acyclic(AcyclicParams::with_edges(64), 13),
        ),
    ]
}

fn print_table() {
    let mut table = Table::new(["workload", "edges", "verdict", "witness", "classify_us"]);
    for (name, h) in workloads() {
        let classification = classify(&h);
        let (verdict, witness) = match &classification {
            Classification::Acyclic { join_tree } => (
                "acyclic",
                format!(
                    "join tree ({} edges)",
                    join_tree.as_ref().map_or(0, |t| t.tree_edges().len())
                ),
            ),
            Classification::Cyclic { independent_path } => (
                "cyclic",
                format!("independent path ({} sets)", independent_path.len()),
            ),
        };
        let t = mean_time_us(3, || classify(&h));
        table.row([
            name,
            h.edge_count().to_string(),
            verdict.to_string(),
            witness,
            format!("{t:.0}"),
        ]);
    }
    table.print("E7/B2: Theorem 6.1 classification with certificates");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("theorem_6_1");
    let r = ring(8);
    group.bench_with_input(
        BenchmarkId::new("independent_path", "ring-8"),
        &r,
        |b, h| b.iter(|| find_independent_path(h)),
    );
    let g = grid(3, 3);
    group.bench_with_input(
        BenchmarkId::new("independent_path", "grid-3x3"),
        &g,
        |b, h| b.iter(|| find_independent_path(h)),
    );
    let a = random_acyclic(AcyclicParams::with_edges(32), 13);
    group.bench_with_input(
        BenchmarkId::new("join_tree", "rand-acyclic-32"),
        &a,
        |b, h| b.iter(|| join_tree(h)),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
