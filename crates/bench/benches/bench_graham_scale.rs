//! Experiment B3 — Graham-reduction scaling and order-independence
//! (Lemma 2.1): the traced single-step reducer vs. the pass-based fast
//! reducer across sizes, plus the cost of an empirical confluence check.

use acyclic::{check_confluence, graham_reduction, graham_reduction_fast};
use bench_suite::{mean_time_us, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::NodeSet;
use std::time::Duration;
use workload::{chain, random_acyclic, AcyclicParams};

fn print_table() {
    let mut table = Table::new(["workload", "edges", "traced_us", "fast_us", "confluent"]);
    for &n in &[16usize, 64, 256] {
        for (name, h) in [
            (format!("chain-{n}"), chain(n, 3, 1)),
            (
                format!("rand-acyclic-{n}"),
                random_acyclic(AcyclicParams::with_edges(n), 5),
            ),
        ] {
            let x = NodeSet::new();
            let traced = mean_time_us(3, || graham_reduction(&h, &x));
            let fast = mean_time_us(3, || graham_reduction_fast(&h, &x));
            // A light confluence spot-check (4 random orders) on the smaller
            // sizes; the property tests do the heavy checking.
            let confluent = if n <= 64 {
                check_confluence(&h, &x, 4).is_confluent().to_string()
            } else {
                "-".to_owned()
            };
            table.row([
                name,
                h.edge_count().to_string(),
                format!("{traced:.1}"),
                format!("{fast:.1}"),
                confluent,
            ]);
        }
    }
    table.print("B3: Graham reduction scaling and confluence (Lemma 2.1)");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("graham_scale");
    for &n in &[64usize, 256] {
        let h = random_acyclic(AcyclicParams::with_edges(n), 5);
        group.bench_with_input(BenchmarkId::new("fast", n), &h, |b, h| {
            b.iter(|| graham_reduction_fast(h, &NodeSet::new()))
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("traced", n), &h, |b, h| {
                b.iter(|| graham_reduction(h, &NodeSet::new()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
