//! Experiment B5 — canonical-connection query latency as a function of the
//! number of queried attributes |X| and the hypergraph size, on random
//! acyclic schemas.  The connection is computed both by tableau reduction
//! (the definition) and by Graham reduction (the Theorem 3.5 shortcut a
//! production system would use).

use acyclic::{canonical_connection, canonical_connection_with, ConnectionMethod};
use bench_suite::{mean_time_us, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::{Hypergraph, NodeSet};
use std::time::Duration;
use workload::{random_acyclic, AcyclicParams};

/// Picks `k` spread-out nodes of `h` as the query attribute set.
fn query_set(h: &Hypergraph, k: usize) -> NodeSet {
    let nodes: Vec<_> = h.nodes().iter().collect();
    let step = (nodes.len() / k.max(1)).max(1);
    nodes.iter().step_by(step).take(k).copied().collect()
}

fn print_table() {
    let mut table = Table::new(["edges", "|X|", "cc_edges", "tableau_us", "graham_us"]);
    for &edges in &[8usize, 16, 32] {
        let h = random_acyclic(AcyclicParams::with_edges(edges), 77);
        for &k in &[1usize, 2, 4, 8] {
            let x = query_set(&h, k);
            let cc = canonical_connection(&h, &x);
            let t_tab = mean_time_us(3, || canonical_connection(&h, &x));
            let t_gr = mean_time_us(5, || {
                canonical_connection_with(&h, &x, ConnectionMethod::Graham)
            });
            table.row([
                edges.to_string(),
                x.len().to_string(),
                cc.edge_count().to_string(),
                format!("{t_tab:.1}"),
                format!("{t_gr:.1}"),
            ]);
        }
    }
    table.print("B5: canonical connection latency vs |X| and hypergraph size");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("connection");
    let h = random_acyclic(AcyclicParams::with_edges(32), 77);
    for &k in &[2usize, 8] {
        let x = query_set(&h, k);
        group.bench_with_input(BenchmarkId::new("tableau", k), &x, |b, x| {
            b.iter(|| canonical_connection(&h, x))
        });
        group.bench_with_input(BenchmarkId::new("graham", k), &x, |b, x| {
            b.iter(|| canonical_connection_with(&h, x, ConnectionMethod::Graham))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    targets = bench
}
criterion_main!(benches);
