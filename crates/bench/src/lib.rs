//! Shared helpers for the benchmark harness.
//!
//! Criterion measures the timings; the helpers here print the compact
//! "paper-style" tables (rows = workloads, columns = competitors) that
//! EXPERIMENTS.md records, so `cargo bench` regenerates every experiment
//! table directly on stdout in addition to Criterion's own reports.

use std::time::Instant;

/// Measures one closure, returning its result and the elapsed microseconds.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Runs a closure `iters` times and reports the mean elapsed microseconds.
pub fn mean_time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// A simple fixed-width table printer for experiment summaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["workload", "gyo_us", "mcs_us"]);
        t.row(["chain-16", "12.5", "30.1"]);
        t.row(["star-64", "110.0", "95.7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("workload"));
        assert!(lines[2].contains("chain-16"));
    }

    #[test]
    fn timers_return_positive_durations() {
        let (v, us) = time_us(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(us >= 0.0);
        assert!(mean_time_us(3, || std::hint::black_box(1 + 1)) >= 0.0);
    }
}
