//! Parsers for the on-disk formats, shared by `hyperqd` and the one-shot
//! `hyperq` CLI (which re-exports this module as `hyperq::load` did before
//! the server existed).
//!
//! **Schema files** are edge lists, one hyperedge per line:
//!
//! ```text
//! # Fig. 1 of the paper
//! R1: A B C
//! R2: C D E
//! A E F        # unlabeled edges get e<index> labels
//! ```
//!
//! **Data files** hold one tuple per line, bound to a schema edge by label:
//!
//! ```text
//! R1: A=1 B=2 C=paris
//! ```
//!
//! Values that parse as `i64` become integers; everything else is a string.
//! Binary `.hqs` snapshots (recognized by their [`reldb::is_snapshot`]
//! magic) are accepted anywhere a data file is.

use hypergraph::{EdgeId, Hypergraph, HypergraphBuilder};
use reldb::{Database, EngineError, Tuple, Value};
use std::path::{Path, PathBuf};

/// A parse failure, carrying the 1-based line number and a message.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number in the offending file.
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing `# comment` and surrounding whitespace.
fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or("").trim()
}

/// Parses a schema file (see module docs) into a hypergraph.
pub fn parse_schema(text: &str) -> Result<Hypergraph, ParseError> {
    let mut builder = HypergraphBuilder::new();
    let mut edge_index = 0usize;
    let mut labels: Vec<String> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let (label, rest) = match line.split_once(':') {
            Some((l, r)) => (l.trim().to_owned(), r),
            None => (format!("e{edge_index}"), line),
        };
        if label.is_empty() {
            return Err(err(i + 1, "empty edge label before ':'"));
        }
        if labels.contains(&label) {
            return Err(err(i + 1, format!("duplicate edge label {label:?}")));
        }
        let nodes: Vec<&str> = rest.split_whitespace().collect();
        if nodes.is_empty() {
            return Err(err(i + 1, format!("edge {label:?} has no nodes")));
        }
        builder = builder.edge(label.clone(), nodes);
        labels.push(label);
        edge_index += 1;
    }
    if edge_index == 0 {
        return Err(err(0, "schema file defines no edges"));
    }
    builder
        .build()
        .map_err(|e| err(0, format!("invalid schema: {e}")))
}

/// Parses one `ATTR=value` pair.
fn parse_assignment(s: &str, line: usize) -> Result<(&str, Value), ParseError> {
    let (attr, value) = s
        .split_once('=')
        .ok_or_else(|| err(line, format!("expected ATTR=value, got {s:?}")))?;
    if attr.is_empty() || value.is_empty() {
        return Err(err(line, format!("empty attribute or value in {s:?}")));
    }
    let v = match value.parse::<i64>() {
        Ok(n) => Value::Int(n),
        Err(_) => Value::str(value),
    };
    Ok((attr, v))
}

/// Parses a data file against `schema`, producing a populated database.
pub fn parse_database(schema: &Hypergraph, text: &str) -> Result<Database, ParseError> {
    let mut db = Database::empty(schema.clone());
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let (label, rest) = line
            .split_once(':')
            .ok_or_else(|| err(i + 1, "expected 'EDGE_LABEL: A=1 B=2 ...'"))?;
        let label = label.trim();
        let edge_idx = schema
            .edges()
            .iter()
            .position(|e| e.label == label)
            .ok_or_else(|| err(i + 1, format!("unknown edge label {label:?}")))?;
        let edge = &schema.edges()[edge_idx];
        let mut tuple = Tuple::new();
        for part in rest.split_whitespace() {
            let (attr, value) = parse_assignment(part, i + 1)?;
            let node = schema
                .node(attr)
                .map_err(|_| err(i + 1, format!("unknown attribute {attr:?}")))?;
            if !edge.nodes.contains(node) {
                return Err(err(
                    i + 1,
                    format!("attribute {attr:?} is not in edge {label:?}"),
                ));
            }
            tuple.set(node, value);
        }
        if tuple.attributes() != edge.nodes {
            return Err(err(
                i + 1,
                format!(
                    "tuple for {label:?} must assign exactly the attributes {}",
                    edge.nodes.display(schema.universe())
                ),
            ));
        }
        db.insert(EdgeId(edge_idx as u32), tuple);
    }
    Ok(db)
}

/// Renders a database back into the text data format of
/// [`parse_database`]: one `LABEL: A=1 B=2` line per tuple, attributes in
/// edge order.  The inverse only holds for values the text format carries
/// losslessly — integers, and strings without whitespace, `#` or `=` —
/// which covers everything the workload generators emit; it exists so
/// `hyperq gen` and the scale benchmarks can produce text datasets and
/// compare text parsing against snapshot loading on identical data.
pub fn render_database(db: &Database) -> String {
    use std::fmt::Write as _;
    let schema = db.schema();
    let mut out = String::new();
    for (edge, rel) in schema.edges().iter().zip(db.relations()) {
        for t in rel.tuples() {
            out.push_str(&edge.label);
            out.push(':');
            for node in edge.nodes.iter() {
                let v = t
                    .get(node)
                    .expect("relation tuples assign every edge attribute");
                let name = schema.universe().name(node);
                match v {
                    Value::Int(n) => {
                        let _ = write!(out, " {name}={n}");
                    }
                    Value::Str(s) => {
                        let _ = write!(out, " {name}={s}");
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Whether two schemas describe the same labeled edges over the same
/// attribute names, irrespective of internal node numbering.
pub fn same_schema(a: &Hypergraph, b: &Hypergraph) -> bool {
    a.edge_count() == b.edge_count()
        && a.edges().iter().zip(b.edges()).all(|(ea, eb)| {
            let names_a: Vec<&str> = ea.nodes.iter().map(|n| a.universe().name(n)).collect();
            let names_b: Vec<&str> = eb.nodes.iter().map(|n| b.universe().name(n)).collect();
            ea.label == eb.label && {
                let (mut sa, mut sb) = (names_a, names_b);
                sa.sort_unstable();
                sb.sort_unstable();
                sa == sb
            }
        })
}

/// Where a served database comes from: a self-describing binary snapshot,
/// or a schema file plus a data file (which may itself be a snapshot —
/// [`load_source`] sniffs the magic either way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbSource {
    /// A `.hqs` snapshot holding schema and data together.
    Snapshot(PathBuf),
    /// A text schema file and a data file interpreted against it.
    Text {
        /// Path to the schema edge-list file.
        schema: PathBuf,
        /// Path to the tuple data file (text or snapshot).
        data: PathBuf,
    },
}

fn read(path: &Path) -> Result<Vec<u8>, EngineError> {
    std::fs::read(path).map_err(|e| EngineError::Io(format!("{}: {e}", path.display())))
}

fn utf8(path: &Path, bytes: Vec<u8>) -> Result<String, EngineError> {
    String::from_utf8(bytes).map_err(|e| {
        EngineError::Io(format!(
            "{}: not UTF-8 text (and not a snapshot): {e}",
            path.display()
        ))
    })
}

/// Loads a database from a [`DbSource`].  Text data is parsed against the
/// schema file; snapshot data must carry the same labeled edges as the
/// schema file ([`same_schema`]), mirroring the CLI's behavior.
pub fn load_source(source: &DbSource) -> Result<Database, EngineError> {
    match source {
        DbSource::Snapshot(path) => {
            let bytes = read(path)?;
            if !reldb::is_snapshot(&bytes) {
                return Err(EngineError::Io(format!(
                    "{}: not a snapshot (missing magic); pass schema,data for text files",
                    path.display()
                )));
            }
            Database::from_snapshot_bytes(&bytes)
        }
        DbSource::Text { schema, data } => {
            let schema_text = utf8(schema, read(schema)?)?;
            let h = parse_schema(&schema_text).map_err(|e| EngineError::Parse {
                line: e.line,
                message: format!("{}: {}", schema.display(), e.message),
            })?;
            let bytes = read(data)?;
            if reldb::is_snapshot(&bytes) {
                let db = Database::from_snapshot_bytes(&bytes)?;
                if !same_schema(db.schema(), &h) {
                    return Err(EngineError::SchemaMismatch(format!(
                        "{}: snapshot schema does not match the given schema file",
                        data.display()
                    )));
                }
                return Ok(db);
            }
            let text = utf8(data, bytes)?;
            parse_database(&h, &text).map_err(|e| EngineError::Parse {
                line: e.line,
                message: format!("{}: {}", data.display(), e.message),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
# Fig. 1
R1: A B C
R2: C D E
R3: A E F
R4: A C E
";

    #[test]
    fn schema_roundtrip_with_labels_and_comments() {
        let h = parse_schema(FIG1).unwrap();
        assert_eq!(h.edge_count(), 4);
        assert_eq!(h.node_count(), 6);
        assert_eq!(h.edges()[0].label, "R1");
        assert_eq!(h.edges()[3].label, "R4");
    }

    #[test]
    fn unlabeled_edges_get_generated_labels() {
        let h = parse_schema("A B\nB C\n").unwrap();
        assert_eq!(h.edges()[0].label, "e0");
        assert_eq!(h.edges()[1].label, "e1");
    }

    #[test]
    fn schema_errors_are_reported_with_lines() {
        assert!(parse_schema("").is_err());
        let e = parse_schema("R1: A\nR1: B\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
        let e = parse_schema("R1:\n").unwrap_err();
        assert!(e.message.contains("no nodes"));
    }

    #[test]
    fn database_parses_ints_and_strings() {
        let h = parse_schema("R: A B\n").unwrap();
        let db = parse_database(&h, "R: A=1 B=x\nR: A=2 B=y\n").unwrap();
        assert_eq!(db.tuple_count(), 2);
    }

    #[test]
    fn render_database_round_trips_through_the_parser() {
        let h = parse_schema("R: A B\nS: B C\n").unwrap();
        let db = parse_database(&h, "R: A=1 B=x\nR: A=-2 B=y\nS: B=x C=3\n").unwrap();
        let text = render_database(&db);
        let back = parse_database(&h, &text).unwrap();
        assert_eq!(back.tuple_count(), db.tuple_count());
        for (a, b) in db.relations().iter().zip(back.relations()) {
            let ta: Vec<_> = a.tuples().collect();
            let tb: Vec<_> = b.tuples().collect();
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn database_rejects_bad_rows() {
        let h = parse_schema("R: A B\nS: B C\n").unwrap();
        assert!(parse_database(&h, "T: A=1\n").is_err());
        assert!(parse_database(&h, "R: A=1\n").is_err()); // missing B
        assert!(parse_database(&h, "R: A=1 C=2\n").is_err()); // C not in R
        assert!(parse_database(&h, "R A=1\n").is_err()); // no colon
    }

    #[test]
    fn load_source_round_trips_text_and_snapshot() {
        let h = parse_schema("R: A B\n").unwrap();
        let db = parse_database(&h, "R: A=1 B=x\nR: A=2 B=y\n").unwrap();
        let dir = std::env::temp_dir().join("hyperqd-load-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let schema_path = dir.join("t.hg");
        let data_path = dir.join("t.data");
        let snap_path = dir.join("t.hqs");
        std::fs::write(&schema_path, "R: A B\n").unwrap();
        std::fs::write(&data_path, render_database(&db)).unwrap();
        std::fs::write(&snap_path, db.to_snapshot_bytes()).unwrap();
        let from_text = load_source(&DbSource::Text {
            schema: schema_path.clone(),
            data: data_path,
        })
        .unwrap();
        let from_snap = load_source(&DbSource::Snapshot(snap_path.clone())).unwrap();
        assert_eq!(from_text.tuple_count(), 2);
        assert_eq!(from_snap.tuple_count(), 2);
        // A snapshot is accepted in the data position too.
        let mixed = load_source(&DbSource::Text {
            schema: schema_path,
            data: snap_path,
        })
        .unwrap();
        assert_eq!(mixed.tuple_count(), 2);
    }
}
