//! The `hyperqd` wire protocol: one JSON object per `\n`-terminated line.
//!
//! # Requests
//!
//! ```text
//! {"op":"ping"}
//! {"op":"list"}
//! {"op":"query","db":"fig1","select":["B","D"],"engine":"yannakakis",
//!  "strategy":"auto","threads":2,"timeout_ms":500,"mem_budget_mb":64,
//!  "metrics":true}
//! {"op":"prepare","name":"bd","db":"fig1","select":["B","D"]}
//! {"op":"run","name":"bd","timeout_ms":250}
//! {"op":"stats"}                      // telemetry snapshot (JSON)
//! {"op":"stats","format":"prometheus"}  // text exposition
//! {"op":"shutdown"}            // graceful: drain in-flight queries
//! {"op":"shutdown","mode":"now"}  // cancel in-flight queries, then stop
//! ```
//!
//! # Responses
//!
//! Every response carries `"ok"` plus an `"op"` tag; errors carry the
//! machine-readable `"kind"` and the `"code"` a CLI client should exit
//! with (the same contract as one-shot `hyperq`: 3 deadline/cancelled,
//! 4 budget, 5 engine panic, 2 everything else).
//!
//! ```text
//! {"ok":true,"op":"answer","attrs":["B","D"],"tuples":4,"rows":[[1,4],…],"trace":"q-000017"}
//! {"ok":false,"op":"error","kind":"deadline","message":"…","code":3,"trace":"q-000018"}
//! ```
//!
//! The server stamps every admitted query with a trace id (`"trace"`,
//! last field) and echoes it in the answer **and** error frames, so a
//! client can correlate a response with the server's slow-query log.
//!
//! Serialization is canonical — fixed field order, optional fields omitted
//! — so `parse ∘ render` is the identity on every frame; the protocol
//! proptests pin that, and the differential soak harness relies on it for
//! byte-identical response comparison.

use crate::json::{obj, parse as parse_json, Json};
use reldb::EngineError;

/// Hard cap on one protocol line, terminator included.  A peer that sends
/// more without a newline gets a structured [`ErrorKind::Proto`] response
/// and its connection closed (the line can no longer be framed).
pub const MAX_LINE: usize = 1 << 20;

/// Which query engine a request selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The production path: Yannakakis over the join tree, routed through
    /// the hypertree decomposition when the schema is cyclic.
    #[default]
    Yannakakis,
    /// Join only the canonical connection `CC(X)` (paper §7).
    Connection,
    /// Join every object, then project — the naive baseline.
    Naive,
}

impl EngineKind {
    /// The canonical wire name of this engine (`"yannakakis"`,
    /// `"connection"`, `"naive"`) — also the `engine` label value in the
    /// server's stats registry.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Yannakakis => "yannakakis",
            EngineKind::Connection => "connection",
            EngineKind::Naive => "naive",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "yannakakis" => Some(EngineKind::Yannakakis),
            "connection" => Some(EngineKind::Connection),
            "naive" => Some(EngineKind::Naive),
            _ => None,
        }
    }
}

/// Physical join-kernel selection, mirroring [`reldb::JoinStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Hash join/semijoin kernels.
    Hash,
    /// Sort-merge kernels.
    SortMerge,
    /// The calibrated per-operator planner.
    Auto,
}

impl StrategyKind {
    fn as_str(self) -> &'static str {
        match self {
            StrategyKind::Hash => "hash",
            StrategyKind::SortMerge => "sort-merge",
            StrategyKind::Auto => "auto",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(StrategyKind::Hash),
            "sort-merge" => Some(StrategyKind::SortMerge),
            "auto" => Some(StrategyKind::Auto),
            _ => None,
        }
    }
}

/// Per-request execution and governance overrides.  Every field is
/// optional; on a prepared query, request-time overrides win over the
/// values stored at `prepare` time, field by field.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Overrides {
    /// Join-kernel selection ([`reldb::ExecPolicy::strategy`]).
    pub strategy: Option<StrategyKind>,
    /// Worker threads ([`reldb::ExecPolicy::threads`]; 0 = auto).
    pub threads: Option<u64>,
    /// Wall-clock deadline for the query, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Memory budget for intermediate results, in mebibytes.
    pub mem_budget_mb: Option<u64>,
    /// Attach per-query [`reldb::QueryMetrics`] to the answer.
    pub metrics: Option<bool>,
    /// Fault injection: arm a failpoint at the n-th semijoin of this query.
    /// Honored only by servers compiled with the `failpoints` feature;
    /// otherwise the request is rejected with a [`ErrorKind::Proto`] error.
    pub fail_at_semijoin: Option<u64>,
    /// Fault injection: a fired failpoint panics (contained to this query)
    /// instead of returning a typed error.  Same feature gate as
    /// [`Overrides::fail_at_semijoin`].
    pub fail_panic: Option<bool>,
}

impl Overrides {
    /// True when no field is set.
    pub fn is_empty(&self) -> bool {
        *self == Overrides::default()
    }

    /// Request-time overrides layered over prepared defaults.
    pub fn layered_over(&self, base: &Overrides) -> Overrides {
        Overrides {
            strategy: self.strategy.or(base.strategy),
            threads: self.threads.or(base.threads),
            timeout_ms: self.timeout_ms.or(base.timeout_ms),
            mem_budget_mb: self.mem_budget_mb.or(base.mem_budget_mb),
            metrics: self.metrics.or(base.metrics),
            fail_at_semijoin: self.fail_at_semijoin.or(base.fail_at_semijoin),
            fail_panic: self.fail_panic.or(base.fail_panic),
        }
    }

    fn push_fields(&self, pairs: &mut Vec<(String, Json)>) {
        if let Some(s) = self.strategy {
            pairs.push(("strategy".to_owned(), Json::str(s.as_str())));
        }
        if let Some(n) = self.threads {
            pairs.push(("threads".to_owned(), Json::Int(n as i64)));
        }
        if let Some(n) = self.timeout_ms {
            pairs.push(("timeout_ms".to_owned(), Json::Int(n as i64)));
        }
        if let Some(n) = self.mem_budget_mb {
            pairs.push(("mem_budget_mb".to_owned(), Json::Int(n as i64)));
        }
        if let Some(b) = self.metrics {
            pairs.push(("metrics".to_owned(), Json::Bool(b)));
        }
        if let Some(n) = self.fail_at_semijoin {
            pairs.push(("fail_at_semijoin".to_owned(), Json::Int(n as i64)));
        }
        if let Some(b) = self.fail_panic {
            pairs.push(("fail_panic".to_owned(), Json::Bool(b)));
        }
    }

    fn from_json(v: &Json) -> Result<Overrides, WireError> {
        let mut o = Overrides::default();
        if let Some(s) = v.get("strategy") {
            let name = s
                .as_str()
                .ok_or_else(|| proto("strategy must be a string"))?;
            o.strategy = Some(
                StrategyKind::from_str(name)
                    .ok_or_else(|| proto(format!("unknown strategy {name:?}")))?,
            );
        }
        for (field, slot) in [
            ("threads", &mut o.threads),
            ("timeout_ms", &mut o.timeout_ms),
            ("mem_budget_mb", &mut o.mem_budget_mb),
            ("fail_at_semijoin", &mut o.fail_at_semijoin),
        ] {
            if let Some(n) = v.get(field) {
                *slot = Some(
                    n.as_u64()
                        .ok_or_else(|| proto(format!("{field} must be a non-negative integer")))?,
                );
            }
        }
        if let Some(b) = v.get("metrics") {
            o.metrics = Some(
                b.as_bool()
                    .ok_or_else(|| proto("metrics must be a boolean"))?,
            );
        }
        if let Some(b) = v.get("fail_panic") {
            o.fail_panic = Some(
                b.as_bool()
                    .ok_or_else(|| proto("fail_panic must be a boolean"))?,
            );
        }
        Ok(o)
    }
}

/// An ad-hoc (or prepared) query: which database, which attributes, which
/// engine, plus overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The database name, as registered at server startup.
    pub db: String,
    /// The universal-relation attribute set `X`, by name.
    pub select: Vec<String>,
    /// Engine selection; `None` means [`EngineKind::Yannakakis`].
    pub engine: Option<EngineKind>,
    /// Execution and governance overrides.
    pub overrides: Overrides,
}

impl QuerySpec {
    fn push_fields(&self, pairs: &mut Vec<(String, Json)>) {
        pairs.push(("db".to_owned(), Json::str(&self.db)));
        pairs.push((
            "select".to_owned(),
            Json::Arr(self.select.iter().map(Json::str).collect()),
        ));
        if let Some(e) = self.engine {
            pairs.push(("engine".to_owned(), Json::str(e.as_str())));
        }
        self.overrides.push_fields(pairs);
    }

    fn from_json(v: &Json) -> Result<QuerySpec, WireError> {
        let db = v
            .get("db")
            .and_then(Json::as_str)
            .ok_or_else(|| proto("missing \"db\" (string)"))?
            .to_owned();
        let select = v
            .get("select")
            .and_then(Json::as_arr)
            .ok_or_else(|| proto("missing \"select\" (array of attribute names)"))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| proto("\"select\" entries must be strings"))
            })
            .collect::<Result<Vec<String>, WireError>>()?;
        let engine = match v.get("engine") {
            None => None,
            Some(e) => {
                let name = e.as_str().ok_or_else(|| proto("engine must be a string"))?;
                Some(
                    EngineKind::from_str(name)
                        .ok_or_else(|| proto(format!("unknown engine {name:?}")))?,
                )
            }
        };
        Ok(QuerySpec {
            db,
            select,
            engine,
            overrides: Overrides::from_json(v)?,
        })
    }
}

/// One client request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enumerate databases and prepared queries.
    List,
    /// Stop the server: gracefully (drain in-flight queries) or `now`
    /// (cancel them through their governors first).
    Shutdown {
        /// Cancel in-flight queries instead of draining them.
        now: bool,
    },
    /// Run an ad-hoc query.
    Query(QuerySpec),
    /// Register a named query for later `run` requests.
    Prepare {
        /// The name subsequent [`Request::Run`] frames will use.
        name: String,
        /// The stored query, including default overrides.
        spec: QuerySpec,
    },
    /// Run a prepared query, with optional per-request overrides.
    Run {
        /// The prepared-query name.
        name: String,
        /// Overrides layered over the prepared defaults.
        overrides: Overrides,
    },
    /// Fetch the server's telemetry snapshot.
    Stats {
        /// Return Prometheus-style text exposition instead of the
        /// canonical JSON snapshot.
        prometheus: bool,
    },
}

/// Renders a request as one canonical protocol line (no trailing newline).
pub fn render_request(r: &Request) -> String {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    let op = |s: &str| ("op".to_owned(), Json::str(s));
    match r {
        Request::Ping => pairs.push(op("ping")),
        Request::List => pairs.push(op("list")),
        Request::Shutdown { now } => {
            pairs.push(op("shutdown"));
            if *now {
                pairs.push(("mode".to_owned(), Json::str("now")));
            }
        }
        Request::Query(spec) => {
            pairs.push(op("query"));
            spec.push_fields(&mut pairs);
        }
        Request::Prepare { name, spec } => {
            pairs.push(op("prepare"));
            pairs.push(("name".to_owned(), Json::str(name)));
            spec.push_fields(&mut pairs);
        }
        Request::Run { name, overrides } => {
            pairs.push(op("run"));
            pairs.push(("name".to_owned(), Json::str(name)));
            overrides.push_fields(&mut pairs);
        }
        Request::Stats { prometheus } => {
            pairs.push(op("stats"));
            if *prometheus {
                pairs.push(("format".to_owned(), Json::str("prometheus")));
            }
        }
    }
    Json::Obj(pairs).to_string()
}

/// Parses one request line.  Every failure is a [`WireError`] of kind
/// [`ErrorKind::Proto`], ready to be sent back as a structured error
/// response — malformed input never panics and never goes unanswered.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    if line.len() >= MAX_LINE {
        return Err(proto(format!(
            "request line exceeds MAX_LINE ({MAX_LINE} bytes)"
        )));
    }
    let v = parse_json(line).map_err(|e| proto(format!("invalid JSON: {e}")))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(proto("request must be a JSON object"));
    }
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| proto("missing \"op\" (string)"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "list" => Ok(Request::List),
        "shutdown" => {
            let now = match v.get("mode") {
                None => false,
                Some(m) => match m.as_str() {
                    Some("now") => true,
                    Some("graceful") => false,
                    _ => return Err(proto("shutdown mode must be \"graceful\" or \"now\"")),
                },
            };
            Ok(Request::Shutdown { now })
        }
        "query" => Ok(Request::Query(QuerySpec::from_json(&v)?)),
        "prepare" => {
            let name = required_name(&v)?;
            Ok(Request::Prepare {
                name,
                spec: QuerySpec::from_json(&v)?,
            })
        }
        "run" => {
            let name = required_name(&v)?;
            Ok(Request::Run {
                name,
                overrides: Overrides::from_json(&v)?,
            })
        }
        "stats" => {
            let prometheus = match v.get("format") {
                None => false,
                Some(f) => match f.as_str() {
                    Some("prometheus") => true,
                    Some("json") => false,
                    _ => return Err(proto("stats format must be \"json\" or \"prometheus\"")),
                },
            };
            Ok(Request::Stats { prometheus })
        }
        other => Err(proto(format!("unknown op {other:?}"))),
    }
}

fn required_name(v: &Json) -> Result<String, WireError> {
    v.get("name")
        .and_then(Json::as_str)
        .filter(|n| !n.is_empty())
        .map(str::to_owned)
        .ok_or_else(|| proto("missing \"name\" (non-empty string)"))
}

/// Machine-readable error classes, each with a fixed client exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame: bad JSON, unknown op, wrong field types.
    Proto,
    /// The request named a database the server does not hold.
    UnknownDb,
    /// The request named a prepared query that does not exist.
    UnknownQuery,
    /// Attribute/schema mismatch (e.g. `select` names an unknown column).
    Schema,
    /// Server-side file parse failure.
    Parse,
    /// Server-side I/O failure.
    Io,
    /// The query's deadline expired ([`EngineError::DeadlineExceeded`]).
    Deadline,
    /// The query was cancelled (shutdown `now`, or its token tripped).
    Cancelled,
    /// The query's memory budget was exceeded.
    Budget,
    /// The engine panicked; the panic was contained to this query.
    Panic,
    /// The server is shutting down and no longer accepts queries.
    Shutdown,
}

impl ErrorKind {
    /// The exit code a CLI client maps this error to — the same contract
    /// as one-shot `hyperq` (3 deadline/cancelled, 4 budget, 5 panic,
    /// 2 everything else).
    pub fn code(self) -> u8 {
        match self {
            ErrorKind::Deadline | ErrorKind::Cancelled => 3,
            ErrorKind::Budget => 4,
            ErrorKind::Panic => 5,
            _ => 2,
        }
    }

    /// The canonical wire name of this error kind — also the `outcome`
    /// label value in the server's stats registry.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Proto => "proto",
            ErrorKind::UnknownDb => "unknown-db",
            ErrorKind::UnknownQuery => "unknown-query",
            ErrorKind::Schema => "schema",
            ErrorKind::Parse => "parse",
            ErrorKind::Io => "io",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Budget => "budget",
            ErrorKind::Panic => "panic",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "proto" => ErrorKind::Proto,
            "unknown-db" => ErrorKind::UnknownDb,
            "unknown-query" => ErrorKind::UnknownQuery,
            "schema" => ErrorKind::Schema,
            "parse" => ErrorKind::Parse,
            "io" => ErrorKind::Io,
            "deadline" => ErrorKind::Deadline,
            "cancelled" => ErrorKind::Cancelled,
            "budget" => ErrorKind::Budget,
            "panic" => ErrorKind::Panic,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }
}

/// A structured error, as carried by [`Response::Error`] frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The error class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// The per-query trace id the server assigned at accept time, echoed
    /// so a failed query can be correlated with the slow-query log.
    /// Absent on errors raised before a query was admitted (protocol
    /// errors, client-side parse failures).
    pub trace: Option<String>,
}

impl WireError {
    /// Constructs an error of the given kind, with no trace id.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
            trace: None,
        }
    }

    /// The same error stamped with a per-query trace id.
    pub fn with_trace(mut self, trace: impl Into<String>) -> Self {
        self.trace = Some(trace.into());
        self
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

impl From<EngineError> for WireError {
    fn from(e: EngineError) -> Self {
        let kind = match &e {
            EngineError::Cancelled => ErrorKind::Cancelled,
            EngineError::DeadlineExceeded { .. } => ErrorKind::Deadline,
            EngineError::BudgetExceeded { .. } => ErrorKind::Budget,
            EngineError::WorkerPanic(_) => ErrorKind::Panic,
            EngineError::SchemaMismatch(_) => ErrorKind::Schema,
            EngineError::Parse { .. } => ErrorKind::Parse,
            EngineError::Io(_) => ErrorKind::Io,
        };
        WireError::new(kind, e.to_string())
    }
}

fn proto(message: impl Into<String>) -> WireError {
    WireError::new(ErrorKind::Proto, message)
}

/// Summary of one served database, for [`Response::Listing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbInfo {
    /// The registered name.
    pub name: String,
    /// Relations (schema edges) in the database.
    pub relations: u64,
    /// Total stored tuples.
    pub tuples: u64,
    /// Whether the schema is acyclic (has a join tree).
    pub acyclic: bool,
}

/// One server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::List`].
    Listing {
        /// The served databases.
        databases: Vec<DbInfo>,
        /// Names of prepared queries, sorted.
        queries: Vec<String>,
    },
    /// Reply to [`Request::Shutdown`]; the connection closes after it.
    Bye,
    /// Reply to [`Request::Prepare`].
    Prepared {
        /// The registered name.
        name: String,
    },
    /// A query answer.  `rows` are sorted lexicographically, so equal
    /// relations serialize to byte-identical frames regardless of which
    /// engine (or how many threads) produced them.
    Answer {
        /// Output attribute names, in schema-universe order.
        attrs: Vec<String>,
        /// One row per tuple; cells are `Json::Int` or `Json::Str`.
        rows: Vec<Vec<Json>>,
        /// Per-query metrics, when the request asked for them.
        metrics: Option<Json>,
        /// The per-query trace id the server assigned at accept time.
        trace: Option<String>,
    },
    /// Reply to [`Request::Stats`]: the canonical JSON snapshot, or the
    /// Prometheus-style text exposition when the request asked for it.
    /// Exactly one of the two fields is set.
    Stats {
        /// The JSON snapshot ([`crate::stats::StatsRegistry::snapshot_json`]).
        stats: Option<Json>,
        /// The text exposition ([`crate::stats::StatsRegistry::prometheus`]).
        text: Option<String>,
    },
    /// A structured error; the connection stays usable afterwards (except
    /// after unframeable input, which closes it).
    Error(WireError),
}

/// Renders a response as one canonical protocol line (no trailing newline).
pub fn render_response(r: &Response) -> String {
    let v = match r {
        Response::Pong => obj([("ok", Json::Bool(true)), ("op", Json::str("pong"))]),
        Response::Bye => obj([("ok", Json::Bool(true)), ("op", Json::str("bye"))]),
        Response::Prepared { name } => obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("prepared")),
            ("name", Json::str(name)),
        ]),
        Response::Listing { databases, queries } => obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("list")),
            (
                "databases",
                Json::Arr(
                    databases
                        .iter()
                        .map(|d| {
                            obj([
                                ("name", Json::str(&d.name)),
                                ("relations", Json::Int(d.relations as i64)),
                                ("tuples", Json::Int(d.tuples as i64)),
                                ("acyclic", Json::Bool(d.acyclic)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "queries",
                Json::Arr(queries.iter().map(Json::str).collect()),
            ),
        ]),
        Response::Answer {
            attrs,
            rows,
            metrics,
            trace,
        } => {
            let mut pairs = vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("op".to_owned(), Json::str("answer")),
                (
                    "attrs".to_owned(),
                    Json::Arr(attrs.iter().map(Json::str).collect()),
                ),
                ("tuples".to_owned(), Json::Int(rows.len() as i64)),
                (
                    "rows".to_owned(),
                    Json::Arr(rows.iter().map(|r| Json::Arr(r.clone())).collect()),
                ),
            ];
            if let Some(m) = metrics {
                pairs.push(("metrics".to_owned(), m.clone()));
            }
            if let Some(t) = trace {
                pairs.push(("trace".to_owned(), Json::str(t)));
            }
            Json::Obj(pairs)
        }
        Response::Stats { stats, text } => {
            let mut pairs = vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("op".to_owned(), Json::str("stats")),
            ];
            if let Some(s) = stats {
                pairs.push(("stats".to_owned(), s.clone()));
            }
            if let Some(t) = text {
                pairs.push(("text".to_owned(), Json::str(t)));
            }
            Json::Obj(pairs)
        }
        Response::Error(e) => {
            let mut pairs = vec![
                ("ok".to_owned(), Json::Bool(false)),
                ("op".to_owned(), Json::str("error")),
                ("kind".to_owned(), Json::str(e.kind.as_str())),
                ("message".to_owned(), Json::str(&e.message)),
                ("code".to_owned(), Json::Int(e.kind.code() as i64)),
            ];
            if let Some(t) = &e.trace {
                pairs.push(("trace".to_owned(), Json::str(t)));
            }
            Json::Obj(pairs)
        }
    };
    v.to_string()
}

/// Parses one response line (the client side of [`render_response`]).
pub fn parse_response(line: &str) -> Result<Response, WireError> {
    let v = parse_json(line).map_err(|e| proto(format!("invalid JSON: {e}")))?;
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| proto("missing \"ok\" (boolean)"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| proto("missing \"op\" (string)"))?;
    match (ok, op) {
        (true, "pong") => Ok(Response::Pong),
        (true, "bye") => Ok(Response::Bye),
        (true, "prepared") => Ok(Response::Prepared {
            name: required_name(&v)?,
        }),
        (true, "list") => {
            let databases = v
                .get("databases")
                .and_then(Json::as_arr)
                .ok_or_else(|| proto("missing \"databases\""))?
                .iter()
                .map(|d| {
                    Ok(DbInfo {
                        name: d
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or_else(|| proto("database entry missing \"name\""))?
                            .to_owned(),
                        relations: d
                            .get("relations")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| proto("database entry missing \"relations\""))?,
                        tuples: d
                            .get("tuples")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| proto("database entry missing \"tuples\""))?,
                        acyclic: d
                            .get("acyclic")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| proto("database entry missing \"acyclic\""))?,
                    })
                })
                .collect::<Result<Vec<DbInfo>, WireError>>()?;
            let queries = v
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| proto("missing \"queries\""))?
                .iter()
                .map(|q| {
                    q.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| proto("\"queries\" entries must be strings"))
                })
                .collect::<Result<Vec<String>, WireError>>()?;
            Ok(Response::Listing { databases, queries })
        }
        (true, "answer") => {
            let attrs = v
                .get("attrs")
                .and_then(Json::as_arr)
                .ok_or_else(|| proto("missing \"attrs\""))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| proto("\"attrs\" entries must be strings"))
                })
                .collect::<Result<Vec<String>, WireError>>()?;
            let rows = v
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| proto("missing \"rows\""))?
                .iter()
                .map(|r| {
                    r.as_arr()
                        .map(<[Json]>::to_vec)
                        .ok_or_else(|| proto("\"rows\" entries must be arrays"))
                })
                .collect::<Result<Vec<Vec<Json>>, WireError>>()?;
            Ok(Response::Answer {
                attrs,
                rows,
                metrics: v.get("metrics").cloned(),
                trace: v.get("trace").and_then(Json::as_str).map(str::to_owned),
            })
        }
        (true, "stats") => {
            let stats = v.get("stats").cloned();
            let text = v.get("text").and_then(Json::as_str).map(str::to_owned);
            if stats.is_some() == text.is_some() {
                return Err(proto(
                    "stats frame must carry exactly one of \"stats\" and \"text\"",
                ));
            }
            Ok(Response::Stats { stats, text })
        }
        (false, "error") => {
            let kind_name = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| proto("error frame missing \"kind\""))?;
            let kind = ErrorKind::from_str(kind_name)
                .ok_or_else(|| proto(format!("unknown error kind {kind_name:?}")))?;
            let message = v
                .get("message")
                .and_then(Json::as_str)
                .ok_or_else(|| proto("error frame missing \"message\""))?
                .to_owned();
            let trace = v.get("trace").and_then(Json::as_str).map(str::to_owned);
            Ok(Response::Error(WireError {
                kind,
                message,
                trace,
            }))
        }
        (ok, op) => Err(proto(format!(
            "unrecognized response frame ok={ok} op={op:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let specs = [
            Request::Ping,
            Request::List,
            Request::Shutdown { now: false },
            Request::Shutdown { now: true },
            Request::Query(QuerySpec {
                db: "fig1".into(),
                select: vec!["B".into(), "D".into()],
                engine: Some(EngineKind::Connection),
                overrides: Overrides {
                    strategy: Some(StrategyKind::SortMerge),
                    threads: Some(2),
                    timeout_ms: Some(500),
                    mem_budget_mb: Some(64),
                    metrics: Some(true),
                    fail_at_semijoin: Some(3),
                    fail_panic: Some(false),
                },
            }),
            Request::Prepare {
                name: "bd".into(),
                spec: QuerySpec {
                    db: "fig1".into(),
                    select: vec!["B".into()],
                    engine: None,
                    overrides: Overrides::default(),
                },
            },
            Request::Run {
                name: "bd".into(),
                overrides: Overrides {
                    timeout_ms: Some(1),
                    ..Overrides::default()
                },
            },
            Request::Stats { prometheus: false },
            Request::Stats { prometheus: true },
        ];
        for r in specs {
            let line = render_request(&r);
            assert_eq!(parse_request(&line).unwrap(), r, "frame: {line}");
        }
    }

    #[test]
    fn malformed_requests_become_proto_errors() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{\"op\":\"warp\"}",
            "{\"op\":\"query\"}",
            "{\"op\":\"query\",\"db\":3,\"select\":[]}",
            "{\"op\":\"query\",\"db\":\"d\",\"select\":[1]}",
            "{\"op\":\"run\"}",
            "{\"op\":\"prepare\",\"name\":\"\"}",
            "{\"op\":\"query\",\"db\":\"d\",\"select\":[],\"threads\":-1}",
            "{\"op\":\"query\",\"db\":\"d\",\"select\":[],\"strategy\":\"quantum\"}",
            "{\"op\":\"shutdown\",\"mode\":\"later\"}",
            "{\"op\":\"stats\",\"format\":\"xml\"}",
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Proto, "input {bad:?} gave {e:?}");
        }
    }

    #[test]
    fn error_codes_match_the_cli_contract() {
        assert_eq!(ErrorKind::Deadline.code(), 3);
        assert_eq!(ErrorKind::Cancelled.code(), 3);
        assert_eq!(ErrorKind::Budget.code(), 4);
        assert_eq!(ErrorKind::Panic.code(), 5);
        assert_eq!(ErrorKind::Proto.code(), 2);
        assert_eq!(ErrorKind::Schema.code(), 2);
    }

    #[test]
    fn engine_error_mapping_matches_kinds() {
        let e = WireError::from(EngineError::Cancelled);
        assert_eq!(e.kind, ErrorKind::Cancelled);
        let e = WireError::from(EngineError::WorkerPanic("boom".into()));
        assert_eq!(e.kind, ErrorKind::Panic);
    }

    #[test]
    fn response_frames_round_trip() {
        let frames = [
            Response::Pong,
            Response::Bye,
            Response::Prepared { name: "bd".into() },
            Response::Listing {
                databases: vec![DbInfo {
                    name: "fig1".into(),
                    relations: 4,
                    tuples: 12,
                    acyclic: true,
                }],
                queries: vec!["bd".into()],
            },
            Response::Answer {
                attrs: vec!["B".into(), "D".into()],
                rows: vec![
                    vec![Json::Int(1), Json::str("x")],
                    vec![Json::Int(2), Json::Int(9)],
                ],
                metrics: None,
                trace: None,
            },
            Response::Answer {
                attrs: vec!["B".into()],
                rows: vec![vec![Json::Int(1)]],
                metrics: None,
                trace: Some("q-000017".into()),
            },
            Response::Stats {
                stats: Some(obj([("queries_total", Json::Int(3))])),
                text: None,
            },
            Response::Stats {
                stats: None,
                text: Some("# HELP hyperqd_requests_total …\n".into()),
            },
            Response::Error(WireError::new(ErrorKind::Deadline, "too slow")),
            Response::Error(
                WireError::new(ErrorKind::Budget, "over budget").with_trace("q-000018"),
            ),
        ];
        for r in frames {
            let line = render_response(&r);
            assert_eq!(parse_response(&line).unwrap(), r, "frame: {line}");
        }
        // A stats frame carries exactly one payload.
        assert!(parse_response("{\"ok\":true,\"op\":\"stats\"}").is_err());
    }
}
