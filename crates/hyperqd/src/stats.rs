//! Server-side telemetry aggregation: latency histograms and monotonic
//! counters, exposed through the `stats` protocol op.
//!
//! Two layers:
//!
//! * [`Histogram`] — a plain-value log-bucketed latency histogram whose
//!   arithmetic (bucketing, merge, quantiles) is pure and proptestable;
//! * [`StatsRegistry`] — the server's lock-free aggregation point: atomic
//!   counters keyed by protocol op, engine and outcome, byte meters, an
//!   in-flight gauge and an atomic edition of the histogram, snapshotted
//!   into canonical JSON ([`StatsRegistry::snapshot_json`]) or
//!   Prometheus-style text exposition ([`StatsRegistry::prometheus`]).
//!
//! # Bucketing scheme
//!
//! HDR-style logarithmic buckets with 3 significant sub-bucket bits:
//! values below 8 are exact; above, each power-of-two octave splits into 8
//! sub-buckets, so a bucket's width is at most 1/8 of its lower bound and
//! the half-width representative value a quantile reports is within
//! **6.25 % (1/16)** of any sample in the bucket.  The exact maximum is
//! tracked separately, and quantiles never report beyond it.  64 octaves ×
//! 8 sub-buckets = [`BUCKETS`] = 496 buckets cover the full `u64` range —
//! small enough to ship raw counts over the wire, which is what lets
//! `hyperq client bench` diff two snapshots and quote quantiles of just
//! its own run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::{obj, Json};
use crate::protocol::{EngineKind, ErrorKind};

/// Total bucket count: 8 exact buckets below 8, then 8 sub-buckets for
/// each of the 61 remaining octaves of `u64`.
pub const BUCKETS: usize = 496;

/// The bucket a value lands in.  Exact below 8; logarithmic with 3
/// significant bits above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let o = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (o - 3)) & 7) as usize;
        (o - 2) * 8 + sub
    }
}

/// The smallest value landing in bucket `idx`.
#[inline]
pub fn bucket_floor(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if idx < 8 {
        idx as u64
    } else {
        let o = idx / 8 + 2;
        let sub = (idx % 8) as u64;
        (8 + sub) << (o - 3)
    }
}

/// The representative value a quantile reports for bucket `idx`: its floor
/// plus half its width, which bounds the relative error at 1/16.
#[inline]
pub fn bucket_value(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let o = idx / 8 + 2;
        bucket_floor(idx) + (1u64 << (o - 3)) / 2
    }
}

/// A log-bucketed histogram as a plain value: insert, merge and quantile
/// arithmetic with no atomics, shared by the server's registry snapshots
/// and the client's before/after diffing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (bucket-wise addition, max
    /// of maxima).  Merging is associative and commutative, so snapshots
    /// from many servers — or the two sides of a before/after diff — can
    /// combine in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.max = self.max.max(other.max);
    }

    /// Subtracts an earlier snapshot, leaving the samples recorded between
    /// the two (saturating per bucket; the max is kept from `self` — the
    /// tracked maximum is not invertible).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let counts = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        Histogram {
            counts,
            max: self.max,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The largest recorded sample, exactly.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket-representative value,
    /// capped at the exact tracked maximum.  Returns 0 on an empty
    /// histogram.  Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs — the wire form in
    /// stats snapshots.
    pub fn sparse(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse wire form.  Pairs with an
    /// out-of-range index are rejected as `None`.
    pub fn from_sparse(pairs: &[(usize, u64)], max: u64) -> Option<Histogram> {
        let mut h = Histogram::new();
        for &(i, c) in pairs {
            if i >= BUCKETS {
                return None;
            }
            h.counts[i] += c;
        }
        h.max = max;
        Some(h)
    }
}

/// The atomic edition of [`Histogram`]: relaxed per-bucket increments (one
/// `fetch_add` plus one `fetch_max` per sample), snapshotted into the
/// plain value for all arithmetic.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy.  The total is derived from the bucket counts,
    /// so a snapshot is always internally consistent (count == Σ buckets)
    /// even while samples arrive concurrently.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Protocol-op labels for the request counters, `invalid` covering frames
/// that never parsed to an op.
pub const OP_LABELS: [&str; 8] = [
    "ping", "list", "query", "prepare", "run", "stats", "shutdown", "invalid",
];

/// Engine labels for the per-engine query counters, in [`EngineKind`]
/// order.
pub const ENGINE_LABELS: [&str; 3] = ["yannakakis", "connection", "naive"];

/// Outcome labels for the per-outcome query counters: `ok` first, then
/// every [`ErrorKind`] in wire-name form.  The registry guarantees
/// `queries_total == Σ queries_by_outcome` — each executed query records
/// exactly one outcome.
pub const OUTCOME_LABELS: [&str; 12] = [
    "ok",
    "proto",
    "unknown-db",
    "unknown-query",
    "schema",
    "parse",
    "io",
    "deadline",
    "cancelled",
    "budget",
    "panic",
    "shutdown",
];

fn outcome_index(outcome: Result<(), ErrorKind>) -> usize {
    let kind = match outcome {
        Ok(()) => return 0,
        Err(k) => k,
    };
    1 + OUTCOME_LABELS[1..]
        .iter()
        .position(|&l| l == kind.as_str())
        .expect("every ErrorKind has an outcome label")
}

fn engine_index(engine: EngineKind) -> usize {
    match engine {
        EngineKind::Yannakakis => 0,
        EngineKind::Connection => 1,
        EngineKind::Naive => 2,
    }
}

/// The server's aggregation point: monotonic counters, gauges and the
/// latency histogram, all updated with relaxed atomics on the request
/// path and snapshotted by the `stats` op.
#[derive(Debug)]
pub struct StatsRegistry {
    started: Instant,
    requests_by_op: [AtomicU64; 8],
    queries_by_engine: [AtomicU64; 3],
    queries_by_outcome: [AtomicU64; 12],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    in_flight: AtomicU64,
    latency: AtomicHistogram,
    slow_queries: AtomicU64,
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry {
            started: Instant::now(),
            requests_by_op: Default::default(),
            queries_by_engine: Default::default(),
            queries_by_outcome: Default::default(),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latency: AtomicHistogram::default(),
            slow_queries: AtomicU64::new(0),
        }
    }
}

impl StatsRegistry {
    /// A fresh registry; uptime counts from here.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request frame under its op label (an index into
    /// [`OP_LABELS`]; `"invalid"` for unframeable input).
    pub fn record_request(&self, op_label: &str) {
        let idx = OP_LABELS
            .iter()
            .position(|&l| l == op_label)
            .unwrap_or(OP_LABELS.len() - 1);
        self.requests_by_op[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one executed query: which engine ran it (when execution was
    /// reached), how it ended, and its server-side latency in
    /// microseconds.
    pub fn record_query(
        &self,
        engine: Option<EngineKind>,
        outcome: Result<(), ErrorKind>,
        micros: u64,
    ) {
        if let Some(e) = engine {
            self.queries_by_engine[engine_index(e)].fetch_add(1, Ordering::Relaxed);
        }
        self.queries_by_outcome[outcome_index(outcome)].fetch_add(1, Ordering::Relaxed);
        self.latency.record(micros);
    }

    /// Meters bytes read off client sockets.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Meters bytes written to client sockets.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the in-flight query gauge.
    pub fn query_begin(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the in-flight query gauge.
    pub fn query_end(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts one slow-query-log line.
    pub fn record_slow(&self) {
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the latency histogram.
    pub fn latency_snapshot(&self) -> Histogram {
        self.latency.snapshot()
    }

    /// The canonical JSON snapshot behind `{"op":"stats"}`.  Field order is
    /// fixed; `queries_total` is derived as Σ `queries_by_outcome` at
    /// snapshot time, so the invariant `queries_total == Σ by_outcome`
    /// holds by construction.  The histogram ships its raw non-empty
    /// buckets so clients can merge or diff snapshots exactly.
    pub fn snapshot_json(&self) -> Json {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let by_op: Vec<(String, Json)> = OP_LABELS
            .iter()
            .zip(&self.requests_by_op)
            .map(|(l, c)| ((*l).to_owned(), Json::Int(load(c) as i64)))
            .collect();
        let by_engine: Vec<(String, Json)> = ENGINE_LABELS
            .iter()
            .zip(&self.queries_by_engine)
            .map(|(l, c)| ((*l).to_owned(), Json::Int(load(c) as i64)))
            .collect();
        let by_outcome: Vec<(String, Json)> = OUTCOME_LABELS
            .iter()
            .zip(&self.queries_by_outcome)
            .map(|(l, c)| ((*l).to_owned(), Json::Int(load(c) as i64)))
            .collect();
        let requests_total: u64 = self.requests_by_op.iter().map(load).sum();
        let queries_total: u64 = self.queries_by_outcome.iter().map(load).sum();
        let lat = self.latency.snapshot();
        let buckets = Json::Arr(
            lat.sparse()
                .into_iter()
                .map(|(i, c)| Json::Arr(vec![Json::Int(i as i64), Json::Int(c as i64)]))
                .collect(),
        );
        obj([
            (
                "uptime_ms",
                Json::Int(self.started.elapsed().as_millis() as i64),
            ),
            ("requests_total", Json::Int(requests_total as i64)),
            ("requests_by_op", Json::Obj(by_op)),
            ("queries_total", Json::Int(queries_total as i64)),
            ("queries_by_engine", Json::Obj(by_engine)),
            ("queries_by_outcome", Json::Obj(by_outcome)),
            ("bytes_in", Json::Int(load(&self.bytes_in) as i64)),
            ("bytes_out", Json::Int(load(&self.bytes_out) as i64)),
            ("in_flight", Json::Int(load(&self.in_flight) as i64)),
            (
                "pool",
                obj([
                    (
                        "idle_workers",
                        Json::Int(reldb::WorkerPool::idle_workers() as i64),
                    ),
                    (
                        "respawned_workers",
                        Json::Int(reldb::WorkerPool::respawned_workers() as i64),
                    ),
                    (
                        "lease_spawned",
                        Json::Int(reldb::WorkerPool::lease_spawned_workers() as i64),
                    ),
                ]),
            ),
            (
                "latency_us",
                obj([
                    ("count", Json::Int(lat.count() as i64)),
                    ("p50", Json::Int(lat.quantile(0.50) as i64)),
                    ("p90", Json::Int(lat.quantile(0.90) as i64)),
                    ("p99", Json::Int(lat.quantile(0.99) as i64)),
                    ("max", Json::Int(lat.max() as i64)),
                    ("buckets", buckets),
                ]),
            ),
            ("slow_queries", Json::Int(load(&self.slow_queries) as i64)),
        ])
    }

    /// Prometheus-style text exposition of the same snapshot (counters as
    /// `_total`, the gauge and quantiles as gauges).
    pub fn prometheus(&self) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        let mut metric = |help: &str, kind: &str, name: &str, lines: &[(String, u64)]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for (labels, v) in lines {
                out.push_str(&format!("{name}{labels} {v}\n"));
            }
        };
        metric(
            "Seconds since the stats registry was created.",
            "gauge",
            "hyperqd_uptime_seconds",
            &[(String::new(), self.started.elapsed().as_secs())],
        );
        let op_lines: Vec<(String, u64)> = OP_LABELS
            .iter()
            .zip(&self.requests_by_op)
            .map(|(l, c)| (format!("{{op=\"{l}\"}}"), load(c)))
            .collect();
        metric(
            "Request frames received, by protocol op.",
            "counter",
            "hyperqd_requests_total",
            &op_lines,
        );
        let engine_lines: Vec<(String, u64)> = ENGINE_LABELS
            .iter()
            .zip(&self.queries_by_engine)
            .map(|(l, c)| (format!("{{engine=\"{l}\"}}"), load(c)))
            .collect();
        metric(
            "Queries executed, by engine.",
            "counter",
            "hyperqd_queries_by_engine_total",
            &engine_lines,
        );
        let outcome_lines: Vec<(String, u64)> = OUTCOME_LABELS
            .iter()
            .zip(&self.queries_by_outcome)
            .map(|(l, c)| (format!("{{outcome=\"{l}\"}}"), load(c)))
            .collect();
        metric(
            "Queries executed, by outcome.",
            "counter",
            "hyperqd_queries_total",
            &outcome_lines,
        );
        metric(
            "Bytes read from client sockets.",
            "counter",
            "hyperqd_bytes_in_total",
            &[(String::new(), load(&self.bytes_in))],
        );
        metric(
            "Bytes written to client sockets.",
            "counter",
            "hyperqd_bytes_out_total",
            &[(String::new(), load(&self.bytes_out))],
        );
        metric(
            "Queries currently executing.",
            "gauge",
            "hyperqd_in_flight_queries",
            &[(String::new(), load(&self.in_flight))],
        );
        metric(
            "Idle threads parked in the shared worker pool.",
            "gauge",
            "hyperqd_pool_idle_workers",
            &[(String::new(), reldb::WorkerPool::idle_workers() as u64)],
        );
        metric(
            "Pool workers retired after a panicking job and replaced.",
            "counter",
            "hyperqd_pool_respawned_workers_total",
            &[(String::new(), reldb::WorkerPool::respawned_workers() as u64)],
        );
        metric(
            "Threads spawned because a lease found the free list short.",
            "counter",
            "hyperqd_pool_lease_spawned_total",
            &[(
                String::new(),
                reldb::WorkerPool::lease_spawned_workers() as u64,
            )],
        );
        let lat = self.latency.snapshot();
        let quantile_lines: Vec<(String, u64)> = [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")]
            .iter()
            .map(|&(q, l)| (format!("{{quantile=\"{l}\"}}"), lat.quantile(q)))
            .collect();
        metric(
            "Server-side query latency quantiles, microseconds.",
            "gauge",
            "hyperqd_query_latency_us",
            &quantile_lines,
        );
        metric(
            "Largest server-side query latency, microseconds.",
            "gauge",
            "hyperqd_query_latency_us_max",
            &[(String::new(), lat.max())],
        );
        metric(
            "Queries measured by the latency histogram.",
            "counter",
            "hyperqd_query_latency_us_count",
            &[(String::new(), lat.count())],
        );
        metric(
            "Queries that exceeded --slow-ms and were logged.",
            "counter",
            "hyperqd_slow_queries_total",
            &[(String::new(), load(&self.slow_queries))],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_eight_and_cover_u64() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_value(v as usize), v);
        }
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(15), 15);
        assert!(bucket_index(u64::MAX) < BUCKETS);
        // Floors are monotone and consistent with the index map.
        for idx in 1..BUCKETS {
            assert!(bucket_floor(idx) > bucket_floor(idx - 1), "idx {idx}");
            assert_eq!(bucket_index(bucket_floor(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn representative_error_is_bounded() {
        // For any sample, the representative of its bucket is within 1/16.
        for v in [8u64, 100, 999, 12_345, 7_777_777, u64::MAX / 3] {
            let rep = bucket_value(bucket_index(v));
            let err = rep.abs_diff(v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn quantiles_are_ordered_and_capped_at_max() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 5, 80, 120, 950, 10_000, 10_001] {
            h.record(v);
        }
        let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        assert_eq!(h.max(), 10_001);
        assert_eq!(h.count(), 8);
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn merge_and_diff_are_inverse_on_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 9, 200] {
            a.record(v);
        }
        for v in [9u64, 4_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.diff(&a).sparse(), b.sparse());
        let wire = Histogram::from_sparse(&merged.sparse(), merged.max()).unwrap();
        assert_eq!(wire, merged);
        assert!(Histogram::from_sparse(&[(BUCKETS, 1)], 0).is_none());
    }

    #[test]
    fn registry_snapshot_holds_the_outcome_invariant() {
        let reg = StatsRegistry::new();
        reg.record_request("query");
        reg.record_request("query");
        reg.record_request("nonsense"); // counts as invalid
        reg.record_query(Some(EngineKind::Yannakakis), Ok(()), 1_500);
        reg.record_query(Some(EngineKind::Naive), Err(ErrorKind::Deadline), 40);
        reg.record_query(None, Err(ErrorKind::UnknownQuery), 5);
        let snap = reg.snapshot_json();
        assert_eq!(snap.get("queries_total").and_then(Json::as_u64), Some(3));
        let by_outcome = snap.get("queries_by_outcome").unwrap();
        let sum: u64 = OUTCOME_LABELS
            .iter()
            .map(|l| by_outcome.get(l).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(sum, 3);
        assert_eq!(by_outcome.get("deadline").and_then(Json::as_u64), Some(1));
        let by_op = snap.get("requests_by_op").unwrap();
        assert_eq!(by_op.get("invalid").and_then(Json::as_u64), Some(1));
        let lat = snap.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(lat.get("max").and_then(Json::as_u64), Some(1_500));
        // The exposition mentions every metric family.
        let text = reg.prometheus();
        for family in [
            "hyperqd_requests_total",
            "hyperqd_queries_total",
            "hyperqd_query_latency_us",
            "hyperqd_pool_lease_spawned_total",
            "hyperqd_slow_queries_total",
        ] {
            assert!(text.contains(family), "missing {family}");
        }
        assert!(text.contains("hyperqd_queries_total{outcome=\"deadline\"} 1"));
    }
}
