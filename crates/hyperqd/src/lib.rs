//! `hyperqd` — a long-running universal-relation query server.
//!
//! The paper's model assumes a resident database answering many ad-hoc
//! queries; the one-shot `hyperq` CLI re-loads its data on every
//! invocation.  This crate supplies the missing piece: a server that loads
//! databases (text or `.hqs` snapshot) once at startup and answers
//! concurrent clients over a line-oriented JSON protocol on TCP.
//!
//! | module | contents |
//! |---|---|
//! | [`json`] | dependency-free JSON value, parser and serializer |
//! | [`protocol`] | typed request/response frames, canonical (round-tripping) serialization, the error-kind → exit-code contract |
//! | [`load`] | the text schema/data parsers and snapshot loading, shared with the `hyperq` CLI |
//! | [`stats`] | server telemetry: log-bucketed latency [`stats::Histogram`]s, the atomic [`stats::StatsRegistry`], canonical JSON snapshots and Prometheus-style exposition |
//! | [`server`] | the TCP server: thread-per-connection, per-request [`reldb::QueryGovernor`]s over one shared [`reldb::WorkerPool`], prepared queries, per-query trace ids, a slow-query log, graceful shutdown |
//!
//! The server is a library first (the differential soak and fault
//! harnesses in `tests/` drive in-process instances on ephemeral ports)
//! and a binary second (`src/main.rs`, exercised by the CI `server` job).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod load;
pub mod protocol;
pub mod server;
pub mod stats;

pub use protocol::{
    parse_request, parse_response, render_request, render_response, EngineKind, ErrorKind,
    Overrides, QuerySpec, Request, Response, StrategyKind, WireError, MAX_LINE,
};
pub use server::{answer_frame, ServeStats, Server, ServerConfig, ServerHandle};
pub use stats::{Histogram, StatsRegistry};
