//! The `hyperqd` binary: parse `--listen`/`--db` flags, load every
//! database, serve until a `shutdown` request drains the last query.

use hyperqd::load::DbSource;
use hyperqd::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hyperqd — universal-relation query server

USAGE:
    hyperqd [--listen ADDR] --db NAME=SOURCE [--db NAME=SOURCE ...]

OPTIONS:
    --listen ADDR    address to bind (default 127.0.0.1:7411; port 0 picks
                     an ephemeral port, printed on startup)
    --db NAME=SOURCE serve a database under NAME.  SOURCE is either a
                     single .hqs snapshot path, or SCHEMA,DATA — a schema
                     edge-list file and a data file (text tuples or a
                     snapshot, sniffed by magic)
    --slow-ms N      arm the slow-query log: queries taking >= N ms write
                     one JSON line (trace id, stage spans, outcome) to
                     stderr; queries run traced while armed
    -h, --help       print this help

PROTOCOL:
    One JSON object per line over TCP; see the README \"Serving\" section.
    A {\"op\":\"shutdown\"} request drains in-flight queries and exits 0.

EXAMPLE:
    hyperqd --listen 127.0.0.1:7411 \\
        --db fig1=fixtures/fig1.hg,fixtures/fig1.data \\
        --db big=snapshots/chain_1m.hqs
";

fn parse_db_flag(value: &str) -> Result<(String, DbSource), String> {
    let (name, source) = value
        .split_once('=')
        .ok_or_else(|| format!("--db expects NAME=SOURCE, got {value:?}"))?;
    if name.is_empty() {
        return Err(format!("--db {value:?}: empty database name"));
    }
    let source = match source.split_once(',') {
        None => DbSource::Snapshot(PathBuf::from(source)),
        Some((schema, data)) => DbSource::Text {
            schema: PathBuf::from(schema),
            data: PathBuf::from(data),
        },
    };
    Ok((name.to_owned(), source))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7411".to_owned();
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--listen" => {
                i += 1;
                match args.get(i) {
                    Some(addr) => listen = addr.clone(),
                    None => return usage_error("--listen needs an address"),
                }
            }
            "--db" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage_error("--db needs NAME=SOURCE");
                };
                match parse_db_flag(value) {
                    Ok(entry) => config.databases.push(entry),
                    Err(e) => return usage_error(&e),
                }
            }
            "--slow-ms" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage_error("--slow-ms needs a millisecond threshold");
                };
                match value.parse::<u64>() {
                    Ok(ms) => config.slow_ms = Some(ms),
                    Err(_) => {
                        return usage_error(&format!(
                            "--slow-ms expects a non-negative integer, got {value:?}"
                        ))
                    }
                }
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if config.databases.is_empty() {
        return usage_error("at least one --db NAME=SOURCE is required");
    }
    let server = match Server::bind(&listen, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hyperqd: {e}");
            return ExitCode::from(2);
        }
    };
    // Scripts block on this line to know the server is ready (and, with
    // port 0, which port it got).
    println!("hyperqd listening on {}", server.local_addr());
    for (name, _) in &config.databases {
        println!("hyperqd serving database {name}");
    }
    let stats = server.run();
    println!(
        "hyperqd shut down: {} connections, {} queries, drained={}",
        stats.connections, stats.queries, stats.drained_clean
    );
    if stats.drained_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("hyperqd: {message}\n\n{USAGE}");
    ExitCode::from(2)
}
