//! The `hyperqd` server: databases loaded once, thread-per-connection TCP,
//! per-request governance, graceful shutdown.
//!
//! # Concurrency model
//!
//! The build environment is registry-less, so there is no async runtime:
//! each accepted connection gets an OS thread that reads one line, answers
//! it, and loops.  CPU between in-flight queries is arbitrated exactly as
//! in the one-shot CLI — every query leases workers from the process-wide
//! [`reldb::WorkerPool`] through its [`reldb::ExecPolicy`] (one lease per
//! query, covering every phase), so N concurrent clients cannot
//! oversubscribe the machine.
//!
//! Databases are immutable once loaded and shared as `Arc<Database>`: a
//! query never mutates its database (governed pipelines abort by returning
//! early, never by leaving partial state), which is what the differential
//! soak harness verifies end to end — post-soak snapshots are bit-identical
//! to pre-soak ones.
//!
//! # Shutdown
//!
//! A `shutdown` request stops the accept loop and *drains*: connections
//! stop taking new queries, in-flight queries run to completion and their
//! responses are flushed before [`Server::run`] returns.  `shutdown now`
//! additionally cancels in-flight queries through the shared
//! [`CancelToken`] wired into every per-request governor, so they abort at
//! their next checkpoint with a typed `cancelled` error response.
//!
//! # Telemetry
//!
//! Every query/run request is stamped with a trace id (`q-000001`, …) at
//! admission and echoes it in its answer or error frame.  A process-wide
//! [`StatsRegistry`] counts requests by op, queries by engine and outcome,
//! bytes in/out and in-flight queries, and buckets server-side latency;
//! the `stats` op snapshots it.  When the slow-query log is armed
//! ([`ServerConfig::slow_ms`]), queries run their engine under a
//! [`reldb::CollectingTracer`] — otherwise the untraced
//! ([`reldb::NoopTrace`]-monomorphized) pipelines run, so tracing costs
//! nothing when off — and any query at or over the threshold writes one
//! JSON line to stderr with its trace id, stage spans and outcome.

use crate::json;
use crate::load::{load_source, DbSource};
use crate::protocol::{
    parse_request, render_response, DbInfo, EngineKind, ErrorKind, Overrides, QuerySpec, Request,
    Response, StrategyKind, WireError, MAX_LINE,
};
use crate::stats::StatsRegistry;
use reldb::{
    query_via_connection_traced, query_via_full_join_traced, query_yannakakis_traced, CancelToken,
    CollectingSink, CollectingTracer, Database, ExecPolicy, Governor, JoinStrategy, MetricsSink,
    NoopMetrics, NoopTrace, QueryGovernor, Relation, Span, SpanKind, TraceReport, TraceSink,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often an idle connection wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Upper bound on waiting for in-flight queries during a graceful drain.
const DRAIN_LIMIT: Duration = Duration::from_secs(60);

/// Server construction parameters.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// The served databases, by name.
    pub databases: Vec<(String, DbSource)>,
    /// Arms the slow-query log: queries taking at least this many
    /// milliseconds log one JSON line to stderr (and run traced, so the
    /// line carries per-stage spans).  `None` disables both the log and
    /// the tracing overhead.
    pub slow_ms: Option<u64>,
}

/// Counters reported by [`Server::run`] after shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Query/run requests executed (successful or not).
    pub queries: u64,
    /// Whether every in-flight query finished within the drain limit.
    pub drained_clean: bool,
}

struct State {
    dbs: BTreeMap<String, Arc<Database>>,
    prepared: Mutex<BTreeMap<String, QuerySpec>>,
    shutting_down: AtomicBool,
    cancel_all: CancelToken,
    active: Mutex<usize>,
    drained: Condvar,
    connections: AtomicU64,
    queries: AtomicU64,
    stats: StatsRegistry,
    next_trace: AtomicU64,
    /// Slow-query threshold in milliseconds; 0 = log (and tracing) off.
    slow_ms: AtomicU64,
}

impl State {
    /// Marks a query/run request in flight (drain counter and the stats
    /// gauge together).  The returned guard is held across execution *and*
    /// the response flush, so a clean drain guarantees every accepted
    /// query was answered on the wire.
    fn begin_query(&self) -> QueryGuard<'_> {
        *self.active.lock().expect("active lock") += 1;
        self.stats.query_begin();
        QueryGuard(self)
    }

    fn end_query(&self) {
        self.stats.query_end();
        let mut n = self.active.lock().expect("active lock");
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    /// The next per-query trace id; ids are unique for the process
    /// lifetime and echoed in answer and error frames.
    fn new_trace_id(&self) -> String {
        format!(
            "q-{:06}",
            self.next_trace.fetch_add(1, Ordering::Relaxed) + 1
        )
    }
}

/// Guard so a connection thread that dies mid-query still decrements the
/// in-flight counter and lets the drain finish.
struct QueryGuard<'a>(&'a State);

impl Drop for QueryGuard<'_> {
    fn drop(&mut self) {
        self.0.end_query();
    }
}

/// A bound, loaded server, ready to [`run`](Server::run) or
/// [`spawn`](Server::spawn).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<State>,
}

/// Handle to a server running on a background thread (the in-process
/// harness the test suites drive).
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<ServeStats>,
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its counters.
    pub fn join(self) -> ServeStats {
        self.join.join().expect("server thread panicked")
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and loads
    /// every configured database.  Loading happens once, here — queries
    /// only ever read the shared `Arc<Database>`s.
    pub fn bind(addr: &str, config: &ServerConfig) -> Result<Server, WireError> {
        let mut databases = Vec::new();
        for (name, source) in &config.databases {
            let db = load_source(source).map_err(WireError::from)?;
            databases.push((name.clone(), Arc::new(db)));
        }
        let server = Server::bind_preloaded(addr, databases)?;
        if let Some(ms) = config.slow_ms {
            server.set_slow_ms(ms);
        }
        Ok(server)
    }

    /// Binds `addr` and serves already-loaded databases — the in-process
    /// entry point the differential soak and fault harnesses use.  Callers
    /// keeping a clone of an `Arc<Database>` observe exactly the object the
    /// server queries, so post-soak snapshot comparison proves the served
    /// database was never mutated.
    pub fn bind_preloaded(
        addr: &str,
        databases: Vec<(String, Arc<Database>)>,
    ) -> Result<Server, WireError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| WireError::new(ErrorKind::Io, format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| WireError::new(ErrorKind::Io, format!("local_addr: {e}")))?;
        let mut dbs = BTreeMap::new();
        for (name, db) in databases {
            if dbs.insert(name.clone(), db).is_some() {
                return Err(WireError::new(
                    ErrorKind::Io,
                    format!("duplicate database name {name:?}"),
                ));
            }
        }
        Ok(Server {
            listener,
            addr: local,
            state: Arc::new(State {
                dbs,
                prepared: Mutex::new(BTreeMap::new()),
                shutting_down: AtomicBool::new(false),
                cancel_all: CancelToken::new(),
                active: Mutex::new(0),
                drained: Condvar::new(),
                connections: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                stats: StatsRegistry::new(),
                next_trace: AtomicU64::new(0),
                slow_ms: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Arms the slow-query log at `ms` milliseconds (0 disarms it).  While
    /// armed, queries execute under a [`CollectingTracer`] so logged lines
    /// carry per-stage spans; disarmed servers run the untraced pipelines.
    pub fn set_slow_ms(&self, ms: u64) {
        self.state.slow_ms.store(ms, Ordering::Relaxed);
    }

    /// Serves until a `shutdown` request arrives, then drains and returns.
    pub fn run(self) -> ServeStats {
        let Server {
            listener,
            addr,
            state,
        } = self;
        for stream in listener.incoming() {
            if state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            state.connections.fetch_add(1, Ordering::Relaxed);
            let state = Arc::clone(&state);
            let server_addr = addr;
            std::thread::spawn(move || handle_connection(&state, stream, server_addr));
        }
        // Drain: wait until no query is in flight (each one's response is
        // flushed before the counter drops, so a clean drain means every
        // accepted query was answered).
        let deadline = Instant::now() + DRAIN_LIMIT;
        let mut active = state.active.lock().expect("active lock");
        let mut drained_clean = true;
        while *active > 0 {
            let now = Instant::now();
            if now >= deadline {
                drained_clean = false;
                break;
            }
            let (guard, _timeout) = state
                .drained
                .wait_timeout(active, deadline - now)
                .expect("drain wait");
            active = guard;
        }
        drop(active);
        ServeStats {
            connections: state.connections.load(Ordering::Relaxed),
            queries: state.queries.load(Ordering::Relaxed),
            drained_clean,
        }
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let join = std::thread::spawn(move || self.run());
        ServerHandle { addr, join }
    }
}

/// What reading one frame yielded.
enum Frame {
    Line(String),
    /// Peer closed (or errored); stop serving this connection.
    Closed,
    /// The line exceeded [`MAX_LINE`]; the connection can no longer be
    /// framed and must close after an error response.
    TooLong,
    /// Server is shutting down and the connection is idle.
    ShuttingDown,
}

/// Reads one `\n`-terminated line, polling the shutdown flag while idle
/// and enforcing [`MAX_LINE`] while reading.
fn read_frame(reader: &mut BufReader<TcpStream>, state: &State) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if buf.len() > MAX_LINE {
            return Frame::TooLong;
        }
        let budget = (MAX_LINE + 1 - buf.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF — or the `take` budget ran out exactly at the cap.
                if buf.len() > MAX_LINE {
                    return Frame::TooLong;
                }
                if buf.is_empty() {
                    return Frame::Closed;
                }
                // A final, unterminated line still gets an answer.
                return frame_from(buf);
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    return frame_from(buf);
                }
                // Budget exhausted mid-line; loop re-checks the cap.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.shutting_down.load(Ordering::SeqCst) && buf.is_empty() {
                    return Frame::ShuttingDown;
                }
            }
            Err(_) => return Frame::Closed,
        }
    }
}

fn frame_from(mut buf: Vec<u8>) -> Frame {
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    match String::from_utf8(buf) {
        Ok(line) => Frame::Line(line),
        // Invalid UTF-8 still yields a parseable-looking line so the
        // request parser can reject it with a structured error.
        Err(e) => Frame::Line(String::from_utf8_lossy(e.as_bytes()).into_owned()),
    }
}

fn send(stream: &mut TcpStream, state: &State, response: &Response) -> bool {
    let mut line = render_response(response);
    line.push('\n');
    state.stats.add_bytes_out(line.len() as u64);
    stream.write_all(line.as_bytes()).is_ok() && stream.flush().is_ok()
}

/// The stats-registry op label of a parsed request.
fn op_label(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::List => "list",
        Request::Query(_) => "query",
        Request::Prepare { .. } => "prepare",
        Request::Run { .. } => "run",
        Request::Stats { .. } => "stats",
        Request::Shutdown { .. } => "shutdown",
    }
}

fn handle_connection(state: &State, stream: TcpStream, server_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, state) {
            Frame::Closed | Frame::ShuttingDown => return,
            Frame::TooLong => {
                state.stats.record_request("invalid");
                let e = WireError::new(
                    ErrorKind::Proto,
                    format!("request line exceeds MAX_LINE ({MAX_LINE} bytes); closing"),
                );
                let _ = send(&mut writer, state, &Response::Error(e));
                return;
            }
            Frame::Line(line) => {
                if line.is_empty() {
                    continue; // blank keep-alive line
                }
                state.stats.add_bytes_in(line.len() as u64 + 1);
                let parse_t0 = Instant::now();
                let request = match parse_request(&line) {
                    Ok(r) => r,
                    Err(e) => {
                        state.stats.record_request("invalid");
                        // Malformed frame: answer it, keep the connection.
                        if !send(&mut writer, state, &Response::Error(e)) {
                            return;
                        }
                        continue;
                    }
                };
                let parse_nanos = parse_t0.elapsed().as_nanos() as u64;
                state.stats.record_request(op_label(&request));
                // The in-flight guard spans execution AND the response
                // flush: the graceful drain in `Server::run` must not
                // return while an answer is still in this thread's hands.
                let guard = match &request {
                    Request::Query(_) | Request::Run { .. } => Some(state.begin_query()),
                    _ => None,
                };
                let (response, close) = handle_request(state, request, parse_nanos);
                let sent = send(&mut writer, state, &response);
                drop(guard);
                if close {
                    // The farewell is on the wire (or the peer is gone);
                    // only now unblock the accept loop so the process
                    // cannot exit before this response is flushed.
                    let _ = TcpStream::connect(server_addr);
                    return;
                }
                if !sent {
                    return;
                }
            }
        }
    }
}

fn handle_request(state: &State, request: Request, parse_nanos: u64) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::List => (list(state), false),
        Request::Stats { prometheus } => {
            let resp = if prometheus {
                Response::Stats {
                    stats: None,
                    text: Some(state.stats.prometheus()),
                }
            } else {
                Response::Stats {
                    stats: Some(state.stats.snapshot_json()),
                    text: None,
                }
            };
            (resp, false)
        }
        Request::Shutdown { now } => {
            state.shutting_down.store(true, Ordering::SeqCst);
            if now {
                state.cancel_all.cancel();
            }
            // The caller wakes the accept loop — after Bye is flushed.
            (Response::Bye, true)
        }
        Request::Prepare { name, spec } => {
            if state.shutting_down.load(Ordering::SeqCst) {
                return (refuse_during_shutdown(None), false);
            }
            match validate(state, &spec) {
                Err(e) => (Response::Error(e), false),
                Ok(()) => {
                    state
                        .prepared
                        .lock()
                        .expect("prepared lock")
                        .insert(name.clone(), spec);
                    (Response::Prepared { name }, false)
                }
            }
        }
        Request::Query(spec) => {
            let trace_id = state.new_trace_id();
            if state.shutting_down.load(Ordering::SeqCst) {
                state
                    .stats
                    .record_query(None, Err(ErrorKind::Shutdown), parse_nanos / 1_000);
                return (refuse_during_shutdown(Some(trace_id)), false);
            }
            (execute(state, &spec, &trace_id, parse_nanos), false)
        }
        Request::Run { name, overrides } => {
            let trace_id = state.new_trace_id();
            if state.shutting_down.load(Ordering::SeqCst) {
                state
                    .stats
                    .record_query(None, Err(ErrorKind::Shutdown), parse_nanos / 1_000);
                return (refuse_during_shutdown(Some(trace_id)), false);
            }
            let stored = state
                .prepared
                .lock()
                .expect("prepared lock")
                .get(&name)
                .cloned();
            match stored {
                None => {
                    state.stats.record_query(
                        None,
                        Err(ErrorKind::UnknownQuery),
                        parse_nanos / 1_000,
                    );
                    (
                        Response::Error(
                            WireError::new(
                                ErrorKind::UnknownQuery,
                                format!("no prepared query named {name:?}"),
                            )
                            .with_trace(trace_id),
                        ),
                        false,
                    )
                }
                Some(mut spec) => {
                    spec.overrides = overrides.layered_over(&spec.overrides);
                    (execute(state, &spec, &trace_id, parse_nanos), false)
                }
            }
        }
    }
}

fn refuse_during_shutdown(trace: Option<String>) -> Response {
    let mut e = WireError::new(
        ErrorKind::Shutdown,
        "server is shutting down; no new queries accepted",
    );
    if let Some(t) = trace {
        e = e.with_trace(t);
    }
    Response::Error(e)
}

fn list(state: &State) -> Response {
    let databases = state
        .dbs
        .iter()
        .map(|(name, db)| DbInfo {
            name: name.clone(),
            relations: db.relations().len() as u64,
            tuples: db.tuple_count() as u64,
            acyclic: acyclic::join_tree(db.schema()).is_some(),
        })
        .collect();
    let queries = state
        .prepared
        .lock()
        .expect("prepared lock")
        .keys()
        .cloned()
        .collect();
    Response::Listing { databases, queries }
}

fn validate(state: &State, spec: &QuerySpec) -> Result<(), WireError> {
    let db = state.dbs.get(&spec.db).ok_or_else(|| {
        WireError::new(
            ErrorKind::UnknownDb,
            format!("no database named {:?}", spec.db),
        )
    })?;
    db.attributes(spec.select.iter().map(String::as_str))
        .map_err(|e| WireError::new(ErrorKind::Schema, format!("bad select: {e}")))?;
    Ok(())
}

/// Builds the [`ExecPolicy`] a request asked for.
fn policy_for(o: &Overrides) -> ExecPolicy {
    let mut policy = ExecPolicy::default();
    if let Some(s) = o.strategy {
        policy.strategy = match s {
            StrategyKind::Hash => JoinStrategy::Hash,
            StrategyKind::SortMerge => JoinStrategy::SortMerge,
            StrategyKind::Auto => JoinStrategy::Auto,
        };
    }
    if let Some(t) = o.threads {
        policy.threads = t as usize;
    }
    policy
}

/// Builds the per-request governor: the server-wide cancel token (so
/// `shutdown now` aborts every in-flight query), plus the request's
/// deadline and memory budget.
fn governor_for(state: &State, o: &Overrides, started: Instant) -> QueryGovernor {
    let mut g = QueryGovernor::with_token(state.cancel_all.clone()).started_at(started);
    if let Some(ms) = o.timeout_ms {
        g = g.with_deadline(Duration::from_millis(ms));
    }
    if let Some(mb) = o.mem_budget_mb {
        g = g.with_memory_budget(mb.saturating_mul(1024 * 1024));
    }
    g
}

fn run_engine<M: MetricsSink, G: Governor, T: TraceSink>(
    db: &Database,
    spec: &QuerySpec,
    policy: &ExecPolicy,
    sink: &M,
    gov: &G,
    tracer: &T,
) -> Result<Relation, WireError> {
    let x = db
        .attributes(spec.select.iter().map(String::as_str))
        .map_err(|e| WireError::new(ErrorKind::Schema, format!("bad select: {e}")))?;
    let result = match spec.engine.unwrap_or_default() {
        EngineKind::Yannakakis => query_yannakakis_traced(db, &x, policy, sink, gov, tracer),
        EngineKind::Connection => query_via_connection_traced(db, &x, policy, sink, gov, tracer),
        EngineKind::Naive => query_via_full_join_traced(db, &x, policy, sink, gov, tracer),
    };
    let answer = result.map_err(WireError::from)?;
    // A result produced after the deadline still counts as a timeout —
    // the same contract as the one-shot CLI.
    gov.checkpoint().map_err(WireError::from)?;
    Ok(answer)
}

/// Executes one query request end to end, producing its response frame —
/// always stamped with `trace_id` — and recording its outcome, engine and
/// latency into the stats registry.
fn execute(state: &State, spec: &QuerySpec, trace_id: &str, parse_nanos: u64) -> Response {
    let started = Instant::now();
    let slow_ms = state.slow_ms.load(Ordering::Relaxed);
    let tracer = (slow_ms > 0).then(CollectingTracer::new);
    let engine = spec.engine.unwrap_or_default();
    let (response, engine_reached, outcome) = execute_inner(state, spec, trace_id, tracer.as_ref());
    let elapsed = started.elapsed();
    state.stats.record_query(
        engine_reached.then_some(engine),
        outcome,
        elapsed.as_micros() as u64,
    );
    if let Some(tracer) = &tracer {
        let mut report = tracer.take();
        if slow_ms > 0 && elapsed.as_millis() as u64 >= slow_ms {
            report.roots.insert(
                0,
                Span {
                    kind: SpanKind::Parse,
                    nanos: parse_nanos,
                    children: Vec::new(),
                },
            );
            log_slow_query(state, spec, trace_id, engine, &elapsed, outcome, &report);
        }
    }
    response
}

/// One structured slow-query line on stderr: trace id, query shape,
/// outcome and the span tree.
fn log_slow_query(
    state: &State,
    spec: &QuerySpec,
    trace_id: &str,
    engine: EngineKind,
    elapsed: &Duration,
    outcome: Result<(), ErrorKind>,
    report: &TraceReport,
) {
    state.stats.record_slow();
    let outcome_label = match outcome {
        Ok(()) => "ok",
        Err(k) => k.as_str(),
    };
    let select = json::Json::Arr(spec.select.iter().map(json::Json::str).collect()).to_string();
    eprintln!(
        "{{\"slow_query\":\"{trace_id}\",\"db\":{},\"select\":{select},\"engine\":\"{}\",\
         \"outcome\":\"{outcome_label}\",\"elapsed_us\":{},\"spans\":{}}}",
        json::Json::str(&spec.db),
        engine.as_str(),
        elapsed.as_micros(),
        report.to_json(),
    );
}

/// The engine-dispatch half of [`execute`]: returns the response plus what
/// the registry should record (whether an engine ran, and the outcome).
fn execute_inner(
    state: &State,
    spec: &QuerySpec,
    trace_id: &str,
    tracer: Option<&CollectingTracer>,
) -> (Response, bool, Result<(), ErrorKind>) {
    let db = match state.dbs.get(&spec.db) {
        Some(db) => Arc::clone(db),
        None => {
            return (
                Response::Error(
                    WireError::new(
                        ErrorKind::UnknownDb,
                        format!("no database named {:?}", spec.db),
                    )
                    .with_trace(trace_id),
                ),
                false,
                Err(ErrorKind::UnknownDb),
            )
        }
    };
    state.queries.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let policy = policy_for(&spec.overrides);
    let base = governor_for(state, &spec.overrides, started);
    let want_metrics = spec.overrides.metrics == Some(true);
    let fail_requested =
        spec.overrides.fail_at_semijoin.is_some() || spec.overrides.fail_panic == Some(true);

    #[cfg(not(feature = "failpoints"))]
    if fail_requested {
        return (
            Response::Error(
                WireError::new(
                    ErrorKind::Proto,
                    "fault injection requires a server built with the failpoints feature",
                )
                .with_trace(trace_id),
            ),
            false,
            Err(ErrorKind::Proto),
        );
    }

    let run = |sink_metrics: Option<&CollectingSink>| -> Result<Relation, WireError> {
        macro_rules! with_gov {
            ($gov:expr) => {
                match (sink_metrics, tracer) {
                    (Some(sink), Some(t)) => run_engine(&db, spec, &policy, sink, $gov, t),
                    (Some(sink), None) => run_engine(&db, spec, &policy, sink, $gov, &NoopTrace),
                    (None, Some(t)) => run_engine(&db, spec, &policy, &NoopMetrics, $gov, t),
                    (None, None) => run_engine(&db, spec, &policy, &NoopMetrics, $gov, &NoopTrace),
                }
            };
        }
        #[cfg(feature = "failpoints")]
        if fail_requested {
            let mut gov = reldb::FailpointGovernor::with_base(base.clone());
            if let Some(n) = spec.overrides.fail_at_semijoin {
                gov = gov.fail_at_semijoin(n);
            }
            if spec.overrides.fail_panic == Some(true) {
                gov = gov.fail_mode(reldb::FailMode::Panic);
            }
            return with_gov!(&gov);
        }
        with_gov!(&base)
    };

    let (result, metrics) = if want_metrics {
        let sink = CollectingSink::new();
        let result = run(Some(&sink));
        let metrics = json::parse(&sink.snapshot().to_json()).ok();
        (result, metrics)
    } else {
        (run(None), None)
    };

    match result {
        Err(e) => {
            let kind = e.kind;
            (Response::Error(e.with_trace(trace_id)), true, Err(kind))
        }
        Ok(answer) => {
            let serialize = || answer_frame(&db, &answer, metrics);
            let mut resp = match tracer {
                Some(t) => reldb::trace::with_span(t, SpanKind::Serialize, serialize),
                None => serialize(),
            };
            if let Response::Answer { trace, .. } = &mut resp {
                *trace = Some(trace_id.to_owned());
            }
            (resp, true, Ok(()))
        }
    }
}

/// Renders a relation as a canonical `answer` frame: attributes in schema
/// universe order, rows sorted by value — so equal relations yield
/// byte-identical frames no matter which engine or thread count produced
/// them.  The differential soak harness depends on exactly this.
pub fn answer_frame(db: &Database, answer: &Relation, metrics: Option<json::Json>) -> Response {
    let universe = db.schema().universe();
    let nodes: Vec<_> = answer.attributes().iter().collect();
    let attrs: Vec<String> = nodes.iter().map(|&n| universe.name(n).to_owned()).collect();
    let mut rows: Vec<Vec<reldb::Value>> = answer
        .tuples()
        .map(|t| {
            nodes
                .iter()
                .map(|&n| {
                    t.get(n)
                        .expect("answer tuples cover their attributes")
                        .clone()
                })
                .collect()
        })
        .collect();
    rows.sort_unstable();
    let rows = rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| match v {
                    reldb::Value::Int(n) => json::Json::Int(n),
                    reldb::Value::Str(s) => json::Json::Str(s),
                })
                .collect()
        })
        .collect();
    Response::Answer {
        attrs,
        rows,
        metrics,
        trace: None,
    }
}
