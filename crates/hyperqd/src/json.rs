//! A minimal JSON value type, parser and serializer for the wire protocol.
//!
//! The build environment has no registry access, so `hyperqd` carries its
//! own JSON layer instead of depending on `serde`.  It is deliberately
//! small but complete for the protocol's needs:
//!
//! * objects preserve key order, so `parse ∘ serialize` is the identity on
//!   every frame the protocol emits (the protocol proptests pin this);
//! * integers are kept exact as `i64` (tuple values are integers or
//!   strings, never floats); non-integral numbers parse as [`Json::Float`];
//! * parsing is recursive descent over bytes with a hard depth limit, so a
//!   hostile frame (`[[[[…`) errors out instead of overflowing the stack;
//! * every failure is a [`JsonError`] with a byte offset — the server turns
//!   these into structured error responses, never panics.

use std::fmt;

/// Nesting depth above which the parser refuses to descend.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.  Object members keep their textual order so serialization
/// is deterministic and round-trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number, kept exact.
    Int(i64),
    /// A non-integral (or out-of-`i64`-range) number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (later duplicates win on
    /// lookup, but all pairs are preserved for round-tripping).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Looks a key up in an object (last duplicate wins); `None` for
    /// missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let text = format!("{x}");
                    // `{}` prints integral floats without a dot; keep the
                    // value unambiguously a float on the wire.
                    let needs_dot = !text.contains(['.', 'e', 'E']);
                    out.push_str(&text);
                    if needs_dot {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to compact JSON (no whitespace), deterministically — the
/// canonical wire form the protocol round-trip tests pin.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the failure was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing content (other than whitespace) is an
/// error, so a frame is exactly one value.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err(format!("bad escape \\{}", esc as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slicing a &str at scalar boundaries"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(JsonError {
                offset: start,
                message: format!("invalid number {text:?}"),
            }),
        }
    }
}

/// Builder shorthand: an object from pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "9223372036854775807",
            "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"op":"query","select":["A","B"],"n":3,"deep":{"x":[1,2,{"y":null}]}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::str("a\"b\\c\nd\te\u{08}\u{0C}\u{1F}π");
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "01x",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "[,]",
            "--1",
            "1e",
            "\u{7f}",
            "{\"a\":1}garbage",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_last_on_lookup() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(2)));
    }

    #[test]
    fn floats_parse_and_serialize_unambiguously() {
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }
}
