//! Property-based tests for tableaux, row mappings, minimization and
//! tableau reduction.

use hypergraph::{Hypergraph, NodeSet};
use proptest::prelude::*;
use tableau::{
    contains, equivalent, find_mapping_onto, minimize, tableau_reduction, RowMapping, Tableau,
};

/// A small random hypergraph over named nodes n0..n9.
fn small_hypergraph() -> impl Strategy<Value = Hypergraph> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..10, 1..4), 1..7).prop_map(
        |edges| {
            Hypergraph::from_edges(
                edges
                    .iter()
                    .map(|e| e.iter().map(|i| format!("n{i}")).collect::<Vec<_>>()),
            )
            .expect("nonempty edges")
        },
    )
}

fn sacred_from(h: &Hypergraph, selector: u64) -> NodeSet {
    h.nodes()
        .iter()
        .enumerate()
        .filter(|(i, _)| selector & (1 << (i % 60)) != 0)
        .map(|(_, n)| n)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tableau's symbol layout mirrors edge membership exactly.
    #[test]
    fn symbols_follow_membership(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector);
        let t = Tableau::new(&h, &sacred);
        prop_assert_eq!(t.row_count(), h.edge_count());
        for (i, e) in h.edges().iter().enumerate() {
            for col in t.columns().iter() {
                let sym = t.symbol_at(tableau::RowId(i as u32), col);
                prop_assert_eq!(sym.is_special(), e.nodes.contains(col));
            }
        }
        // Distinguished cells are exactly sacred ∩ membership.
        for col in t.columns().iter() {
            let holders = t.rows_with_special(col);
            prop_assert_eq!(holders.len(), h.degree(col));
        }
    }

    /// The minimization produces a valid row mapping whose target is a
    /// fixed point of further minimization.
    #[test]
    fn minimization_is_sound_and_stable(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector);
        let t = Tableau::new(&h, &sacred);
        let min = minimize(&t);
        prop_assert!(min.mapping.is_valid(&t));
        prop_assert_eq!(min.mapping.target(), min.target.clone());
        // Every target row maps to itself.
        for &r in &min.target {
            prop_assert_eq!(min.mapping.image(r), r);
        }
        // A retraction onto the target exists (and is the one returned).
        prop_assert!(find_mapping_onto(&t, &min.target).is_some());
        // Every row holding a distinguished symbol maps to a row holding it.
        for r in t.row_ids() {
            for col in sacred.iter() {
                if t.row(r).nodes.contains(col) {
                    prop_assert!(t.row(min.mapping.image(r)).nodes.contains(col));
                }
            }
        }
    }

    /// The identity is always a valid row mapping, and composing the
    /// minimizing mapping with itself is idempotent.
    #[test]
    fn identity_and_idempotence(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector);
        let t = Tableau::new(&h, &sacred);
        let id = RowMapping::identity(t.row_count());
        prop_assert!(id.is_valid(&t));
        let min = minimize(&t);
        let twice = min.mapping.then(&min.mapping);
        prop_assert_eq!(twice, min.mapping.clone());
    }

    /// Tableau reduction output: node-generated, covered by the hypergraph,
    /// contains the sacred nodes, and is stable under re-reduction.
    #[test]
    fn reduction_output_invariants(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector).intersection(&h.nodes());
        let tr = tableau_reduction(&h, &sacred);
        prop_assert!(h.is_node_generated_subhypergraph(&tr));
        prop_assert!(tr.nodes().is_superset(&sacred));
        for e in tr.edges() {
            prop_assert!(h.covers(&e.nodes));
        }
    }

    /// Lemma 3.8 (monotonicity): removing a sacred node can only shrink the
    /// node set of the reduction.
    #[test]
    fn reduction_monotone_in_sacred_set(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector).intersection(&h.nodes());
        prop_assume!(!sacred.is_empty());
        let full = tableau_reduction(&h, &sacred);
        let dropped = sacred.first().expect("nonempty");
        let mut smaller = sacred.clone();
        smaller.remove(dropped);
        let reduced = tableau_reduction(&h, &smaller);
        prop_assert!(reduced.nodes().is_subset(&full.nodes()));
    }

    /// The original tableau and the tableau of its reduction are equivalent
    /// as queries (each contains the other).
    #[test]
    fn reduction_preserves_equivalence(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector).intersection(&h.nodes());
        let original = Tableau::new(&h, &sacred);
        let tr = tableau_reduction(&h, &sacred);
        prop_assume!(!tr.is_empty());
        let reduced = Tableau::new(&tr, &sacred);
        prop_assert!(equivalent(&original, &reduced));
        // Containment is reflexive.
        prop_assert!(contains(&original, &original));
    }

    /// Lemma 3.9 consequence: nodes absent from the reduction's node set
    /// never appear in any partial edge, and every kept node is sacred or
    /// shared by two target edges.
    #[test]
    fn kept_nodes_are_justified(h in small_hypergraph(), selector in any::<u64>()) {
        let sacred = sacred_from(&h, selector).intersection(&h.nodes());
        let tr = tableau_reduction(&h, &sacred);
        for n in tr.nodes().iter() {
            let occurrences = tr.edges().iter().filter(|e| e.nodes.contains(n)).count();
            prop_assert!(sacred.contains(n) || occurrences >= 2,
                "node {n:?} kept without justification");
        }
    }
}
