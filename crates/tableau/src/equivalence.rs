//! Tableau containment and equivalence.
//!
//! Tableaux are queries: applied to a universal-relation instance they
//! return the valuations of their distinguished (summary) symbols for which
//! every row can be mapped to a tuple of the instance.  Following Aho, Sagiv
//! & Ullman (the paper's reference [1]), tableau `T1` *contains* `T2`
//! (returns a superset of answers on every instance) iff there is a
//! homomorphism from `T1`'s rows to `T2`'s rows that preserves distinguished
//! symbols and is consistent on repeated symbols.  Two tableaux are
//! *equivalent* iff each contains the other.
//!
//! In this crate tableaux always arise from a hypergraph plus a sacred set,
//! so containment and equivalence let us compare *schemas*: e.g. the reduced
//! tableau of `TR(H, X)` is always equivalent to the original tableau of
//! `(H, X)` — which is the semantic justification for answering queries over
//! the canonical connection only.

use crate::symbol::RowId;
use crate::tableau::Tableau;
use hypergraph::NodeId;

/// A homomorphism between the rows of two tableaux over the same universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableauHomomorphism {
    /// `images[i]` is the row of the target tableau that row `i` of the
    /// source tableau maps to.
    pub images: Vec<RowId>,
}

/// Checks whether the candidate assignment of source rows to target rows is
/// a valid homomorphism: distinguished symbols are preserved and rows
/// sharing a special symbol (in the source) get images agreeing on that
/// column (in the target).
fn is_valid_assignment(source: &Tableau, target: &Tableau, images: &[RowId]) -> bool {
    // Distinguished preservation: a source row containing a sacred node must
    // map to a target row containing that node, and the node must be sacred
    // in the target too (otherwise the distinguished symbol is lost).
    for (i, row) in source.rows().iter().enumerate() {
        for n in row.nodes.intersection(source.sacred()).iter() {
            if !target.sacred().contains(n) || !target.row(images[i]).nodes.contains(n) {
                return false;
            }
        }
    }
    // Symbol consistency per shared column of the source.
    for col in source.columns().iter() {
        let holders = source.rows_with_special(col);
        if holders.len() < 2 {
            continue;
        }
        let reference = target.symbol_at(images[holders[0].index()], col);
        if holders[1..]
            .iter()
            .any(|r| target.symbol_at(images[r.index()], col) != reference)
        {
            return false;
        }
    }
    true
}

/// Searches for a homomorphism from `source` to `target` (both over the same
/// universe).  Returns `None` when no homomorphism exists.
pub fn find_homomorphism(source: &Tableau, target: &Tableau) -> Option<TableauHomomorphism> {
    if source.row_count() == 0 {
        return Some(TableauHomomorphism { images: Vec::new() });
    }
    if target.row_count() == 0 {
        return None;
    }
    // Domains restricted by distinguished-symbol preservation.
    let domains: Vec<Vec<RowId>> = source
        .rows()
        .iter()
        .map(|row| {
            let sacred: Vec<NodeId> = row.nodes.intersection(source.sacred()).iter().collect();
            target
                .row_ids()
                .filter(|&t| {
                    sacred
                        .iter()
                        .all(|&n| target.sacred().contains(n) && target.row(t).nodes.contains(n))
                })
                .collect()
        })
        .collect();
    if domains.iter().any(Vec::is_empty) {
        return None;
    }

    let n = source.row_count();
    let mut images: Vec<RowId> = vec![RowId(0); n];
    fn dfs(
        source: &Tableau,
        target: &Tableau,
        domains: &[Vec<RowId>],
        depth: usize,
        images: &mut Vec<RowId>,
    ) -> bool {
        if depth == domains.len() {
            return is_valid_assignment(source, target, images);
        }
        for &candidate in &domains[depth] {
            images[depth] = candidate;
            // Prune early: check consistency of the prefix by validating the
            // full assignment only at the leaves (tableaux here are small);
            // a cheap partial check on sacred nodes is already encoded in
            // the domains.
            if dfs(source, target, domains, depth + 1, images) {
                return true;
            }
        }
        false
    }
    if dfs(source, target, &domains, 0, &mut images) {
        Some(TableauHomomorphism { images })
    } else {
        None
    }
}

/// True if `general` contains `specific`: on every instance, `general`
/// returns at least the answers of `specific`.  Witnessed by a homomorphism
/// from `general` to `specific`.
pub fn contains(general: &Tableau, specific: &Tableau) -> bool {
    find_homomorphism(general, specific).is_some()
}

/// True if the two tableaux are equivalent (each contains the other).
pub fn equivalent(a: &Tableau, b: &Tableau) -> bool {
    contains(a, b) && contains(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::tableau_reduction;
    use hypergraph::Hypergraph;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn every_tableau_is_equivalent_to_itself() {
        let h = fig1();
        for names in [vec!["A", "D"], vec![], vec!["B", "F"]] {
            let x = h.node_set(names.iter().copied()).unwrap();
            let t = Tableau::new(&h, &x);
            assert!(equivalent(&t, &t));
        }
    }

    #[test]
    fn reduced_tableau_is_equivalent_to_the_original() {
        // TR(H, X) viewed as a hypergraph over the same universe, with the
        // same sacred set, yields a tableau equivalent to the original one —
        // the semantic content of tableau minimization.
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let original = Tableau::new(&h, &x);
        let reduced_h = tableau_reduction(&h, &x);
        let reduced = Tableau::new(&reduced_h, &x);
        assert!(equivalent(&original, &reduced));
    }

    #[test]
    fn dropping_a_constraining_edge_breaks_equivalence() {
        // The chain A-B, B-C, C-D with A and D sacred is NOT equivalent to
        // just its two end edges: the middle edge genuinely constrains how A
        // and D connect.
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let ends = Hypergraph::builder()
            .node("A")
            .node("B")
            .node("C")
            .node("D")
            .edge("AB", ["A", "B"])
            .edge("CD", ["C", "D"])
            .build()
            .unwrap();
        let x = h.node_set(["A", "D"]).unwrap();
        let full = Tableau::new(&h, &x);
        let partial = Tableau::new(&ends, &x);
        // The two-edge tableau contains the three-edge one (fewer
        // constraints) but not vice versa.
        assert!(contains(&partial, &full));
        assert!(!contains(&full, &partial));
        assert!(!equivalent(&full, &partial));
    }

    #[test]
    fn containment_respects_distinguished_symbols() {
        // A tableau whose sacred set is larger cannot be mapped into one
        // that lacks the extra distinguished symbol.
        let h = fig1();
        let big = Tableau::new(&h, &h.node_set(["A", "D"]).unwrap());
        let small = Tableau::new(&h, &h.node_set(["A"]).unwrap());
        assert!(!contains(&big, &small));
        // The identity mapping witnesses the other direction.
        assert!(contains(&small, &big));
    }

    #[test]
    fn empty_tableau_edge_cases() {
        let h = Hypergraph::builder().build().unwrap();
        let empty = Tableau::new(&h, &hypergraph::NodeSet::new());
        let fig = Tableau::new(&fig1(), &hypergraph::NodeSet::new());
        assert!(contains(&empty, &fig));
        assert!(!contains(&fig, &empty));
        assert!(equivalent(&empty, &empty));
    }
}
