//! Tableaux and tableau reduction for "Connections in Acyclic Hypergraphs"
//! (Maier & Ullman, §3).
//!
//! A tableau is built from a hypergraph and a set of *sacred* nodes: rows
//! correspond to edges, columns to nodes, each column's *special symbol*
//! appears in exactly the rows whose edge contains the node, and special
//! symbols of sacred nodes are *distinguished*.  Row mappings
//! (homomorphisms) fold rows onto one another; because row mappings form a
//! finite Church–Rosser system there is a unique minimal row subset, and
//! reading the surviving partial edges off that subset yields `TR(H, X)` —
//! the *canonical connection* of `X` in `H`.
//!
//! # Module map
//!
//! | Module | Paper concept |
//! |---|---|
//! | `symbol` | distinguished / nondistinguished symbols and row ids (§3) |
//! | `tableau` | the tableau `T(H, X)` built from a hypergraph and sacred nodes (§3) |
//! | `mapping` | row mappings (containment homomorphisms) that fold rows (§3) |
//! | `minimize` | Church–Rosser minimization to the unique minimal row subset (Lemma 3.1) |
//! | `reduce` | tableau reduction `TR(H, X)` — reading canonical connections off the minimal tableau (§3) |
//! | `equivalence` | tableau containment / equivalence via homomorphisms (the chase-style check) |
//!
//! # Example
//!
//! ```
//! use hypergraph::Hypergraph;
//! use tableau::{Tableau, minimize, tableau_reduction};
//!
//! let h = Hypergraph::from_edges([
//!     vec!["A", "B", "C"],
//!     vec!["C", "D", "E"],
//!     vec!["A", "E", "F"],
//!     vec!["A", "C", "E"],
//! ]).unwrap();
//! let sacred = h.node_set(["A", "D"]).unwrap();
//!
//! let t = Tableau::new(&h, &sacred);
//! assert_eq!(minimize(&t).target.len(), 2);           // Example 3.3
//! assert_eq!(tableau_reduction(&h, &sacred).edge_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod equivalence;
mod mapping;
mod minimize;
mod reduce;
mod symbol;
mod tableau;

pub use equivalence::{contains, equivalent, find_homomorphism, TableauHomomorphism};
pub use mapping::{MappingError, RowMapping};
pub use minimize::{find_mapping_onto, minimize, Minimization};
pub use reduce::{tableau_reduction, tableau_reduction_full, TableauReduction};
pub use symbol::{RowId, Symbol};
pub use tableau::{Row, Tableau};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::{
        find_mapping_onto, minimize, tableau_reduction, tableau_reduction_full, Minimization,
        RowId, RowMapping, Symbol, Tableau,
    };
}
