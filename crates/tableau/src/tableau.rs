//! The tableau of a hypergraph with a set of sacred nodes.

use crate::symbol::{RowId, Symbol};
use hypergraph::{Hypergraph, NodeId, NodeSet, Universe};
use std::fmt;
use std::sync::Arc;

/// One tableau row: the edge it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Label of the originating hyperedge.
    pub label: String,
    /// Nodes of the originating hyperedge (the columns holding the row's
    /// special symbols).
    pub nodes: NodeSet,
}

/// A tableau in the paper's restricted sense (§3): columns are the nodes of
/// a hypergraph, rows correspond to its edges, the summary holds the
/// distinguished symbols of the *sacred* nodes, the special symbol of a
/// column appears exactly in the rows whose edge contains that node, and
/// every other cell holds a symbol unique to that cell.
///
/// Because the symbol pattern is fully determined by the hypergraph and the
/// sacred set, the tableau is stored intensionally — cells are computed by
/// [`Tableau::symbol_at`] rather than materialized.
#[derive(Debug, Clone)]
pub struct Tableau {
    universe: Arc<Universe>,
    columns: NodeSet,
    rows: Vec<Row>,
    sacred: NodeSet,
}

impl Tableau {
    /// Builds the tableau of `h` with the nodes of `sacred` distinguished
    /// (step (1) of the paper's `TR(H, X)` construction).
    ///
    /// Sacred nodes that do not occur in `h` are ignored, matching the
    /// paper's usage where `X` is always a subset of the nodes.
    pub fn new(h: &Hypergraph, sacred: &NodeSet) -> Self {
        let columns = h.nodes();
        Self {
            universe: Arc::clone(h.universe()),
            columns: columns.clone(),
            rows: h
                .edges()
                .iter()
                .map(|e| Row {
                    label: e.label.clone(),
                    nodes: e.nodes.clone(),
                })
                .collect(),
            sacred: sacred.intersection(&columns),
        }
    }

    /// The shared universe naming the columns.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// The columns (nodes) of the tableau.
    pub fn columns(&self) -> &NodeSet {
        &self.columns
    }

    /// The sacred (distinguished) nodes.
    pub fn sacred(&self) -> &NodeSet {
        &self.sacred
    }

    /// All rows in edge order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// All row ids.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..self.rows.len() as u32).map(RowId)
    }

    /// The row with id `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row(&self, r: RowId) -> &Row {
        &self.rows[r.index()]
    }

    /// The symbol in row `r`, column `col`.
    pub fn symbol_at(&self, r: RowId, col: NodeId) -> Symbol {
        if self.rows[r.index()].nodes.contains(col) {
            Symbol::Special(col)
        } else {
            Symbol::Unique(r, col)
        }
    }

    /// True if the symbol in row `r`, column `col` is distinguished
    /// (special *and* its node is sacred).
    pub fn is_distinguished(&self, r: RowId, col: NodeId) -> bool {
        self.sacred.contains(col) && self.rows[r.index()].nodes.contains(col)
    }

    /// The summary row: for each column, the distinguished symbol if the
    /// node is sacred, otherwise `None`.
    pub fn summary(&self) -> Vec<(NodeId, Option<Symbol>)> {
        self.columns
            .iter()
            .map(|c| (c, self.sacred.contains(c).then_some(Symbol::Special(c))))
            .collect()
    }

    /// The ids of rows whose edge contains node `n` (the rows in which the
    /// special symbol of column `n` appears).
    pub fn rows_with_special(&self, n: NodeId) -> Vec<RowId> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.nodes.contains(n))
            .map(|(i, _)| RowId(i as u32))
            .collect()
    }

    /// Renders the tableau like the paper's Fig. 2: one column per node, the
    /// summary between rules, special symbols shown as the lowercase node
    /// name, unique symbols as blanks, distinguished entries marked.
    pub fn render(&self) -> String {
        let cols: Vec<NodeId> = self.columns.iter().collect();
        let width = 4usize;
        let mut out = String::new();
        out.push_str(&format!("{:8}", ""));
        for &c in &cols {
            out.push_str(&format!("{:>width$}", self.universe.name(c)));
        }
        out.push('\n');
        out.push_str(&"-".repeat(8 + width * cols.len()));
        out.push('\n');
        out.push_str(&format!("{:8}", "summary"));
        for &c in &cols {
            if self.sacred.contains(c) {
                out.push_str(&format!("{:>width$}", self.universe.name(c).to_lowercase()));
            } else {
                out.push_str(&format!("{:>width$}", ""));
            }
        }
        out.push('\n');
        out.push_str(&"-".repeat(8 + width * cols.len()));
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{:8}", row.label));
            for &c in &cols {
                match self.symbol_at(RowId(i as u32), c) {
                    Symbol::Special(n) => {
                        out.push_str(&format!("{:>width$}", self.universe.name(n).to_lowercase()))
                    }
                    Symbol::Unique(..) => out.push_str(&format!("{:>width$}", ".")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Tableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn fig2() -> Tableau {
        let h = fig1();
        let sacred = h.node_set(["A", "D"]).unwrap();
        Tableau::new(&h, &sacred)
    }

    #[test]
    fn construction_matches_fig2() {
        let t = fig2();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.columns().len(), 6);
        assert_eq!(t.sacred().len(), 2);
    }

    #[test]
    fn special_symbols_follow_membership() {
        let t = fig2();
        let h = fig1();
        let a = h.node("A").unwrap();
        let d = h.node("D").unwrap();
        // Row 0 is {A, B, C}: special in A, unique in D.
        assert_eq!(t.symbol_at(RowId(0), a), Symbol::Special(a));
        assert_eq!(t.symbol_at(RowId(0), d), Symbol::Unique(RowId(0), d));
        // Row 1 is {C, D, E}: special (and distinguished) in D.
        assert_eq!(t.symbol_at(RowId(1), d), Symbol::Special(d));
        assert!(t.is_distinguished(RowId(1), d));
        assert!(t.is_distinguished(RowId(0), a));
        // C is special in row 0 but not distinguished (C is not sacred).
        let c = h.node("C").unwrap();
        assert!(!t.is_distinguished(RowId(0), c));
    }

    #[test]
    fn rows_with_special_counts() {
        let t = fig2();
        let h = fig1();
        assert_eq!(t.rows_with_special(h.node("A").unwrap()).len(), 3);
        assert_eq!(t.rows_with_special(h.node("D").unwrap()).len(), 1);
        assert_eq!(t.rows_with_special(h.node("C").unwrap()).len(), 3);
        assert_eq!(t.rows_with_special(h.node("E").unwrap()).len(), 3);
        assert_eq!(t.rows_with_special(h.node("B").unwrap()), vec![RowId(0)]);
    }

    #[test]
    fn summary_has_distinguished_symbols_only_for_sacred() {
        let t = fig2();
        let h = fig1();
        let a = h.node("A").unwrap();
        let b = h.node("B").unwrap();
        let summary = t.summary();
        let entry = |n| summary.iter().find(|(c, _)| *c == n).unwrap().1;
        assert_eq!(entry(a), Some(Symbol::Special(a)));
        assert_eq!(entry(b), None);
    }

    #[test]
    fn sacred_nodes_outside_hypergraph_are_dropped() {
        let h = Hypergraph::from_edges([vec!["A", "B"]]).unwrap();
        let mut sacred = h.node_set(["A"]).unwrap();
        sacred.insert(hypergraph::NodeId(40)); // not a node of h
        let t = Tableau::new(&h, &sacred);
        assert_eq!(t.sacred().len(), 1);
    }

    #[test]
    fn render_contains_summary_and_rows() {
        let t = fig2();
        let s = t.render();
        assert!(s.contains("summary"));
        assert!(s.contains("A-B-C"));
        assert!(s.lines().count() >= 8);
    }
}
