//! Tableau reduction `TR(H, X)`.
//!
//! Following §3 of the paper, `TR(H, X)` is computed in three steps:
//!
//! 1. build the tableau of `H` with the special symbols of the nodes of `X`
//!    made distinguished;
//! 2. minimize the tableau (find the unique minimal row subset onto which
//!    all rows map);
//! 3. read off `h(H)`: for every edge in the target, keep a node iff it is
//!    sacred or it appears in at least two target edges.  Nodes whose
//!    (non-distinguished) special symbol occurs only once in the reduced
//!    tableau are dropped.
//!
//! Empty partial edges are dropped, so `TR(H, ∅)` of a hypergraph whose
//! tableau folds to a single row is the empty hypergraph.  This matches the
//! convention used by the `acyclic` crate's Graham reduction, keeping
//! Theorem 3.5 (`GR = TR` on acyclic hypergraphs) exact in code.

use crate::minimize::{minimize, Minimization};
use crate::tableau::Tableau;
use hypergraph::{Edge, Hypergraph, NodeSet};

/// The result of a tableau reduction, retaining the intermediate artifacts
/// for inspection and testing.
#[derive(Debug, Clone)]
pub struct TableauReduction {
    /// The tableau that was minimized.
    pub tableau: Tableau,
    /// The minimization (target rows and witnessing row mapping).
    pub minimization: Minimization,
    /// `TR(H, X)` as a hypergraph of partial edges over `H`'s universe.
    pub hypergraph: Hypergraph,
}

/// Computes `TR(H, X)` together with its intermediate artifacts.
pub fn tableau_reduction_full(h: &Hypergraph, sacred: &NodeSet) -> TableauReduction {
    let tableau = Tableau::new(h, sacred);
    let minimization = minimize(&tableau);

    // Count, for every node, how many *target* edges contain it.
    let target_rows: Vec<&NodeSet> = minimization
        .target
        .iter()
        .map(|&r| &tableau.row(r).nodes)
        .collect();
    let occurs_twice = |n| target_rows.iter().filter(|s| s.contains(n)).count() >= 2;

    let edges: Vec<Edge> = minimization
        .target
        .iter()
        .map(|&r| {
            let row = tableau.row(r);
            let kept: NodeSet = row
                .nodes
                .iter()
                .filter(|&n| sacred.contains(n) || occurs_twice(n))
                .collect();
            Edge::new(row.label.clone(), kept)
        })
        .filter(|e| !e.nodes.is_empty())
        .collect();

    let hypergraph = h.with_edges(edges);
    TableauReduction {
        tableau,
        minimization,
        hypergraph,
    }
}

/// Computes `TR(H, X)`: the canonical connection of `X` in `H`, as a
/// hypergraph of partial edges.
///
/// ```
/// use hypergraph::Hypergraph;
/// use tableau::tableau_reduction;
///
/// // Fig. 1 with A and D sacred: TR is {C,D,E} and {A,C,E} (Example 3.3).
/// let h = Hypergraph::from_edges([
///     vec!["A", "B", "C"],
///     vec!["C", "D", "E"],
///     vec!["A", "E", "F"],
///     vec!["A", "C", "E"],
/// ]).unwrap();
/// let x = h.node_set(["A", "D"]).unwrap();
/// let tr = tableau_reduction(&h, &x);
/// assert_eq!(tr.edge_count(), 2);
/// assert!(tr.contains_edge_set(&h.node_set(["C", "D", "E"]).unwrap()));
/// assert!(tr.contains_edge_set(&h.node_set(["A", "C", "E"]).unwrap()));
/// ```
pub fn tableau_reduction(h: &Hypergraph, sacred: &NodeSet) -> Hypergraph {
    tableau_reduction_full(h, sacred).hypergraph
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn example_3_3_result() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let tr = tableau_reduction(&h, &x);
        assert_eq!(tr.edge_count(), 2);
        assert!(tr.contains_edge_set(&h.node_set(["C", "D", "E"]).unwrap()));
        assert!(tr.contains_edge_set(&h.node_set(["A", "C", "E"]).unwrap()));
        assert!(tr.is_reduced());
    }

    #[test]
    fn tr_is_node_generated_lemma_3_6() {
        let h = fig1();
        for x in [
            h.node_set(["A", "D"]).unwrap(),
            h.node_set(["B", "F"]).unwrap(),
            h.node_set(["A", "C"]).unwrap(),
            h.node_set(["D"]).unwrap(),
            h.node_set([]).unwrap(),
        ] {
            let tr = tableau_reduction(&h, &x);
            assert!(
                h.is_node_generated_subhypergraph(&tr),
                "TR(H, {}) = {} is not node-generated",
                x.display(h.universe()),
                tr.display()
            );
        }
    }

    #[test]
    fn tr_is_monotone_in_sacred_set_lemma_3_8() {
        let h = fig1();
        let small = h.node_set(["A"]).unwrap();
        let large = h.node_set(["A", "D"]).unwrap();
        let tr_small = tableau_reduction(&h, &small);
        let tr_large = tableau_reduction(&h, &large);
        // Every node of TR(H, X) appears in TR(H, Y) when X ⊆ Y.
        assert!(tr_small.nodes().is_subset(&tr_large.nodes()));
    }

    #[test]
    fn cyclic_counterexample_after_theorem_3_5() {
        // Edges {A,B}, {A,C}, {B,C}, {A,D} with D sacred: the tableau folds
        // everything onto the {A, D} row, and since A is non-distinguished
        // and now appears only once, TR consists only of node D.
        let h = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["A", "C"],
            vec!["B", "C"],
            vec!["A", "D"],
        ])
        .unwrap();
        let x = h.node_set(["D"]).unwrap();
        let tr = tableau_reduction(&h, &x);
        assert_eq!(tr.edge_count(), 1);
        assert_eq!(tr.nodes(), h.node_set(["D"]).unwrap());
    }

    #[test]
    fn all_nodes_sacred_gives_back_the_hypergraph() {
        let h = fig1();
        let tr = tableau_reduction(&h, &h.nodes());
        assert!(tr.same_edge_sets(&h));
    }

    #[test]
    fn empty_sacred_set_gives_empty_hypergraph() {
        let h = fig1();
        let tr = tableau_reduction(&h, &NodeSet::new());
        assert!(tr.is_empty());
    }

    #[test]
    fn single_edge_keeps_only_sacred_nodes() {
        let h = Hypergraph::from_edges([vec!["A", "B", "C"]]).unwrap();
        let x = h.node_set(["B"]).unwrap();
        let tr = tableau_reduction(&h, &x);
        assert_eq!(tr.edge_count(), 1);
        assert_eq!(tr.nodes(), x);
    }

    #[test]
    fn reduction_artifacts_are_consistent() {
        let h = fig1();
        let x = h.node_set(["A", "D"]).unwrap();
        let full = tableau_reduction_full(&h, &x);
        assert_eq!(full.minimization.target.len(), 2);
        assert!(full.minimization.mapping.is_valid(&full.tableau));
        assert_eq!(full.hypergraph.edge_count(), 2);
    }

    #[test]
    fn lemma_3_10_component_beyond_articulation_set_is_omitted() {
        // Y = {C, E} is an articulation set of Fig. 1 separating {D} from
        // {A, B, F}; with X = {A} (disjoint from {D}), TR(H, X) contains no
        // node of {D}.
        let h = fig1();
        let x = h.node_set(["A"]).unwrap();
        let tr = tableau_reduction(&h, &x);
        assert!(!tr.nodes().contains(h.node("D").unwrap()));
    }
}
