//! Tableau symbols.
//!
//! In the paper's tableaux (§3) each column (node) has one *special symbol*
//! that appears in exactly the rows whose edge contains the node.  Every
//! other entry is a symbol appearing nowhere else (rendered as a blank).
//! Special symbols of *sacred* nodes also appear in the summary and are
//! called *distinguished*.

use hypergraph::NodeId;
use std::fmt;

/// Identifier of a tableau row (one row per hyperedge, in edge order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u32);

impl RowId {
    /// Index of the row.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A symbol occupying one tableau cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// The special symbol of a column; written `a, b, c, …` in the paper.
    /// It appears in every row whose edge contains the column's node.
    Special(NodeId),
    /// A symbol unique to one cell (row, column); rendered as a blank.
    Unique(RowId, NodeId),
}

impl Symbol {
    /// The column (node) this symbol belongs to.
    pub fn column(&self) -> NodeId {
        match *self {
            Symbol::Special(n) => n,
            Symbol::Unique(_, n) => n,
        }
    }

    /// True if this is the column's special symbol.
    pub fn is_special(&self) -> bool {
        matches!(self, Symbol::Special(_))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::Special(n) => write!(f, "s[{n}]"),
            Symbol::Unique(r, n) => write!(f, "u[{r},{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_and_kind() {
        let s = Symbol::Special(NodeId(2));
        let u = Symbol::Unique(RowId(1), NodeId(2));
        assert_eq!(s.column(), NodeId(2));
        assert_eq!(u.column(), NodeId(2));
        assert!(s.is_special());
        assert!(!u.is_special());
        assert_ne!(s, u);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Symbol::Special(NodeId(0))), "s[n0]");
        assert_eq!(
            format!("{}", Symbol::Unique(RowId(3), NodeId(1))),
            "u[r3,n1]"
        );
        assert_eq!(format!("{}", RowId(3)), "r3");
        assert_eq!(RowId(3).index(), 3);
    }
}
