//! Tableau minimization.
//!
//! The rows of a tableau together with its row mappings form a finite
//! Church–Rosser system (Aho, Sagiv & Ullman; cited as [1] in the paper), so
//! there is a unique (up to symbol renaming) minimal subset of rows onto
//! which the whole tableau maps.
//!
//! [`minimize`] computes that subset as a *core* computation: repeatedly
//! look for a row `r` of the current row set such that a symbol-consistent,
//! distinguished-preserving homomorphism from the current sub-tableau into
//! the current rows minus `r` exists; replace the current rows by the image
//! of that homomorphism.  A structure is minimal exactly when no such
//! homomorphism exists for any `r`, and confluence guarantees the result
//! does not depend on the folding order.  A final retraction (a row mapping
//! in the paper's sense, with the target rows fixed) from the full row set
//! onto the minimal subset is then produced by [`find_mapping_onto`].

use crate::mapping::RowMapping;
use crate::symbol::RowId;
use crate::tableau::Tableau;
use hypergraph::{NodeId, NodeSet};
use std::collections::BTreeSet;

/// Result of [`minimize`]: the minimal row subset and a witnessing row
/// mapping from the full row set onto it.
#[derive(Debug, Clone)]
pub struct Minimization {
    /// The minimal set of rows (unique up to symbol renaming).
    pub target: BTreeSet<RowId>,
    /// A row mapping from all rows onto `target`, identity on `target`.
    pub mapping: RowMapping,
}

/// Per-column state used during the backtracking search.
///
/// For every column whose special symbol is held by at least two *active*
/// rows, constraint 2 forces the images of all its holders to agree on that
/// column: either every image contains the column's node (they all show the
/// special symbol), or every holder maps to one and the same row (they all
/// show that row's unique symbol).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ColumnState {
    /// No holder of this column's special symbol has been assigned yet.
    Unset,
    /// Some assigned holder maps to a row containing the column's node, so
    /// every holder must map to a row containing it.
    MustContain,
    /// Some assigned holder maps to this specific row, which does *not*
    /// contain the column's node, so every holder must map to exactly this
    /// row.
    FixedRow(RowId),
}

/// Generic backtracking solver.
///
/// `active` lists the rows of the (sub-)tableau being folded; `domains[i]`
/// lists the rows the `i`-th active row may map to.  Symbol repetition
/// (constraint 2) is evaluated *within the active rows*: a special symbol
/// held by a single active row behaves like a unique symbol.  Constraint 3
/// (preserve distinguished symbols) must already be reflected in the
/// domains.  Returns the images parallel to `active`, or `None`.
fn solve(t: &Tableau, active: &[RowId], domains: &[Vec<RowId>]) -> Option<Vec<RowId>> {
    debug_assert_eq!(active.len(), domains.len());
    if domains.iter().any(Vec::is_empty) {
        return None;
    }

    // Columns whose special symbol is held by at least two active rows.
    let shared_columns: Vec<NodeId> = t
        .columns()
        .iter()
        .filter(|&c| {
            active
                .iter()
                .filter(|&&r| t.row(r).nodes.contains(c))
                .count()
                >= 2
        })
        .collect();
    let column_index = |c: NodeId| shared_columns.iter().position(|&x| x == c);

    // Process rows in ascending domain size (most constrained first).
    let mut order: Vec<usize> = (0..active.len()).collect();
    order.sort_by_key(|&i| domains[i].len());

    let mut states: Vec<ColumnState> = vec![ColumnState::Unset; shared_columns.len()];
    let mut images: Vec<Option<RowId>> = vec![None; active.len()];

    /// Applies `r -> s`, returning the column-state changes for undo, or
    /// `None` on conflict (in which case nothing is changed).
    fn apply(
        t: &Tableau,
        states: &mut [ColumnState],
        column_index: &dyn Fn(NodeId) -> Option<usize>,
        r: RowId,
        s: RowId,
    ) -> Option<Vec<(usize, ColumnState)>> {
        let mut changed = Vec::new();
        for c in t.row(r).nodes.iter() {
            let Some(ci) = column_index(c) else { continue };
            let image_contains = t.row(s).nodes.contains(c);
            let new_state = match (&states[ci], image_contains) {
                (ColumnState::Unset, true) => Some(ColumnState::MustContain),
                (ColumnState::Unset, false) => Some(ColumnState::FixedRow(s)),
                (ColumnState::MustContain, true) => None,
                (ColumnState::MustContain, false) => {
                    undo(states, changed);
                    return None;
                }
                (ColumnState::FixedRow(f), _) => {
                    if *f == s {
                        None
                    } else {
                        undo(states, changed);
                        return None;
                    }
                }
            };
            if let Some(st) = new_state {
                changed.push((ci, states[ci].clone()));
                states[ci] = st;
            }
        }
        Some(changed)
    }

    fn undo(states: &mut [ColumnState], changed: Vec<(usize, ColumnState)>) {
        for (ci, old) in changed.into_iter().rev() {
            states[ci] = old;
        }
    }

    // The arguments are the full backtracking state; bundling them into a
    // struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        t: &Tableau,
        active: &[RowId],
        domains: &[Vec<RowId>],
        order: &[usize],
        depth: usize,
        column_index: &dyn Fn(NodeId) -> Option<usize>,
        states: &mut Vec<ColumnState>,
        images: &mut Vec<Option<RowId>>,
    ) -> bool {
        let Some(&i) = order.get(depth) else {
            return true;
        };
        let r = active[i];
        for &s in &domains[i] {
            if let Some(changed) = apply(t, states, column_index, r, s) {
                images[i] = Some(s);
                if dfs(
                    t,
                    active,
                    domains,
                    order,
                    depth + 1,
                    column_index,
                    states,
                    images,
                ) {
                    return true;
                }
                images[i] = None;
                undo(states, changed);
            }
        }
        false
    }

    if dfs(
        t,
        active,
        domains,
        &order,
        0,
        &column_index,
        &mut states,
        &mut images,
    ) {
        Some(images.into_iter().map(|o| o.expect("assigned")).collect())
    } else {
        None
    }
}

/// The rows a row `r` may map to while preserving its distinguished symbols
/// (constraint 3): candidates whose edge contains every sacred node of `r`.
fn sacred_compatible(t: &Tableau, r: RowId, candidates: &[RowId]) -> Vec<RowId> {
    let sacred_of_r: NodeSet = t.row(r).nodes.intersection(t.sacred());
    candidates
        .iter()
        .copied()
        .filter(|&s| sacred_of_r.is_subset(&t.row(s).nodes))
        .collect()
}

/// Searches for a row mapping (in the paper's sense, with every row of
/// `target` a fixed point) from all rows of `t` onto a subset of `target`.
/// Returns `None` if no such mapping exists.
pub fn find_mapping_onto(t: &Tableau, target: &BTreeSet<RowId>) -> Option<RowMapping> {
    if target.is_empty() {
        return if t.row_count() == 0 {
            Some(RowMapping::identity(0))
        } else {
            None
        };
    }
    if target.iter().any(|r| r.index() >= t.row_count()) {
        return None;
    }
    let active: Vec<RowId> = t.row_ids().collect();
    let target_vec: Vec<RowId> = target.iter().copied().collect();
    let domains: Vec<Vec<RowId>> = active
        .iter()
        .map(|&r| {
            if target.contains(&r) {
                vec![r]
            } else {
                sacred_compatible(t, r, &target_vec)
            }
        })
        .collect();
    let images = solve(t, &active, &domains)?;
    let mapping = RowMapping::new(images);
    debug_assert!(
        mapping.is_valid(t),
        "search produced an invalid row mapping"
    );
    Some(mapping)
}

/// Searches for a homomorphism of the sub-tableau induced by `current` whose
/// image avoids `forbidden`.  Returns the image row of every row of
/// `current` (parallel to the iteration order of `current`), or `None`.
fn find_folding_avoiding(
    t: &Tableau,
    current: &BTreeSet<RowId>,
    forbidden: RowId,
) -> Option<Vec<RowId>> {
    let active: Vec<RowId> = current.iter().copied().collect();
    let candidates: Vec<RowId> = active.iter().copied().filter(|&r| r != forbidden).collect();
    if candidates.is_empty() {
        return None;
    }
    let domains: Vec<Vec<RowId>> = active
        .iter()
        .map(|&r| sacred_compatible(t, r, &candidates))
        .collect();
    solve(t, &active, &domains)
}

/// Computes the minimal row subset of `t` and a row mapping witnessing it.
///
/// By the finite Church–Rosser property of row mappings the subset is
/// independent of the folding order (up to renaming of symbols); the
/// deterministic scan used here makes the concrete subset reproducible.
pub fn minimize(t: &Tableau) -> Minimization {
    let mut current: BTreeSet<RowId> = t.row_ids().collect();
    'outer: loop {
        if current.len() <= 1 {
            break;
        }
        for &r in current.clone().iter() {
            if let Some(images) = find_folding_avoiding(t, &current, r) {
                current = images.into_iter().collect();
                continue 'outer;
            }
        }
        break;
    }
    let mapping = find_mapping_onto(t, &current)
        .expect("the full row set always maps onto the minimal target");
    // The image of the retraction may in principle be a proper subset of the
    // folded row set; take the image as the canonical target.
    let target = mapping.target();
    Minimization { target, mapping }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Hypergraph;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    #[test]
    fn example_3_3_minimal_rows_are_second_and_fourth() {
        let h = fig1();
        let t = Tableau::new(&h, &h.node_set(["A", "D"]).unwrap());
        let min = minimize(&t);
        assert_eq!(
            min.target,
            [RowId(1), RowId(3)].into_iter().collect::<BTreeSet<_>>()
        );
        assert!(min.mapping.is_valid(&t));
        assert_eq!(min.mapping.image(RowId(0)), RowId(3));
        assert_eq!(min.mapping.image(RowId(2)), RowId(3));
    }

    #[test]
    fn fully_sacred_tableau_cannot_fold() {
        let h = fig1();
        let t = Tableau::new(&h, &h.nodes());
        let min = minimize(&t);
        assert_eq!(min.target.len(), 4);
        assert!(min.mapping.is_identity());
    }

    #[test]
    fn no_sacred_nodes_folds_to_single_row() {
        let h = fig1();
        let t = Tableau::new(&h, &NodeSet::new());
        let min = minimize(&t);
        assert_eq!(min.target.len(), 1);
    }

    #[test]
    fn cyclic_counterexample_folds_to_one_row() {
        // Edges {A,B}, {A,C}, {B,C}, {A,D}, with only D sacred: the paper
        // notes all rows can be mapped to the {A, D} row.  This requires a
        // folding that merges three rows at once — single-row retraction
        // steps alone cannot reach it.
        let h = Hypergraph::from_edges([
            vec!["A", "B"],
            vec!["A", "C"],
            vec!["B", "C"],
            vec!["A", "D"],
        ])
        .unwrap();
        let t = Tableau::new(&h, &h.node_set(["D"]).unwrap());
        let min = minimize(&t);
        assert_eq!(min.target, [RowId(3)].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn find_mapping_onto_rejects_impossible_targets() {
        let h = fig1();
        let t = Tableau::new(&h, &h.node_set(["A", "D"]).unwrap());
        // Row 1 is the only one containing sacred D; a target without it is
        // impossible.
        let target: BTreeSet<RowId> = [RowId(0), RowId(3)].into_iter().collect();
        assert!(find_mapping_onto(&t, &target).is_none());
        // The empty target is impossible for a nonempty tableau.
        assert!(find_mapping_onto(&t, &BTreeSet::new()).is_none());
        // Out-of-range targets are rejected.
        let bad: BTreeSet<RowId> = [RowId(17)].into_iter().collect();
        assert!(find_mapping_onto(&t, &bad).is_none());
    }

    #[test]
    fn find_mapping_onto_full_set_is_identity() {
        let h = fig1();
        let t = Tableau::new(&h, &h.node_set(["A"]).unwrap());
        let all: BTreeSet<RowId> = t.row_ids().collect();
        let m = find_mapping_onto(&t, &all).unwrap();
        assert!(m.is_identity());
    }

    #[test]
    fn chain_with_endpoints_sacred_keeps_all_rows() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let t = Tableau::new(&h, &h.node_set(["A", "D"]).unwrap());
        let min = minimize(&t);
        assert_eq!(min.target.len(), 3);
    }

    #[test]
    fn chain_with_one_endpoint_sacred_folds_to_one() {
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["C", "D"]]).unwrap();
        let t = Tableau::new(&h, &h.node_set(["A"]).unwrap());
        let min = minimize(&t);
        assert_eq!(min.target.len(), 1);
        assert!(min.target.contains(&RowId(0)));
    }

    #[test]
    fn triangle_with_no_sacred_nodes_folds_to_one_row() {
        // The triangle is cyclic, but with nothing distinguished any row can
        // absorb the others one at a time… actually no single row can: each
        // pair of rows shares a node held by the third.  The minimization
        // still reaches a single row because constraint 2 only binds within
        // the shrinking sub-tableau.
        let h = Hypergraph::from_edges([vec!["A", "B"], vec!["B", "C"], vec!["A", "C"]]).unwrap();
        let t = Tableau::new(&h, &NodeSet::new());
        let min = minimize(&t);
        assert_eq!(min.target.len(), 1);
    }

    #[test]
    fn empty_tableau_minimizes_to_nothing() {
        let h = Hypergraph::builder().build().unwrap();
        let t = Tableau::new(&h, &NodeSet::new());
        let min = minimize(&t);
        assert!(min.target.is_empty());
        assert!(min.mapping.is_empty());
    }

    #[test]
    fn minimization_is_idempotent() {
        let h = fig1();
        for names in [vec!["A", "D"], vec!["B", "F"], vec!["A"], vec!["C", "E"]] {
            let sacred = h.node_set(names.iter().copied()).unwrap();
            let t = Tableau::new(&h, &sacred);
            let first = minimize(&t);
            // Re-minimizing the already-minimal tableau changes nothing: no
            // folding exists among the target rows.
            for &r in &first.target {
                assert!(find_folding_avoiding(&t, &first.target, r).is_none());
            }
        }
    }
}
