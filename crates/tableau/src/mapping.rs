//! Row mappings (tableau homomorphisms).
//!
//! A *row mapping* `h` sends every row of a tableau to a row of a target
//! subset, subject to (paper §3):
//!
//! 1. rows of the target subset map to themselves,
//! 2. if a symbol appears in two or more rows, their images agree on that
//!    symbol's column, and
//! 3. a row holding a distinguished symbol maps to a row holding the same
//!    distinguished symbol.

use crate::symbol::{RowId, Symbol};
use crate::tableau::Tableau;
use std::collections::BTreeSet;
use std::fmt;

/// Why a candidate row mapping is not valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The mapping has the wrong number of entries for the tableau.
    WrongArity {
        /// Entries supplied.
        got: usize,
        /// Rows in the tableau.
        expected: usize,
    },
    /// Some image is not a row of the tableau.
    ImageOutOfRange(RowId),
    /// A row in the target subset does not map to itself
    /// (violates constraint 1).
    TargetNotFixed(RowId),
    /// Two rows sharing a special symbol have images that disagree on its
    /// column (violates constraint 2).
    ColumnDisagreement {
        /// The column whose special symbol is shared.
        column: hypergraph::NodeId,
        /// The two offending rows.
        rows: (RowId, RowId),
    },
    /// A distinguished symbol would be mapped to a different symbol
    /// (violates constraint 3).
    DistinguishedLost {
        /// The sacred column.
        column: hypergraph::NodeId,
        /// The row whose image drops the distinguished symbol.
        row: RowId,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WrongArity { got, expected } => {
                write!(f, "mapping has {got} entries but the tableau has {expected} rows")
            }
            Self::ImageOutOfRange(r) => write!(f, "image {r} is not a row of the tableau"),
            Self::TargetNotFixed(r) => write!(f, "target row {r} does not map to itself"),
            Self::ColumnDisagreement { column, rows } => write!(
                f,
                "rows {} and {} share the special symbol of column {column} but their images disagree there",
                rows.0, rows.1
            ),
            Self::DistinguishedLost { column, row } => write!(
                f,
                "row {row} holds the distinguished symbol of column {column} but its image does not"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

/// A total mapping from tableau rows to tableau rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMapping {
    images: Vec<RowId>,
}

impl RowMapping {
    /// Creates a mapping from the vector of images (`images[i]` is the image
    /// of row `i`).
    pub fn new(images: Vec<RowId>) -> Self {
        Self { images }
    }

    /// The identity mapping on `n` rows.
    pub fn identity(n: usize) -> Self {
        Self {
            images: (0..n as u32).map(RowId).collect(),
        }
    }

    /// The image of row `r`.
    pub fn image(&self, r: RowId) -> RowId {
        self.images[r.index()]
    }

    /// Number of rows in the domain.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if the mapping has no rows.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The image set (target subset) of the mapping.
    pub fn target(&self) -> BTreeSet<RowId> {
        self.images.iter().copied().collect()
    }

    /// True if every row maps to itself.
    pub fn is_identity(&self) -> bool {
        self.images.iter().enumerate().all(|(i, r)| r.index() == i)
    }

    /// Composition `other ∘ self` (apply `self` first).  Both mappings must
    /// be over the same row set.
    pub fn then(&self, other: &RowMapping) -> RowMapping {
        RowMapping {
            images: self.images.iter().map(|&r| other.image(r)).collect(),
        }
    }

    /// The induced mapping on symbols: the symbol at `(r, c)` maps to the
    /// symbol at `(h(r), c)`.
    pub fn symbol_image(&self, t: &Tableau, sym: Symbol) -> Symbol {
        match sym {
            Symbol::Special(n) => {
                // All rows containing n map to rows agreeing on column n;
                // pick any such row to read the image symbol off.
                match t.rows_with_special(n).first() {
                    Some(&r) => t.symbol_at(self.image(r), n),
                    None => sym,
                }
            }
            Symbol::Unique(r, n) => t.symbol_at(self.image(r), n),
        }
    }

    /// Checks the mapping against tableau `t`, returning the first violated
    /// constraint if any.
    pub fn validate(&self, t: &Tableau) -> Result<(), MappingError> {
        if self.images.len() != t.row_count() {
            return Err(MappingError::WrongArity {
                got: self.images.len(),
                expected: t.row_count(),
            });
        }
        for &img in &self.images {
            if img.index() >= t.row_count() {
                return Err(MappingError::ImageOutOfRange(img));
            }
        }
        // Constraint 1: rows of the target subset are fixed points.
        let target = self.target();
        for &r in &target {
            if self.image(r) != r {
                return Err(MappingError::TargetNotFixed(r));
            }
        }
        // Constraint 3: distinguished symbols are preserved.
        for r in t.row_ids() {
            for col in t.sacred().iter() {
                if t.is_distinguished(r, col) && !t.row(self.image(r)).nodes.contains(col) {
                    return Err(MappingError::DistinguishedLost {
                        column: col,
                        row: r,
                    });
                }
            }
        }
        // Constraint 2: rows sharing a special symbol agree after mapping.
        for col in t.columns().iter() {
            let holders = t.rows_with_special(col);
            if holders.len() < 2 {
                continue;
            }
            let first = holders[0];
            let ref_sym = t.symbol_at(self.image(first), col);
            for &r in &holders[1..] {
                if t.symbol_at(self.image(r), col) != ref_sym {
                    return Err(MappingError::ColumnDisagreement {
                        column: col,
                        rows: (first, r),
                    });
                }
            }
        }
        Ok(())
    }

    /// True if the mapping satisfies all three row-mapping constraints for
    /// tableau `t`.
    pub fn is_valid(&self, t: &Tableau) -> bool {
        self.validate(t).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Hypergraph;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([
            vec!["A", "B", "C"],
            vec!["C", "D", "E"],
            vec!["A", "E", "F"],
            vec!["A", "C", "E"],
        ])
        .unwrap()
    }

    fn fig2() -> Tableau {
        let h = fig1();
        let sacred = h.node_set(["A", "D"]).unwrap();
        Tableau::new(&h, &sacred)
    }

    fn m(images: &[u32]) -> RowMapping {
        RowMapping::new(images.iter().map(|&i| RowId(i)).collect())
    }

    #[test]
    fn identity_is_always_valid() {
        let t = fig2();
        let id = RowMapping::identity(t.row_count());
        assert!(id.is_identity());
        assert!(id.is_valid(&t));
        assert_eq!(id.target().len(), 4);
    }

    #[test]
    fn paper_example_3_3_mapping_is_valid() {
        // h sends rows 1, 3, 4 to 4 and row 2 to 2 (1-indexed in the paper),
        // i.e. rows 0, 2, 3 -> 3 and 1 -> 1 here.
        let t = fig2();
        let h = m(&[3, 1, 3, 3]);
        assert!(h.is_valid(&t));
        assert_eq!(h.target(), [RowId(1), RowId(3)].into_iter().collect());
    }

    #[test]
    fn mapping_that_drops_distinguished_symbol_is_invalid() {
        // Row 1 is {C, D, E}, the only edge containing the sacred node D.
        // Mapping it anywhere else loses the distinguished d.
        let t = fig2();
        let h = m(&[3, 3, 3, 3]);
        assert_eq!(
            h.validate(&t),
            Err(MappingError::DistinguishedLost {
                column: fig1().node("D").unwrap(),
                row: RowId(1)
            })
        );
    }

    #[test]
    fn mapping_with_column_disagreement_is_invalid() {
        // Map row 0 ({A,B,C}) to row 1 ({C,D,E}) and keep the rest: rows 0,
        // 2, 3 all hold the special symbol a of column A, but row 1 does
        // not, so the images disagree on column A.
        let t = fig2();
        let h = m(&[1, 1, 2, 3]);
        assert!(matches!(
            h.validate(&t),
            Err(MappingError::ColumnDisagreement { .. })
                | Err(MappingError::DistinguishedLost { .. })
        ));
        assert!(!h.is_valid(&t));
    }

    #[test]
    fn non_idempotent_mapping_is_invalid() {
        // Row 3 maps to row 2 while row 2 maps to row 3: the target contains
        // both, but neither is fixed.
        let t = fig2();
        let h = m(&[0, 1, 3, 2]);
        assert!(matches!(
            h.validate(&t),
            Err(MappingError::TargetNotFixed(_))
        ));
    }

    #[test]
    fn arity_and_range_errors() {
        let t = fig2();
        assert!(matches!(
            m(&[0, 1]).validate(&t),
            Err(MappingError::WrongArity {
                got: 2,
                expected: 4
            })
        ));
        assert!(matches!(
            m(&[0, 1, 2, 9]).validate(&t),
            Err(MappingError::ImageOutOfRange(_))
        ));
    }

    #[test]
    fn composition_and_symbol_image() {
        let t = fig2();
        let h = fig1();
        let first = m(&[0, 1, 3, 3]); // fold row 2 into 3
        let second = m(&[3, 1, 3, 3]); // then fold row 0 into 3
        let composed = first.then(&second);
        assert_eq!(composed, m(&[3, 1, 3, 3]));
        assert!(composed.is_valid(&t));

        // Under the composed mapping the special symbol b of column B (held
        // only by row 0) maps to the unique symbol of row 3 in column B.
        let b = h.node("B").unwrap();
        assert_eq!(
            composed.symbol_image(&t, Symbol::Special(b)),
            Symbol::Unique(RowId(3), b)
        );
        // The distinguished a stays special.
        let a = h.node("A").unwrap();
        assert_eq!(
            composed.symbol_image(&t, Symbol::Special(a)),
            Symbol::Special(a)
        );
    }

    #[test]
    fn error_display_is_informative() {
        let t = fig2();
        let err = m(&[3, 3, 3, 3]).validate(&t).unwrap_err();
        assert!(err.to_string().contains("distinguished"));
    }
}
