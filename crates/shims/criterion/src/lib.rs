//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim supplies the surface the benches in `crates/bench/benches` use:
//! [`Criterion`] with builder-style configuration, benchmark groups,
//! [`BenchmarkId`], `Bencher::iter`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are real (wall-clock means over `sample_size` iterations
//! after a warm-up) and printed as one line per benchmark, but there is no
//! statistical analysis, HTML report or saved baseline — the shim exists so
//! `cargo bench` runs and `cargo bench --no-run` compiles everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per iteration.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / self.sample_size as f64;
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(50),
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target measurement time (kept for API compatibility; the
    /// shim times exactly `sample_size` iterations).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(BenchmarkId::from_parameter(&name), f);
        group.finish();
    }

    fn run(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            mean_ns: 0.0,
        };
        f(&mut b);
        let (value, unit) = if b.mean_ns >= 1e6 {
            (b.mean_ns / 1e6, "ms")
        } else if b.mean_ns >= 1e3 {
            (b.mean_ns / 1e3, "µs")
        } else {
            (b.mean_ns, "ns")
        };
        println!("{label:<48} time: {value:>10.2} {unit}/iter");
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run(&label, |b| f(b));
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        targets = sample_bench
    }

    #[test]
    fn group_macro_and_driver_run() {
        benches();
    }

    #[test]
    fn bencher_records_positive_means() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut b = Bencher {
            sample_size: 3,
            warm_up: Duration::ZERO,
            mean_ns: -1.0,
        };
        b.iter(|| black_box(42));
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("gyo", 32).to_string(), "gyo/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
