//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim supplies exactly the surface the `workload` generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open and inclusive integer ranges.
//!
//! The generator is SplitMix64 — deterministic per seed, which is the only
//! statistical property the workspace relies on (reproducible workloads and
//! property tests).  It is **not** a cryptographic RNG and makes no attempt
//! to be bit-compatible with the real `rand::rngs::StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (e.g. `0..n` or `1..=k`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires 0 <= p <= 1");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit PRNG (SplitMix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the raw seed so nearby seeds give unrelated streams.
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            let mut c = StdRng::seed_from_u64(8);
            let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            assert_eq!(xs, ys);
            assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
        }

        #[test]
        fn gen_range_stays_in_bounds() {
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..1000 {
                let v: usize = rng.gen_range(3..17);
                assert!((3..17).contains(&v));
                let w: i64 = rng.gen_range(-5..=5);
                assert!((-5..=5).contains(&w));
                let u: u32 = rng.gen_range(0..1);
                assert_eq!(u, 0);
            }
        }

        #[test]
        fn gen_range_covers_small_domains() {
            let mut rng = StdRng::seed_from_u64(1);
            let mut seen = [false; 4];
            for _ in 0..200 {
                seen[rng.gen_range(0usize..4)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(3);
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
