//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim supplies the surface the property-test suites use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property;
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer
//!   ranges, tuples and the combinators here;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`any`] for primitive types, [`Just`], [`ProptestConfig`];
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking.  Failing inputs are reported verbatim (each case is seeded
//! deterministically from the test name and case index, so failures
//! reproduce exactly on re-run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic PRNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG for one test case, derived from a stable test-name
    /// hash and the case index so every case is independent yet reproducible.
    pub fn deterministic(name_hash: u64, case: u64) -> Self {
        TestRng {
            state: name_hash
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03))
                ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a string, used to give each test its own RNG stream.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates a `BTreeSet` whose cardinality is drawn from `size`.
    ///
    /// The element strategy's domain must be able to supply at least
    /// `size.start` distinct values; generation retries a bounded number of
    /// times and then accepts a smaller (never empty, if `start > 0`) set.
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            while out.len() < self.size.start {
                // Domain too small to reach the minimum by sampling; this
                // only happens for degenerate strategies, so keep trying.
                out.insert(self.elem.new_value(rng));
            }
            out
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests.
///
/// Supports the subset of real-proptest syntax the workspace uses: an
/// optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies with `name in strat`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::deterministic(
                        $crate::fnv(concat!(module_path!(), "::", stringify!($name))),
                        u64::from(__case),
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property, with optional format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic(fnv("ranges"), 0);
        for _ in 0..500 {
            let v = (3u32..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..1).new_value(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn collections_respect_size_ranges() {
        let mut rng = TestRng::deterministic(fnv("collections"), 1);
        for _ in 0..200 {
            let v = collection::vec(0u32..100, 2..7).new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = collection::btree_set(0u32..50, 1..5).new_value(&mut rng);
            assert!(!s.is_empty() && s.len() < 5);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic(fnv("compose"), 2);
        let strat = (1usize..4, any::<u64>()).prop_map(|(n, seed)| vec![seed; n]);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        assert_eq!(Just(41u8).new_value(&mut rng), 41);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, asserts fire, assume skips.
        #[test]
        fn macro_generates_cases(a in 0u32..10, b in any::<bool>()) {
            prop_assume!(a < 10);
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, a + 1);
        }
    }
}
