//! Rendering hypergraphs for humans: Graphviz DOT and ASCII tables.

use crate::hypergraph::Hypergraph;

impl Hypergraph {
    /// Renders the hypergraph in Graphviz DOT form using the bipartite
    /// incidence representation: boxes for edges, circles for nodes.
    pub fn to_dot(&self, name: &str) -> String {
        let u = self.universe();
        let mut out = String::new();
        out.push_str(&format!("graph {name} {{\n"));
        out.push_str("  node [shape=circle];\n");
        for n in self.nodes().iter() {
            out.push_str(&format!("  \"{}\";\n", u.name(n)));
        }
        out.push_str("  node [shape=box, style=filled, fillcolor=lightgray];\n");
        for (i, e) in self.edges().iter().enumerate() {
            let ename = format!("edge_{i}_{}", sanitize(&e.label));
            out.push_str(&format!("  \"{ename}\" [label=\"{}\"];\n", e.label));
            for n in e.nodes.iter() {
                out.push_str(&format!("  \"{ename}\" -- \"{}\";\n", u.name(n)));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the hypergraph as an incidence table: one row per edge, one
    /// column per node, `x` marking membership.  Useful in examples and for
    /// debugging reductions.
    pub fn to_ascii_table(&self) -> String {
        let u = self.universe();
        let nodes: Vec<_> = self.nodes().iter().collect();
        let label_width = self
            .edges()
            .iter()
            .map(|e| e.label.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        out.push_str(&format!("{:label_width$} |", "edge"));
        for &n in &nodes {
            out.push_str(&format!(" {:>3}", truncate(u.name(n), 3)));
        }
        out.push('\n');
        out.push_str(&"-".repeat(label_width + 1 + 4 * nodes.len() + 1));
        out.push('\n');
        for e in self.edges() {
            out.push_str(&format!("{:label_width$} |", e.label));
            for &n in &nodes {
                out.push_str(&format!(
                    " {:>3}",
                    if e.nodes.contains(n) { "x" } else { "." }
                ));
            }
            out.push('\n');
        }
        out
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Hypergraph {
        Hypergraph::from_edges([vec!["A", "B", "C"], vec!["C", "D", "E"]]).unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = fig1().to_dot("fig1");
        assert!(dot.starts_with("graph fig1 {"));
        for name in ["A", "B", "C", "D", "E"] {
            assert!(dot.contains(&format!("\"{name}\"")));
        }
        assert!(dot.contains("edge_0_A_B_C"));
        assert!(dot.contains("edge_1_C_D_E"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn ascii_table_marks_membership() {
        let table = fig1().to_ascii_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains('A') && lines[0].contains('E'));
        assert!(lines[2].starts_with("A-B-C"));
        assert_eq!(lines[2].matches('x').count(), 3);
        assert_eq!(lines[3].matches('x').count(), 3);
    }

    #[test]
    fn sanitize_replaces_punctuation() {
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }
}
